"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This
shim lets ``python setup.py develop`` provide the equivalent editable
install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
