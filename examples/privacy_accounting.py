"""Privacy accounting: the ε ↔ λ ↔ variance arithmetic, end to end.

Shows, for the census schema, how the privacy budget translates into
Laplace magnitudes and worst-case query variance for Basic, Privelet,
and Privelet+ — and verifies the accounting against a live mechanism
run (Lemmas 1-5, Theorems 2-3, Corollary 1 as executable arithmetic).

Run:  python examples/privacy_accounting.py
"""

from repro import (
    BRAZIL,
    BasicMechanism,
    PrivacyAccount,
    PriveletPlusMechanism,
    census_schema,
    generate_census_table,
    select_sa,
)


def main() -> None:
    schema = census_schema(BRAZIL)
    print(f"schema: {schema!r}")
    print(f"m = {schema.num_cells:,} frequency-matrix cells\n")

    print("per-attribute factors (paper §VI-C):")
    print(f"{'attribute':<12}{'|A|':>8}{'P(A)':>8}{'H(A)':>8}{'P^2H':>10}{'in SA?':>8}")
    for attr in schema:
        in_sa = "yes" if attr.favours_direct_release() else "no"
        print(
            f"{attr.name:<12}{attr.size:>8}{attr.sensitivity_factor():>8.1f}"
            f"{attr.variance_factor():>8.1f}"
            f"{attr.sensitivity_factor()**2 * attr.variance_factor():>10.1f}{in_sa:>8}"
        )

    sa = select_sa(schema)
    print(f"\nSA rule picks: {sa} (the paper's §VII-A choice)\n")

    print(f"{'epsilon':>8}  {'config':<34}{'lambda':>10}{'var bound':>14}")
    for epsilon in (0.5, 0.75, 1.0, 1.25):
        for label, sa_set in (
            ("Basic (SA = all)", tuple(schema.names)),
            ("Privelet (SA = {})", ()),
            ("Privelet+ (SA = {Age, Gender})", sa),
        ):
            account = PrivacyAccount(schema, sa_set)
            print(
                f"{epsilon:>8}  {label:<34}{account.lambda_for_epsilon(epsilon):>10.1f}"
                f"{account.variance_bound(epsilon):>14.3g}"
            )

    # Cross-check the accounting against a live run at a scale where the
    # SA rule still splits the attributes (large scales keep Occupation
    # and Income out of SA).
    table = generate_census_table(BRAZIL.scaled(0.3), 10_000, seed=30)
    for mechanism in (BasicMechanism(), PriveletPlusMechanism(sa_names="auto")):
        result = mechanism.publish(table, 1.0, seed=31)
        account = PrivacyAccount(
            table.schema,
            result.details.get("sa", tuple(table.schema.names)),
        )
        assert abs(result.noise_magnitude - account.lambda_for_epsilon(1.0)) < 1e-9
        print(
            f"\nlive check {mechanism.name:<12}: lambda={result.noise_magnitude:.2f} "
            f"matches the account; bound={result.variance_bound:.3g}"
        )


if __name__ == "__main__":
    main()
