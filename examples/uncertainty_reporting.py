"""Reporting DP answers with calibrated uncertainty.

A release is only useful if consumers know how much to trust each
number.  Because Privelet's noise law is public, the *exact* standard
deviation of every range-count answer is computable from the release
metadata alone — no extra privacy cost.  This example publishes a census
table, then prints:

* point answers with 95% confidence intervals for a few queries, and
* a one-way marginal table annotated with per-cell noise std.

Run:  python examples/uncertainty_reporting.py
"""

from repro import (
    BRAZIL,
    PriveletPlusMechanism,
    QueryEngine,
    RangeCountQuery,
    generate_census_table,
    interval_predicate,
    select_sa,
)


def main() -> None:
    table = generate_census_table(BRAZIL.scaled(0.1), num_rows=150_000, seed=40)
    schema = table.schema
    result = PriveletPlusMechanism(sa_names=select_sa(schema)).publish(
        table, epsilon=1.0, seed=41
    )
    engine = QueryEngine(result)
    exact_matrix = table.frequency_matrix()

    print("answers with 95% confidence intervals (exact answer in brackets):\n")
    bands = [(0, 17), (18, 39), (40, 64), (65, schema["Age"].size - 1)]
    for lo, hi in bands:
        query = RangeCountQuery(schema, (interval_predicate(schema["Age"], lo, hi),))
        answer = engine.answer_with_interval(query, confidence=0.95)
        exact = query.evaluate(exact_matrix)
        print(
            f"  Age in [{lo:>3}, {hi:>3}]: {answer.estimate:>10.0f} "
            f"± {answer.upper - answer.estimate:>8.1f}   [{exact:.0f}]"
        )

    print("\nGender marginal with per-cell noise std:")
    values, stds = engine.marginal_with_std(["Gender"])
    for label, value, std in zip(schema["Gender"].labels(), values, stds):
        print(f"  {label:<8} {value:>10.1f}  (noise std {std:.1f})")

    print(
        "\nall uncertainty numbers are data-free: they follow from the\n"
        "mechanism configuration, so printing them costs no extra privacy."
    )


if __name__ == "__main__":
    main()
