"""Shard a census table, publish every shard at full ε, serve as one.

Privelet's guarantee is per frequency matrix, so disjoint horizontal
partitions of a table each enjoy the *full* privacy budget — that is DP
parallel composition.  This walkthrough:

* partitions a census table along ``Age`` into four shards and
  publishes each one independently (thread pool, coefficient space);
* answers a mixed workload through the ordinary ``QueryEngine`` — the
  ``ShardedRelease`` routes every box to only the shards its Age range
  intersects, and exact variances sum across routed shards;
* writes a v3 sharded archive and reloads it shard-lazily: a narrow
  query decompresses one shard, the rest stay on disk.

Run:  PYTHONPATH=src python examples/sharded_census.py
"""

import tempfile
from pathlib import Path

from repro import (
    BRAZIL,
    PriveletPlusMechanism,
    QueryEngine,
    RangeCountQuery,
    generate_census_table,
    generate_workload,
    interval_predicate,
    load_result,
    publish_sharded,
    save_result,
)


def main() -> None:
    table = generate_census_table(BRAZIL.scaled(0.1), 40_000, seed=0)
    print(f"table: {table.num_rows} rows over {table.schema.shape}")

    result = publish_sharded(
        table,
        PriveletPlusMechanism(sa_names="auto"),
        epsilon=1.0,
        shard_by="Age",
        shards=4,
        seed=7,
        materialize=False,  # every shard stays in coefficient space
    )
    release = result.release
    print(
        f"published {release.num_shards} shards by {release.attribute!r} "
        f"at cut points {release.bounds} — each shard got the full "
        f"epsilon={result.epsilon} (parallel composition)"
    )

    # The engine serves a sharded release like any other backend.
    engine = QueryEngine(result)
    queries = generate_workload(table.schema, 5, seed=3)
    print("\nmixed workload (boxes may span several shards):")
    for query, answer in zip(queries, engine.answer_all_with_intervals(queries)):
        print(
            f"  {answer.estimate:>10.1f} +- {answer.noise_std:>8.2f}  {query!r}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "census_sharded.npz"
        save_result(path, result)
        loaded = load_result(path)
        print(
            f"\nv3 archive reloaded: {loaded.release.shards_loaded}/"
            f"{loaded.release.num_shards} shards in memory"
        )
        lo, hi = release.bounds[0], release.bounds[1]
        narrow = QueryEngine(loaded).answer(
            RangeCountQuery(
                table.schema,
                (interval_predicate(table.schema["Age"], lo, hi - 1),),
            )
        )
        print(
            f"one narrow Age query ([{lo}, {hi}) -> {narrow:.1f}) loaded "
            f"{loaded.release.shards_loaded} shard(s); the other "
            f"{loaded.release.num_shards - loaded.release.shards_loaded} "
            "never left the archive"
        )


if __name__ == "__main__":
    main()
