"""Mini scalability study from the public API (Figures 10-11 in small).

Measures end-to-end publishing time for Basic and Privelet+ as the
tuple count n and the matrix size m grow, confirming the O(n + m)
complexity the paper proves for every mechanism.

Run:  python examples/scaling_study.py
"""

from repro.experiments import (
    TimingConfig,
    format_timing_run,
    run_time_vs_m,
    run_time_vs_n,
)


def main() -> None:
    config = TimingConfig(
        n_values=(250_000, 500_000, 1_000_000),
        fixed_m=2**16,
        m_values=(2**14, 2**16, 2**18),
        fixed_n=100_000,
    )
    print(format_timing_run(run_time_vs_n(config), title="time vs n (mini Figure 10)"))
    print()
    print(format_timing_run(run_time_vs_m(config), title="time vs m (mini Figure 11)"))
    print(
        "\nboth mechanisms scale linearly; Privelet+ pays a constant factor\n"
        "for the wavelet transforms (paper §VII-B)."
    )


if __name__ == "__main__":
    main()
