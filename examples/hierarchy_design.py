"""How hierarchy design changes nominal-attribute accuracy (§V-D).

For a nominal attribute the paper's nominal wavelet transform has a
noise-variance bound of 32 h^2 / eps^2 — quadratic in the hierarchy
height — while the strawman (Haar over an imposed leaf order) pays
O(log^3 m).  This example compares, for a 512-value nominal domain:

* a flat 2-level hierarchy (h = 2),
* the paper's 3-level shape (h = 3, like Occupation),
* a balanced binary hierarchy (h = 10),
* the Haar strawman,

showing both the closed-form bounds and measured errors at equal ε.

Run:  python examples/hierarchy_design.py
"""

import numpy as np

from repro import (
    flat_hierarchy,
    nominal_bound,
    haar_bound,
    nominal_vs_haar,
    publish_nominal_vector,
    publish_ordinal_vector,
    balanced_hierarchy,
    two_level_hierarchy,
)

DOMAIN = 512
EPSILON = 1.0
REPS = 200


def measured_variance(counts, hierarchy, lo, hi):
    exact = counts[lo:hi].sum()
    errors = [
        publish_nominal_vector(counts, hierarchy, EPSILON, seed=seed)[lo:hi].sum() - exact
        for seed in range(REPS)
    ]
    return float(np.var(errors))


def main() -> None:
    rng = np.random.default_rng(20)
    counts = rng.integers(0, 40, size=DOMAIN).astype(float)
    lo, hi = 0, 32  # a 32-leaf range, aligned with every hierarchy below

    candidates = [
        ("flat (h=2)", flat_hierarchy(DOMAIN)),
        ("3-level, 16x32 (h=3)", two_level_hierarchy([32] * 16)),
        ("balanced binary (h=10)", balanced_hierarchy(DOMAIN, 2)),
    ]

    print(f"nominal domain of {DOMAIN} values, epsilon={EPSILON}, query = 32-leaf range\n")
    print(f"{'hierarchy':<26}{'bound 32h^2/eps^2':>20}{'measured variance':>20}")
    for label, hierarchy in candidates:
        bound = nominal_bound(hierarchy.height, EPSILON)
        measured = measured_variance(counts, hierarchy, lo, hi)
        aligned = any(
            hierarchy.leaf_interval(n) == (lo, hi) for n in range(hierarchy.num_nodes)
        )
        note = "" if aligned else "   (range is not a hierarchy node: bound N/A)"
        print(f"{label:<26}{bound:>20.0f}{measured:>20.0f}{note}")
    print(
        "\nnote: the 32 h^2/eps^2 bound covers the paper's OLAP predicates —\n"
        "a single leaf or one node's whole subtree.  The flat hierarchy has\n"
        "no 32-leaf node, so its bound does not apply to this query (and is\n"
        "visibly exceeded); the other hierarchies align and stay inside it."
    )

    # The Haar strawman on the imposed leaf order (§V-A).
    exact = counts[lo:hi].sum()
    errors = [
        publish_ordinal_vector(counts, EPSILON, seed=seed)[lo:hi].sum() - exact
        for seed in range(REPS)
    ]
    print(
        f"{'Haar strawman':<26}{haar_bound(DOMAIN, EPSILON):>20.0f}"
        f"{float(np.var(errors)):>20.0f}"
    )

    comparison = nominal_vs_haar(DOMAIN, 3, EPSILON)
    print(
        f"\npaper §V-D (m=512, h=3): Haar {comparison.haar_variance_bound:.0f} vs "
        f"nominal {comparison.nominal_variance_bound:.0f} — "
        f"{comparison.improvement_factor:.0f}x better.\n"
        "Design takeaway: keep hierarchies shallow — the bound is 32 h^2/eps^2,\n"
        "so every extra level costs quadratically."
    )


if __name__ == "__main__":
    main()
