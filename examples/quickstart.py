"""Quickstart: publish a table under ε-differential privacy with Privelet+.

Walks the full pipeline of the paper on a census-like dataset:

1. generate a table (Age, Gender, Occupation, Income — Table III schema);
2. publish a noisy frequency matrix with Privelet+ (ε = 1);
3. answer range-count queries on the noisy matrix;
4. compare against the Basic (Dwork et al.) baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BRAZIL,
    BasicMechanism,
    PriveletPlusMechanism,
    RangeSumOracle,
    Workload,
    generate_census_table,
    generate_workload,
    select_sa,
    square_error,
)


def main() -> None:
    # 1. A census-like table (scaled so this demo runs in seconds).
    spec = BRAZIL.scaled(0.1)
    table = generate_census_table(spec, num_rows=100_000, seed=0)
    print(f"table: {table.num_rows} rows, schema {table.schema!r}")

    # 2. Publish with Privelet+.  The SA rule of §VI-D picks the small
    #    domains to release directly.
    sa = select_sa(table.schema)
    print(f"SA (direct-release attributes): {sa}")
    epsilon = 1.0
    result = PriveletPlusMechanism(sa_names=sa).publish(table, epsilon, seed=1)
    print(
        f"published with epsilon={result.epsilon}, lambda={result.noise_magnitude:.1f}, "
        f"worst-case query variance <= {result.variance_bound:.3g}"
    )

    # 3. Answer range-count queries.
    exact_matrix = table.frequency_matrix()
    queries = generate_workload(table.schema, 1_000, max_predicates=4, seed=2)
    workload = Workload.evaluate(queries, exact_matrix)
    noisy_answers = RangeSumOracle(result.matrix).answer_all(queries)

    # 4. Compare with Basic on the same privacy budget.
    basic = BasicMechanism().publish(table, epsilon, seed=3)
    basic_answers = RangeSumOracle(basic.matrix).answer_all(queries)

    privelet_mse = square_error(noisy_answers, workload.exact_answers).mean()
    basic_mse = square_error(basic_answers, workload.exact_answers).mean()
    print(f"\nmean square error over {len(queries)} random range-count queries:")
    print(f"  Privelet+ : {privelet_mse:12.1f}")
    print(f"  Basic     : {basic_mse:12.1f}")

    wide = workload.coverages > np.quantile(workload.coverages, 0.8)
    privelet_wide = square_error(noisy_answers[wide], workload.exact_answers[wide]).mean()
    basic_wide = square_error(basic_answers[wide], workload.exact_answers[wide]).mean()
    print("top-coverage quintile (the paper's headline regime):")
    print(f"  Privelet+ : {privelet_wide:12.1f}")
    print(f"  Basic     : {basic_wide:12.1f}   ({basic_wide / privelet_wide:.0f}x worse)")


if __name__ == "__main__":
    main()
