"""Serve dashboard traffic against two releases through one server.

A data publisher rarely has *one* release: different datasets, epochs,
and privacy budgets coexist, and consumers address them by name.  This
walkthrough publishes two census releases in coefficient space, writes
them to archives, and stands up a ``ReleaseServer`` over them:

* archives register lazily (header read now, payload on first touch);
* concurrent single queries coalesce into vectorized engine batches;
* repeated dashboard ranges hit the bounded LRU profile cache;
* the server reports hit rate, batch sizes, and p50/p99 latency.

Run:  PYTHONPATH=src python examples/multi_release_server.py
"""

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import (
    BRAZIL,
    US,
    PriveletPlusMechanism,
    QueryRequest,
    ReleaseServer,
    generate_census_table,
    save_result,
)


def publish_archives(directory: Path) -> list[Path]:
    paths = []
    for name, spec, seed in (("brazil-2026", BRAZIL, 0), ("us-2026", US, 1)):
        table = generate_census_table(spec.scaled(0.1), 20_000, seed=seed)
        result = PriveletPlusMechanism(sa_names="auto").publish(
            table, epsilon=1.0, seed=seed + 10, materialize=False
        )
        path = directory / f"{name}.npz"
        save_result(path, result)
        paths.append(path)
        print(f"published {name}: shape {result.release.schema.shape}, "
              f"{result.representation} archive at {path.name}")
    return paths


def dashboard(server: ReleaseServer, release: str, widgets: int) -> float:
    """One dashboard render: a fixed set of range widgets, in parallel."""
    requests = [
        QueryRequest(release, {"Age": (lo, lo + 15)}) for lo in range(widgets)
    ] + [
        QueryRequest(release, {"Gender": (0, 1), "Age": (lo, lo + 30)})
        for lo in range(widgets)
    ]
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(pool.map(server.query, requests))
    seconds = time.perf_counter() - start
    assert all(r.lower <= r.estimate <= r.upper for r in responses)
    return seconds


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        paths = publish_archives(Path(scratch))

        with ReleaseServer(max_batch=128, profile_cache_entries=2048) as server:
            for path in paths:
                server.register_archive(path)
            print(f"\nregistered (lazily): {list(server.names)}")
            for name in server.names:
                print(f"  {name}: loaded={server.describe(name)['loaded']}")

            # First render is cold: archive payloads map, engines build,
            # every distinct profile computes.  Repeats are warm.
            for label, release in (("brazil", "brazil-2026"), ("us", "us-2026")):
                cold = dashboard(server, release, widgets=40)
                warm = min(dashboard(server, release, widgets=40) for _ in range(3))
                print(
                    f"{label}: cold render {cold * 1e3:.1f} ms, "
                    f"warm render {warm * 1e3:.1f} ms "
                    f"({cold / warm:.1f}x faster warm)"
                )

            stats = server.stats()
            print(
                f"\nserver stats: {stats.requests} requests in "
                f"{stats.batches} batches (mean {stats.mean_batch_size:.1f}, "
                f"largest {stats.largest_batch}), profile-cache hit rate "
                f"{stats.profile_cache_hit_rate:.0%}, p50 "
                f"{stats.p50_latency_seconds * 1e3:.2f} ms, p99 "
                f"{stats.p99_latency_seconds * 1e3:.2f} ms"
            )


if __name__ == "__main__":
    main()
