"""Serve a m = 2**20 ordinal domain without ever allocating M*.

Privelet adds noise *in coefficient space*; Equation 3 says any range
answer needs only the O(log m) coefficients on the range's boundary
paths.  ``publish_ordinal_release`` therefore keeps the release in
coefficient form (a ``CoefficientRelease``): no inverse transform at
publish time, no dense prefix oracle at serving time — the noisy
coefficient vector is the entire serving state.

Run: PYTHONPATH=src python examples/coefficient_serving.py
"""

import time

import numpy as np

from repro import QueryEngine, generate_workload
from repro.core.privelet import publish_ordinal_release

M = 1 << 20  # a domain a dense pipeline would materialize twice over

# A sparse "sales by timestamp bucket" histogram: most buckets empty.
rng = np.random.default_rng(0)
counts = np.zeros(M)
active = rng.integers(0, M, size=4_096)
counts[active] += rng.integers(1, 40, size=active.size)

start = time.perf_counter()
result = publish_ordinal_release(counts, epsilon=1.0, seed=1)
publish_seconds = time.perf_counter() - start
release = result.release

print(f"published m = 2^20 = {M:,} cells with epsilon = {result.epsilon}")
print(f"  representation : {result.representation}")
print(f"  publish time   : {publish_seconds * 1e3:.1f} ms (no inverse transform)")
print(f"  serving state  : {release.nbytes() / 1e6:.1f} MB of coefficients")
print(f"  lambda         : {result.noise_magnitude:.1f}")

# The engine serves point answers, exact noise stds, and confidence
# intervals straight from the coefficients.
engine = QueryEngine(result)
queries = generate_workload(release.schema, 1_000, seed=2)
start = time.perf_counter()
batch = engine.answer_all_with_intervals(queries, confidence=0.95)
serve_seconds = time.perf_counter() - start
print(
    f"answered {len(queries)} range queries in {serve_seconds * 1e3:.1f} ms "
    f"({serve_seconds / len(queries) * 1e6:.1f} us/query)"
)
print(f"  mean noise std : {float(batch.noise_stds.mean()):.1f}")

# Every answer gathers O(log m) coefficients, so one wide range costs
# the same as one narrow range.
wide = release.answer_box([(0, M)])
narrow = release.answer_box([(M // 2, M // 2 + 16)])
print(f"  total estimate : {wide:.1f} (true total {counts.sum():.0f})")
print(f"  narrow range   : {narrow:.1f}")

# Cross-check a few answers against the dense reconstruction (this is
# the one step that *does* allocate M* — only to prove we did not need
# it).
dense = result.matrix.values
lo, hi = 12_345, 700_001
assert abs(release.answer_box([(lo, hi)]) - dense[lo:hi].sum()) < 1e-6
print("coefficient-space answers match the dense reconstruction")
