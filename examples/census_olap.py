"""OLAP-style navigation over a DP-published census cube.

The paper motivates Privelet with OLAP range-count queries: roll-up and
drill-down along attribute hierarchies (§II-A).  This example publishes
a census table once and then answers a realistic analyst session —
drilling from "everyone" down through occupation groups and age bands —
showing exact vs private answers and the per-query relative error.

Run:  python examples/census_olap.py
"""

from repro import (
    BRAZIL,
    PriveletPlusMechanism,
    RangeCountQuery,
    RangeSumOracle,
    generate_census_table,
    hierarchy_predicate,
    interval_predicate,
    select_sa,
)


def show(label: str, query: RangeCountQuery, exact_oracle, noisy_oracle) -> None:
    exact = exact_oracle.answer(query)
    noisy = noisy_oracle.answer(query)
    error = abs(noisy - exact) / max(exact, 1.0)
    print(f"  {label:<52} exact={exact:>10.0f}  private={noisy:>12.1f}  rel.err={error:6.2%}")


def main() -> None:
    spec = BRAZIL.scaled(0.1)
    table = generate_census_table(spec, num_rows=200_000, seed=10)
    schema = table.schema
    occupation = schema["Occupation"]
    hierarchy = occupation.hierarchy

    result = PriveletPlusMechanism(sa_names=select_sa(schema)).publish(
        table, epsilon=1.0, seed=11
    )
    exact_oracle = RangeSumOracle(table.frequency_matrix())
    noisy_oracle = RangeSumOracle(result.matrix)

    print(f"published {table.num_rows} rows at epsilon=1.0; analyst session:\n")

    # Roll-up: total population.
    show("ALL", RangeCountQuery(schema), exact_oracle, noisy_oracle)

    # Drill-down: one occupation *group* (an internal hierarchy node).
    group_id = hierarchy.children(hierarchy.root_id)[0]
    group = RangeCountQuery(schema, (hierarchy_predicate(occupation, group_id),))
    show(f"Occupation group {hierarchy.node_label(group_id)!r}", group, exact_oracle, noisy_oracle)

    # Drill-down further: one specific occupation (a leaf).
    leaf_id = hierarchy.children(group_id)[0]
    leaf = RangeCountQuery(schema, (hierarchy_predicate(occupation, leaf_id),))
    show(f"Occupation leaf {hierarchy.node_label(leaf_id)!r}", leaf, exact_oracle, noisy_oracle)

    # Cross-tab: the group restricted to working-age adults.
    working_age = RangeCountQuery(
        schema,
        (
            hierarchy_predicate(occupation, group_id),
            interval_predicate(schema["Age"], 25, 54),
        ),
    )
    show("... group x Age in [25, 54]", working_age, exact_oracle, noisy_oracle)

    # ... with an income band on top.
    with_income = RangeCountQuery(
        schema,
        (
            hierarchy_predicate(occupation, group_id),
            interval_predicate(schema["Age"], 25, 54),
            interval_predicate(schema["Income"], 0, schema["Income"].size // 4),
        ),
    )
    show("... x bottom-quartile Income", with_income, exact_oracle, noisy_oracle)

    print(
        "\nwide queries stay accurate; the narrower the drill-down, the\n"
        "larger the relative error — exactly the paper's utility profile."
    )


if __name__ == "__main__":
    main()
