"""Merge ``results/BENCH_*.json`` files into one markdown summary table.

CI runs every benchmark in smoke mode and each one drops a JSON payload
under ``results/``; this script condenses them into the table GitHub
renders on the workflow run page (``$GITHUB_STEP_SUMMARY``), so the
headline numbers — speedups and sustained queries/sec, with the commit
they came from — are readable without downloading artifacts.

Headline selection is convention-driven, not per-benchmark code: every
numeric leaf whose dotted path mentions ``speedup``, ``qps``, or
``_per_s`` is a headline candidate, speedups first.  A benchmark opts
into the summary simply by writing those keys (which all of them
already do).  A payload carrying a ``serving_vs_engine_qps_ratio``
leaf additionally fills the *serving/engine qps* column, so the gap
between the serving layer and the raw engine is visible in every CI
step summary.

Usage::

    python benchmarks/summarize.py [results_dir]

Writes to ``$GITHUB_STEP_SUMMARY`` when set, stdout otherwise.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

__all__ = [
    "headline_metrics",
    "serving_engine_ratio",
    "summarize",
    "tail_latency_ms",
    "main",
]

#: Dotted-path substrings that make a numeric leaf a headline metric,
#: in preference order.
_HEADLINE_MARKERS = ("speedup", "qps", "_per_s")
#: Most headline metrics shown per benchmark.
_MAX_HEADLINES = 3


def _numeric_leaves(payload, prefix: str = ""):
    """Yield ``(dotted_path, value)`` for every numeric scalar leaf."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(value, path)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            path = f"{prefix}.{index}" if prefix else str(index)
            yield from _numeric_leaves(value, path)
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        yield prefix, float(payload)


def _format_value(path: str, value: float) -> str:
    if "speedup" in path:
        return f"{value:.2f}x"
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def headline_metrics(payload: dict) -> list[tuple[str, float]]:
    """The headline ``(dotted_path, value)`` pairs of one BENCH payload.

    Parameters
    ----------
    payload:
        A decoded ``results/BENCH_*.json`` object.  Provenance keys are
        ignored; among the rest, leaves matching the headline markers
        are returned speedups-first, at most :data:`_MAX_HEADLINES`.
    """
    body = {k: v for k, v in payload.items() if k != "provenance"}
    candidates = []
    for path, value in _numeric_leaves(body):
        leaf = path.rsplit(".", 1)[-1]
        for rank, marker in enumerate(_HEADLINE_MARKERS):
            if marker in leaf:
                candidates.append((rank, path, value))
                break
    candidates.sort(key=lambda item: (item[0], item[1]))
    return [(path, value) for _, path, value in candidates[:_MAX_HEADLINES]]


def serving_engine_ratio(payload: dict) -> float | None:
    """The payload's serving / raw-engine qps ratio, if it reports one.

    Parameters
    ----------
    payload:
        A decoded ``results/BENCH_*.json`` object.  The first numeric
        leaf whose name is ``serving_vs_engine_qps_ratio`` (at any
        nesting depth, provenance excluded) is the ratio; ``None`` when
        the benchmark does not measure one.
    """
    body = {k: v for k, v in payload.items() if k != "provenance"}
    for path, value in _numeric_leaves(body):
        if path.rsplit(".", 1)[-1] == "serving_vs_engine_qps_ratio":
            return value
    return None


def tail_latency_ms(payload: dict) -> float | None:
    """The payload's worst reported p99 latency, in milliseconds.

    Parameters
    ----------
    payload:
        A decoded ``results/BENCH_*.json`` object.  Every numeric leaf
        whose name starts with ``p99`` counts (provenance excluded):
        ``*_ms`` leaves are taken as milliseconds, ``*_seconds`` leaves
        are converted, and the worst (largest) value across all runs in
        the payload is returned — a fleet is only as good as its
        slowest percentile.  ``None`` when no p99 is reported.
    """
    body = {k: v for k, v in payload.items() if k != "provenance"}
    worst = None
    for path, value in _numeric_leaves(body):
        leaf = path.rsplit(".", 1)[-1]
        if not leaf.startswith("p99"):
            continue
        if leaf.endswith("_seconds"):
            value *= 1e3
        elif not leaf.endswith("_ms"):
            continue
        if worst is None or value > worst:
            worst = value
    return worst


def summarize(paths) -> str:
    """A GitHub-flavoured markdown table over BENCH json files.

    Parameters
    ----------
    paths:
        Iterable of ``BENCH_*.json`` paths; unreadable files become a
        table row flagging the problem instead of crashing the summary
        step.

    Returns
    -------
    str
        Markdown: one header plus one row per benchmark.
    """
    rows = []
    for path in sorted(pathlib.Path(p) for p in paths):
        name = path.stem.removeprefix("BENCH_")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append((name, f"unreadable: {exc}", "?", "?", "?", "?"))
            continue
        metrics = headline_metrics(payload)
        headline = (
            "<br>".join(
                f"`{path_}` = {_format_value(path_, value)}"
                for path_, value in metrics
            )
            or "(no headline metrics)"
        )
        ratio = serving_engine_ratio(payload)
        ratio_cell = f"{ratio:.2f}" if ratio is not None else "—"
        p99 = tail_latency_ms(payload)
        p99_cell = f"{p99:.2f} ms" if p99 is not None else "—"
        provenance = payload.get("provenance", {})
        commit = str(provenance.get("commit", "?"))
        mode = "smoke" if payload.get("smoke") else "full"
        rows.append((name, headline, ratio_cell, p99_cell, mode, commit))
    lines = [
        "## Benchmark summary",
        "",
        "| benchmark | headline | serving/engine qps | worst p99 | mode | commit |",
        "|---|---|---|---|---|---|",
    ]
    if not rows:
        lines.append("| _none found_ | | | | | |")
    for name, headline, ratio_cell, p99_cell, mode, commit in rows:
        lines.append(
            f"| {name} | {headline} | {ratio_cell} | {p99_cell} | {mode} | {commit} |"
        )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    """CLI entry point: glob, summarize, write to the step summary.

    Parameters
    ----------
    argv:
        Optional ``[results_dir]``; defaults to the repo's ``results/``.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    results_dir = pathlib.Path(
        argv[0] if argv else pathlib.Path(__file__).resolve().parent.parent / "results"
    )
    table = summarize(results_dir.glob("BENCH_*.json"))
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if target:
        with open(target, "a", encoding="utf-8") as stream:
            stream.write(table)
    print(table, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
