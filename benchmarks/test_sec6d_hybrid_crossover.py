"""§VI-D worked comparison: Basic vs Privelet on a small ordinal domain.

Closed form at |A| = 16: Privelet 600/eps^2 vs Basic 128/eps^2 — Basic
wins on small domains, which motivates Privelet+'s SA rule.  The bench
verifies the arithmetic, measures both mechanisms on a full-domain query
at |A| = 16 (Basic wins) and at |A| = 4096 (Privelet wins), locating the
crossover that Privelet+ exploits.
"""

import numpy as np

from repro.analysis.theory import privelet_vs_basic_small_domain
from repro.core.laplace import laplace_noise
from repro.core.privelet import publish_ordinal_vector


def measure(domain_size: int, reps: int = 300):
    rng = np.random.default_rng(66)
    counts = rng.integers(0, 50, size=domain_size).astype(float)
    epsilon = 1.0
    exact = counts.sum()
    basic_errors, privelet_errors = [], []
    for seed in range(reps):
        noisy_basic = counts + laplace_noise(2.0 / epsilon, counts.shape, seed=seed)
        basic_errors.append(noisy_basic.sum() - exact)
        privelet_errors.append(
            publish_ordinal_vector(counts, epsilon, seed=seed).sum() - exact
        )
    return float(np.var(basic_errors)), float(np.var(privelet_errors))


def test_sec6d_hybrid_crossover(benchmark, record_result):
    small = privelet_vs_basic_small_domain(16, epsilon=1.0)
    basic_small, privelet_small = benchmark.pedantic(
        measure, args=(16,), rounds=1, iterations=1
    )
    basic_large, privelet_large = measure(4096, reps=150)

    lines = [
        "Section VI-D: Basic vs Privelet across domain sizes (eps = 1)",
        "=" * 64,
        f"{'domain':>8}{'Basic bound':>14}{'Privelet bound':>16}{'Basic meas.':>14}{'Privelet meas.':>16}",
        f"{16:>8}{small.basic_variance_bound:>14.1f}{small.privelet_variance_bound:>16.1f}"
        f"{basic_small:>14.1f}{privelet_small:>16.1f}",
        f"{4096:>8}{8.0 * 4096:>14.1f}"
        f"{privelet_vs_basic_small_domain(4096).privelet_variance_bound:>16.1f}"
        f"{basic_large:>14.1f}{privelet_large:>16.1f}",
        "paper: at |A|=16 Basic wins (128 < 600); at large |A| Privelet wins.",
    ]
    record_result("sec6d_hybrid_crossover", "\n".join(lines))

    # Paper arithmetic.
    assert small.basic_variance_bound == 128.0
    assert small.privelet_variance_bound == 600.0
    # Measured winners on a full-coverage query match the paper's story.
    assert basic_small < privelet_small
    assert privelet_large < basic_large
