"""Provenance metadata for benchmark artifacts.

Recorded numbers are only worth keeping if they are reproducible, so
every artifact under ``results/`` states where it came from:

* ``results/*.txt`` tables carry a leading ``# key: value`` header
  block (written automatically by the ``record_result`` fixture);
* ``results/BENCH_*.json`` files embed the same facts under a
  ``"provenance"`` key.

The base facts are the commit, interpreter/numpy versions, platform,
and a UTC timestamp; benchmarks add their own parameters (seed, domain
sizes, batch sizes) through ``**extra``.  The convention is documented
in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import pathlib
import platform
import subprocess
from datetime import datetime, timezone

import numpy as np

__all__ = ["provenance", "provenance_header"]

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _commit() -> str:
    """The current short commit hash, or ``unknown`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return completed.stdout.strip() or "unknown"


def provenance(**extra) -> dict:
    """The provenance facts for one benchmark artifact.

    Parameters
    ----------
    extra:
        Benchmark-specific facts (seed, domain sizes, batch sizes, …)
        merged after the base keys.

    Returns
    -------
    dict
        JSON-serializable mapping, stable key order.
    """
    meta = {
        "commit": _commit(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    meta.update(extra)
    return meta


def provenance_header(extra: dict | None = None) -> str:
    """The facts as a ``# key: value`` block for ``results/*.txt`` files.

    Parameters
    ----------
    extra:
        Benchmark-specific facts appended to the base keys.
    """
    meta = provenance(**(extra or {}))
    return "\n".join(f"# {key}: {value}" for key, value in meta.items())
