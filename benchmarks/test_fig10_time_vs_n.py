"""Figure 10: computation time vs tuple count n (m fixed).

Paper shape: both Basic and Privelet+ (SA = {}) scale linearly in n;
Privelet+ carries a constant-factor overhead from the wavelet transforms.
Paper scale (m = 2^24, n up to 5M) behind REPRO_FULL=1.
"""

import numpy as np

from repro.experiments.figures import run_time_vs_n
from repro.experiments.reporting import format_timing_run


def linear_fit_r2(xs, ys) -> float:
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    coeffs = np.polyfit(xs, ys, 1)
    prediction = np.polyval(coeffs, xs)
    residual = ((ys - prediction) ** 2).sum()
    total = ((ys - ys.mean()) ** 2).sum()
    return 1.0 - residual / total if total > 0 else 1.0


def test_fig10_time_vs_n(benchmark, timing_config, record_result):
    run = benchmark.pedantic(run_time_vs_n, args=(timing_config,), rounds=1, iterations=1)
    text = format_timing_run(run, title="Figure 10: computation time vs n")
    record_result("fig10_time_vs_n", text)

    ns = [p.x for p in run.points]
    basic = [p.basic_seconds for p in run.points]
    privelet = [p.privelet_seconds for p in run.points]
    # Linearity in n (loose: wall-clock noise).
    assert linear_fit_r2(ns, basic) > 0.5
    assert linear_fit_r2(ns, privelet) > 0.5
    # Privelet+ is the slower of the two at every point (extra transforms).
    for point in run.points:
        assert point.privelet_seconds >= point.basic_seconds * 0.8
