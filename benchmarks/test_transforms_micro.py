"""Micro-benchmarks of the transform kernels (not tied to one figure).

These quantify the O(m) claims of §IV-B/§V-C/§VI-C at the kernel level
and catch performance regressions in the numpy implementations.
"""

import numpy as np
import pytest

from repro.data.census import BRAZIL, census_schema
from repro.data.hierarchy import two_level_hierarchy
from repro.transforms.haar import haar_forward, haar_inverse
from repro.transforms.multidim import HNTransform
from repro.transforms.nominal import NominalTransform

RNG = np.random.default_rng(77)


class TestHaarKernel:
    @pytest.mark.parametrize("length", [2**12, 2**16, 2**20])
    def test_forward(self, benchmark, length):
        values = RNG.normal(size=length)
        benchmark(haar_forward, values)

    def test_inverse(self, benchmark):
        coefficients = haar_forward(RNG.normal(size=2**16))
        benchmark(haar_inverse, coefficients)


class TestNominalKernel:
    def test_forward(self, benchmark):
        hierarchy = two_level_hierarchy([64] * 64)  # 4096 leaves
        transform = NominalTransform(hierarchy)
        values = RNG.normal(size=4096)
        benchmark(transform.forward, values)

    def test_inverse_with_refinement(self, benchmark):
        hierarchy = two_level_hierarchy([64] * 64)
        transform = NominalTransform(hierarchy)
        coefficients = transform.forward(RNG.normal(size=4096))
        benchmark(lambda: transform.inverse(coefficients, refine=True))


class TestHNKernel:
    def test_forward_census_scale(self, benchmark):
        schema = census_schema(BRAZIL.scaled(0.1))
        hn = HNTransform(schema, sa_names=("Age", "Gender"))
        values = RNG.normal(size=schema.shape)
        benchmark.pedantic(hn.forward, args=(values,), rounds=3, iterations=1)

    def test_round_trip_census_scale(self, benchmark):
        schema = census_schema(BRAZIL.scaled(0.1))
        hn = HNTransform(schema, sa_names=("Age", "Gender"))
        values = RNG.normal(size=schema.shape)

        def round_trip():
            return hn.inverse(hn.forward(values))

        benchmark.pedantic(round_trip, rounds=3, iterations=1)
