"""Extension bench: Hay et al. [22] vs 1-D Privelet (paper §VIII claim).

The related-work section says the two provide "comparable utility
guarantees" but Hay et al. is 1-D only.  This bench measures both on a
one-dimensional ordinal histogram across query widths.
"""

import numpy as np

from repro.baselines.hay import HayHierarchicalMechanism
from repro.core.privelet import publish_ordinal_vector


def measure(domain_size: int = 1024, reps: int = 300):
    rng = np.random.default_rng(111)
    counts = rng.integers(0, 50, size=domain_size).astype(float)
    epsilon = 1.0
    hay = HayHierarchicalMechanism()
    widths = [domain_size // 64, domain_size // 8, domain_size]
    rows = []
    for width in widths:
        lo = (domain_size - width) // 2
        exact = counts[lo : lo + width].sum()
        hay_err, privelet_err = [], []
        for seed in range(reps):
            hay_err.append(
                hay.publish_vector(counts, epsilon, seed=seed)[lo : lo + width].sum()
                - exact
            )
            privelet_err.append(
                publish_ordinal_vector(counts, epsilon, seed=seed)[
                    lo : lo + width
                ].sum()
                - exact
            )
        rows.append((width, float(np.var(hay_err)), float(np.var(privelet_err))))
    return rows


def test_ablation_hay_vs_privelet(benchmark, record_result):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Extension: Hay et al. consistency vs 1-D Privelet (|A|=1024, eps=1)",
        "=" * 68,
        f"{'query width':>12}{'Hay variance':>16}{'Privelet variance':>20}",
    ]
    for width, hay_var, privelet_var in rows:
        lines.append(f"{width:>12}{hay_var:>16.1f}{privelet_var:>20.1f}")
    lines.append("paper §VIII: comparable utility; both polylog in m.")
    record_result("ablation_hay_vs_privelet", "\n".join(lines))

    # Comparable: within an order of magnitude at every width.
    for _, hay_var, privelet_var in rows:
        ratio = hay_var / privelet_var
        assert 0.05 < ratio < 20.0
