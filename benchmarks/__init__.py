"""Benchmark harness package.

Making ``benchmarks/`` a package lets its modules use relative imports
(``from .conftest import ...``) when collected by ``python -m pytest``
from the repository root — without this file collection dies before a
single test runs.
"""
