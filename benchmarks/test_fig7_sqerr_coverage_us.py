"""Figure 7: average square error vs query coverage (US census).

Same construction as Figure 6 on the US schema (Table III, US row).
"""

from repro.data.census import US
from repro.experiments.figures import run_square_error_vs_coverage
from repro.experiments.reporting import format_accuracy_run


def test_fig7_square_error_vs_coverage_us(
    benchmark, us_bundle, accuracy_config, record_result
):
    run = benchmark.pedantic(
        run_square_error_vs_coverage,
        args=(US, accuracy_config),
        kwargs={"prepared": us_bundle},
        rounds=1,
        iterations=1,
    )
    text = format_accuracy_run(
        run, chart=True, title="Figure 7: avg square error vs coverage (US)"
    )
    record_result("fig7_sqerr_coverage_us", text)

    privelet_name = "Privelet+(SA={Age, Gender})"
    for epsilon in accuracy_config.epsilons:
        basic = run.series_for("Basic", epsilon)
        plus = run.series_for(privelet_name, epsilon)
        assert basic.bucket_errors[-1] > basic.bucket_errors[0] * 20
        assert plus.bucket_errors[-1] < basic.bucket_errors[-1] / 5
