"""Table III: attribute domain sizes of the census datasets.

Regenerates the schema inventory the paper reports (domain sizes, and
hierarchy heights in parentheses for nominal attributes), plus the
benchmark-scale variants actually used by the figure benches.
"""

from repro.data.census import BRAZIL, US, census_schema

from .conftest import bench_accuracy_config


def format_table3(specs) -> str:
    lines = ["Table III: sizes of attribute domains", "=" * 45]
    header = f"{'':>16}" + "".join(f"{name:>14}" for name in ("Age", "Gender", "Occupation", "Income"))
    lines.append(header)
    for spec in specs:
        schema = census_schema(spec)
        cells = []
        for attr in schema:
            if attr.is_nominal:
                cells.append(f"{attr.size} ({attr.height})")
            else:
                cells.append(str(attr.size))
        lines.append(f"{spec.name:>16}" + "".join(f"{c:>14}" for c in cells))
    return "\n".join(lines)


def test_table3_domains(benchmark, record_result):
    config = bench_accuracy_config()
    specs = [BRAZIL, US, BRAZIL.scaled(config.scale), US.scaled(config.scale)]
    text = benchmark(format_table3, specs)
    record_result("table3_domains", text)
    # The paper's exact numbers:
    assert "101" in text and "512 (3)" in text and "1001" in text
    assert "96" in text and "511 (3)" in text and "1020" in text
