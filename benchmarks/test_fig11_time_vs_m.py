"""Figure 11: computation time vs frequency-matrix size m (n fixed).

Paper shape: both mechanisms scale linearly in m; Privelet+ costs a
constant factor more.  Paper scale (n = 5e6, m up to 2^26) behind
REPRO_FULL=1.
"""


from repro.experiments.figures import run_time_vs_m
from repro.experiments.reporting import format_timing_run

from .test_fig10_time_vs_n import linear_fit_r2


def test_fig11_time_vs_m(benchmark, timing_config, record_result):
    run = benchmark.pedantic(run_time_vs_m, args=(timing_config,), rounds=1, iterations=1)
    text = format_timing_run(run, title="Figure 11: computation time vs m")
    record_result("fig11_time_vs_m", text)

    ms = [p.x for p in run.points]
    privelet = [p.privelet_seconds for p in run.points]
    # Privelet+'s cost is dominated by the O(m) transform work: linear in m.
    assert linear_fit_r2(ms, privelet) > 0.5
    # Monotone growth across the sweep endpoints.
    assert privelet[-1] > privelet[0]
