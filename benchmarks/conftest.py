"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Heavy artifacts (census datasets, workloads) are built
once per session; each benchmark prints its paper-shaped series and also
writes it to ``results/<name>.txt`` so EXPERIMENTS.md can quote it.

Scale: laptop-sized by default; set ``REPRO_FULL=1`` for the paper's
exact dataset sizes (needs tens of GB and hours).

Every table written through ``record_result`` starts with a
``# key: value`` provenance header (commit, versions, timestamp, plus
any benchmark-specific facts passed as ``meta``) so recorded numbers
are reproducible — see ``benchmarks/provenance.py`` and the convention
in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from benchmarks.provenance import provenance_header
from repro.data.census import BRAZIL, US
from repro.experiments.config import AccuracyConfig, TimingConfig, full_scale_requested
from repro.experiments.figures import prepare_census_experiment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_smoke(*aliases: str) -> bool:
    """True when a CI-sized (no timing gates) benchmark run is requested.

    One switch rules them all: ``BENCH_SMOKE=1``.  Benchmarks that
    historically had their own variable pass it as an alias
    (``RELEASE_BENCH_SMOKE``, ``SERVING_BENCH_SMOKE``,
    ``SHARDING_BENCH_SMOKE``), so existing invocations keep working.
    """
    names = ("BENCH_SMOKE",) + aliases
    return any(os.environ.get(name, "") not in {"", "0"} for name in names)


def bench_accuracy_config() -> AccuracyConfig:
    if full_scale_requested():
        return AccuracyConfig(scale=1.0, num_rows=10_000_000, num_queries=40_000)
    return AccuracyConfig(scale=0.2, num_rows=150_000, num_queries=20_000)


def bench_timing_config() -> TimingConfig:
    return TimingConfig.for_environment()


@pytest.fixture(scope="session")
def accuracy_config() -> AccuracyConfig:
    return bench_accuracy_config()


@pytest.fixture(scope="session")
def timing_config() -> TimingConfig:
    return bench_timing_config()


@pytest.fixture(scope="session")
def brazil_bundle(accuracy_config):
    """(table, matrix, workload) for the Brazil census stand-in."""
    return prepare_census_experiment(BRAZIL, accuracy_config)


@pytest.fixture(scope="session")
def us_bundle(accuracy_config):
    """(table, matrix, workload) for the US census stand-in."""
    return prepare_census_experiment(US, accuracy_config)


@pytest.fixture(scope="session")
def record_result():
    """Write a named result table under results/ and echo it to stdout.

    The file gets a ``# key: value`` provenance header; pass ``meta``
    for benchmark-specific facts (seed, domain sizes, …).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str, meta: dict | None = None) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(provenance_header(meta) + "\n" + text + "\n")
        print()
        print(text)

    return _record
