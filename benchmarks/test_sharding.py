"""Benchmark: sharded publishing and cross-shard serving.

Sharding's two promises, measured:

* **parallel publish** — disjoint shards share nothing, so
  :func:`repro.core.sharding.publish_sharded` runs per-shard transforms
  and noise draws on a thread pool.  This benchmark times a sequential
  publish against the pooled one over the same shards (same seeds, so
  the outputs are identical) and records the wall-clock speedup.  The
  speedup gate runs in full mode on multi-core hosts only — on one core
  a pool cannot beat a loop, and shared-runner clocks are too noisy to
  gate on (the same policy as the serving benchmark).
* **cross-shard batch queries** — a mixed workload whose boxes span
  several shards is answered through the engine's batch API on the
  sharded release and on an equivalent unsharded one, recording
  sustained queries/sec for both, plus how a *routed* workload (every
  box inside one shard) compares.

Set ``BENCH_SMOKE=1`` (or the legacy alias ``SHARDING_BENCH_SMOKE=1``)
for a CI-sized run (small table, no
timing assertions).  Either way the numbers land in
``results/BENCH_sharding.json`` with a provenance block.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from benchmarks.provenance import provenance
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import publish_sharded, shard_bounds
from repro.data.census import BRAZIL, generate_census_table
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SEED = 20100301
NUM_SHARDS = 6
MIN_PARALLEL_SPEEDUP = 1.1
ATTEMPTS = 3


def _smoke() -> bool:
    from benchmarks.conftest import bench_smoke

    return bench_smoke("SHARDING_BENCH_SMOKE")


def _scale_rows_queries() -> tuple[float, int, int]:
    """(census scale, table rows, batch queries)."""
    return (0.05, 2_000, 200) if _smoke() else (0.35, 120_000, 2_000)


def _publish(table, *, parallel: bool):
    return publish_sharded(
        table,
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        shard_by="Age",
        shards=NUM_SHARDS,
        seed=SEED,
        materialize=False,
        parallel=parallel,
    )


def _timed_publish(table, *, parallel: bool) -> tuple[float, object]:
    start = time.perf_counter()
    result = _publish(table, parallel=parallel)
    return time.perf_counter() - start, result


def _timed_batch(engine, queries) -> float:
    start = time.perf_counter()
    engine.answer_all_with_intervals(queries)
    return time.perf_counter() - start


def test_sharding_scalability(record_result):
    scale, rows, num_queries = _scale_rows_queries()
    table = generate_census_table(BRAZIL.scaled(scale), rows, seed=1)
    age_size = table.schema["Age"].size

    # ---- publish: sequential vs pooled (same seeds, identical output)
    serial_seconds, sharded = _timed_publish(table, parallel=False)
    parallel_seconds, pooled = _timed_publish(table, parallel=True)
    for _ in range(ATTEMPTS - 1):
        if serial_seconds / parallel_seconds >= MIN_PARALLEL_SPEEDUP:
            break
        serial_seconds = min(serial_seconds, _timed_publish(table, parallel=False)[0])
        parallel_seconds = min(
            parallel_seconds, _timed_publish(table, parallel=True)[0]
        )
    speedup = serial_seconds / parallel_seconds

    # Same seeds => the pooled publish answers identically.
    probe = generate_workload(table.schema, 50, seed=SEED + 2)
    np.testing.assert_array_equal(
        QueryEngine(sharded).answer_all(probe), QueryEngine(pooled).answer_all(probe)
    )

    # ---- cross-shard batch queries: sharded vs unsharded backend
    unsharded = PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=SEED, materialize=False
    )
    mixed = generate_workload(table.schema, num_queries, seed=SEED + 3)
    sharded_engine = QueryEngine(sharded)
    unsharded_engine = QueryEngine(unsharded)
    # Warm both engines' profile caches, then measure the steady state.
    _timed_batch(sharded_engine, mixed[:50])
    _timed_batch(unsharded_engine, mixed[:50])
    sharded_seconds = _timed_batch(sharded_engine, mixed)
    unsharded_seconds = _timed_batch(unsharded_engine, mixed)

    # A routed workload: every box inside one shard's Age interval.
    bounds = shard_bounds(age_size, NUM_SHARDS)
    routed = [
        query
        for query in generate_workload(table.schema, 4 * num_queries, seed=SEED + 4)
        if bounds[0] <= query.box()[0][0] and query.box()[0][1] <= bounds[1]
    ][:num_queries] or mixed[:1]
    routed_seconds = _timed_batch(sharded_engine, routed)

    payload = {
        "smoke": _smoke(),
        "provenance": provenance(
            seed=SEED,
            census_scale=scale,
            table_rows=rows,
            num_shards=NUM_SHARDS,
            batch_queries=num_queries,
            cpu_count=os.cpu_count(),
            domain_shape=list(table.schema.shape),
        ),
        "publish": {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": speedup,
        },
        "batch_query": {
            "queries": len(mixed),
            "sharded_seconds": sharded_seconds,
            "sharded_qps": len(mixed) / sharded_seconds,
            "sharded_latency_us": 1e6 * sharded_seconds / len(mixed),
            "unsharded_seconds": unsharded_seconds,
            "unsharded_qps": len(mixed) / unsharded_seconds,
            "routed_queries": len(routed),
            "routed_latency_us": 1e6 * routed_seconds / len(routed),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sharding.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    batch = payload["batch_query"]
    record_result(
        "sharding",
        "\n".join(
            [
                f"{NUM_SHARDS} shards by Age over {table.schema.shape} "
                f"({rows} rows, {os.cpu_count()} cpus)",
                f"publish serial  : {serial_seconds:.3f} s",
                f"publish parallel: {parallel_seconds:.3f} s "
                f"(speedup {speedup:.2f}x)",
                f"mixed batch     : {batch['sharded_qps']:>10.0f} q/s sharded, "
                f"{batch['unsharded_qps']:>10.0f} q/s unsharded",
                f"routed batch    : {batch['routed_latency_us']:.1f} us/query "
                f"({batch['routed_queries']} single-shard queries)",
            ]
        ),
        meta={"seed": SEED, "census_scale": scale, "num_shards": NUM_SHARDS},
    )

    if _smoke():
        return
    # The acceptance gate needs real parallel hardware; one core cannot
    # beat a sequential loop, so (like every timing gate here) it only
    # runs where the measurement is meaningful.
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel publish speedup {speedup:.2f}x below the "
            f"{MIN_PARALLEL_SPEEDUP:.1f}x bar after {ATTEMPTS} attempts"
        )
