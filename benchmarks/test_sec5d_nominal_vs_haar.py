"""§V-D worked comparison: nominal wavelet transform vs plain Haar on a
nominal attribute (Occupation: m = 512, h = 3).

Closed form: 4400/eps^2 (Haar, Equation 4) vs 288/eps^2 (nominal,
Equation 6) — a ~15x variance reduction.  This bench reproduces the
arithmetic and *measures* the actual error of both options on synthetic
occupation data, confirming the nominal transform's win is real and not
just a looser-vs-tighter-bound artifact.
"""

import numpy as np

from repro.analysis.theory import nominal_vs_haar
from repro.core.privelet import publish_nominal_vector, publish_ordinal_vector
from repro.data.hierarchy import two_level_hierarchy


def measure(reps: int = 400):
    rng = np.random.default_rng(55)
    hierarchy = two_level_hierarchy([32] * 16)  # 512 leaves, h = 3
    counts = rng.integers(0, 50, size=512).astype(float)
    epsilon = 1.0
    # Query: one level-2 group (all leaves under an internal node).
    lo, hi = hierarchy.leaf_interval(1)
    exact = counts[lo:hi].sum()

    haar_errors, nominal_errors = [], []
    for seed in range(reps):
        haar_errors.append(
            publish_ordinal_vector(counts, epsilon, seed=seed)[lo:hi].sum() - exact
        )
        nominal_errors.append(
            publish_nominal_vector(counts, hierarchy, epsilon, seed=seed)[lo:hi].sum()
            - exact
        )
    return float(np.var(haar_errors)), float(np.var(nominal_errors))


def test_sec5d_nominal_vs_haar(benchmark, record_result):
    comparison = nominal_vs_haar(512, 3, epsilon=1.0)
    haar_measured, nominal_measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "Section V-D: nominal wavelet transform vs HWT (Occupation, m=512, h=3)",
        "=" * 70,
        f"{'':>24}{'bound (eps=1)':>16}{'measured var':>16}",
        f"{'Haar on leaf order':>24}{comparison.haar_variance_bound:>16.1f}{haar_measured:>16.1f}",
        f"{'Nominal transform':>24}{comparison.nominal_variance_bound:>16.1f}{nominal_measured:>16.1f}",
        f"bound improvement: {comparison.improvement_factor:.1f}x "
        f"(paper: 4400/288 ~ 15x); measured improvement: "
        f"{haar_measured / nominal_measured:.1f}x",
    ]
    record_result("sec5d_nominal_vs_haar", "\n".join(lines))

    # Paper numbers hold exactly for the bounds...
    assert comparison.haar_variance_bound == 4400.0
    assert comparison.nominal_variance_bound == 288.0
    # ...and the measured variances respect them and preserve the winner.
    assert haar_measured <= comparison.haar_variance_bound * 1.3
    assert nominal_measured <= comparison.nominal_variance_bound * 1.3
    assert nominal_measured < haar_measured
