"""Benchmark: dense vs coefficient-space release backends.

The coefficient-space release answers straight from the noisy HN
coefficients — no inverse transform at publish time, no ``O(m)`` prefix
-oracle build at serving time, ``O(log m)`` gathered coefficients per
1-D range.  This benchmark publishes a 1-D ordinal domain at sizes up to
``m = 2**22`` and measures, per size:

* the coefficient backend's batch serving time (64 random ranges) and
  per-query latency — expected to grow ~log m;
* at the largest size, the cost of standing up the dense serving path
  from the same release (materialize ``M*`` + build the prefix oracle),
  which the ISSUE requires to be >= 50x slower than answering a whole
  batch in coefficient space;
* the serving-state memory of both backends.

Set ``BENCH_SMOKE=1`` (or the legacy alias ``RELEASE_BENCH_SMOKE=1``)
for a CI-sized run (smaller domains, no
timing assertions — timers on shared runners are too noisy to gate on).
In full mode the timing gates are re-measured up to three times before
failing, so a single scheduler hiccup cannot redden tier-1.  Either way
the numbers land in ``results/BENCH_release_backends.json`` so the perf
trajectory accumulates run over run.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from benchmarks.provenance import provenance
from repro.core.privelet import publish_ordinal_release
from repro.queries.oracle import RangeSumOracle

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
BATCH_SIZE = 64
#: Full-mode acceptance bars (dense stand-up vs one coefficient batch;
#: per-query growth across a 16x domain growth).
MIN_SETUP_SPEEDUP = 50.0
MAX_PER_QUERY_GROWTH = 8.0
ATTEMPTS = 3


def _smoke() -> bool:
    from benchmarks.conftest import bench_smoke

    return bench_smoke("RELEASE_BENCH_SMOKE")


def _exponents() -> list[int]:
    return [12, 14, 16] if _smoke() else [18, 20, 22]


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _random_boxes(m: int, count: int, rng) -> tuple[np.ndarray, np.ndarray]:
    pairs = np.sort(rng.integers(0, m + 1, size=(count, 2)), axis=1)
    return pairs[:, 0:1], pairs[:, 1:2]


def _measure(rng) -> dict:
    """One full sweep: coefficient points per size + dense at largest."""
    points = []
    largest = None
    for exponent in _exponents():
        m = 1 << exponent
        counts = np.zeros(m)
        hot = rng.integers(0, m, size=512)
        counts[hot] += rng.integers(1, 50, size=hot.size)

        start = time.perf_counter()
        result = publish_ordinal_release(counts, 1.0, seed=exponent)
        publish_seconds = time.perf_counter() - start
        release = result.release

        lows, highs = _random_boxes(m, BATCH_SIZE, rng)
        batch_seconds = _best_of(lambda: release.answer_boxes(lows, highs), 7)
        points.append(
            {
                "m": m,
                "coeff_publish_seconds": publish_seconds,
                "coeff_batch_seconds": batch_seconds,
                "coeff_per_query_seconds": batch_seconds / BATCH_SIZE,
                "coeff_nbytes": release.nbytes(),
            }
        )
        largest = (m, result, release, lows, highs, batch_seconds)

    # Dense serving-path stand-up at the largest size, from the same
    # release: materialize M* + build the prefix oracle.
    m, result, release, lows, highs, batch_seconds = largest
    dense_holder = {}

    def build_dense():
        matrix = result.matrix  # inverse transform (not cached)
        dense_holder["oracle"] = RangeSumOracle(matrix)
        dense_holder["nbytes"] = matrix.values.nbytes + dense_holder["oracle"].nbytes

    dense_setup_seconds = _best_of(build_dense, 2)
    oracle = dense_holder["oracle"]
    dense_batch_seconds = _best_of(lambda: oracle.answer_boxes(lows, highs), 7)
    np.testing.assert_allclose(
        release.answer_boxes(lows, highs),
        oracle.answer_boxes(lows, highs),
        rtol=1e-8,
        atol=1e-6,
    )
    return {
        "smoke": _smoke(),
        "provenance": provenance(
            seed=20100301, exponents=_exponents(), batch_size=BATCH_SIZE
        ),
        "batch_size": BATCH_SIZE,
        "points": points,
        "dense_at_largest": {
            "m": m,
            "setup_seconds": dense_setup_seconds,
            "batch_seconds": dense_batch_seconds,
            "per_query_seconds": dense_batch_seconds / BATCH_SIZE,
            "nbytes": dense_holder["nbytes"],
            "setup_over_coeff_batch": dense_setup_seconds / batch_seconds,
        },
    }


def _gates_pass(payload: dict) -> bool:
    """The full-mode acceptance bars, as a predicate (for retries)."""
    per_query = [p["coeff_per_query_seconds"] for p in payload["points"]]
    return (
        payload["dense_at_largest"]["setup_over_coeff_batch"] >= MIN_SETUP_SPEEDUP
        and per_query[-1] < 1e-3
        and per_query[-1] < MAX_PER_QUERY_GROWTH * max(per_query[0], 1e-6)
    )


def test_release_backend_crossover(record_result):
    rng = np.random.default_rng(20100301)

    # Correctness spot check at the smallest size: coefficient answers
    # match the dense oracle over the materialized matrix.
    m0 = 1 << _exponents()[0]
    check = publish_ordinal_release(np.arange(m0, dtype=np.float64), 1.0, seed=0)
    lows0, highs0 = _random_boxes(m0, 128, rng)
    dense0 = RangeSumOracle(check.matrix)
    np.testing.assert_allclose(
        check.release.answer_boxes(lows0, highs0),
        dense0.answer_boxes(lows0, highs0),
        rtol=1e-9,
        atol=1e-6,
    )

    # Wall-clock gates are noisy on shared machines: re-measure the
    # whole sweep up to ATTEMPTS times and gate on the best attempt.
    payload = _measure(rng)
    if not _smoke():
        for _ in range(ATTEMPTS - 1):
            if _gates_pass(payload):
                break
            payload = _measure(rng)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_release_backends.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    points = payload["points"]
    dense = payload["dense_at_largest"]
    lines = [
        f"{'m':>10}{'publish (s)':>14}{'batch64 (s)':>14}"
        f"{'per-query (s)':>16}{'state (MB)':>12}"
    ]
    for point in points:
        lines.append(
            f"{point['m']:>10}{point['coeff_publish_seconds']:>14.4f}"
            f"{point['coeff_batch_seconds']:>14.6f}"
            f"{point['coeff_per_query_seconds']:>16.9f}"
            f"{point['coeff_nbytes'] / 1e6:>12.1f}"
        )
    lines.append(
        f"dense stand-up at m={dense['m']}: {dense['setup_seconds']:.4f} s "
        f"(= {dense['setup_over_coeff_batch']:.0f}x one coefficient-space "
        f"batch of {BATCH_SIZE}); dense state {dense['nbytes'] / 1e6:.1f} MB "
        f"vs coefficient {points[-1]['coeff_nbytes'] / 1e6:.1f} MB"
    )
    record_result("release_backends", "\n".join(lines))

    if _smoke():
        return

    # The ISSUE's acceptance bars: standing up the dense serving path at
    # m >= 2^22 costs >= 50x answering an entire batch from coefficients,
    # and per-query latency grows ~log m (the domain grew 16x between
    # the endpoints, log m by ~1.22x).
    assert dense["m"] >= 1 << 22
    per_query = [p["coeff_per_query_seconds"] for p in points]
    assert _gates_pass(payload), (
        f"timing gates failed after {ATTEMPTS} attempts: "
        f"setup speedup {dense['setup_over_coeff_batch']:.1f}x "
        f"(bar {MIN_SETUP_SPEEDUP:.0f}x), per-query "
        f"{per_query[0]:.2e}s -> {per_query[-1]:.2e}s "
        f"(bar {MAX_PER_QUERY_GROWTH:.0f}x growth)"
    )
