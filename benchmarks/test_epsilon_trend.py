"""Cross-panel trend of Figures 6-9: error scales as 1/eps^2.

Each figure has four panels (ε = 0.5, 0.75, 1, 1.25); moving across the
panels, both mechanisms' square error shrinks proportionally to 1/ε²
(Laplace variance is 2λ² with λ ∝ 1/ε).  This bench measures the
overall square error of both mechanisms across the ε grid and fits the
power law.
"""

import numpy as np

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.experiments.runner import run_accuracy


def fitted_exponent(epsilons, errors) -> float:
    """Least-squares slope of log(error) against log(eps)."""
    return float(np.polyfit(np.log(epsilons), np.log(errors), 1)[0])


def test_epsilon_trend(benchmark, brazil_bundle, record_result):
    table, matrix, workload = brazil_bundle
    epsilons = (0.25, 0.5, 1.0, 2.0, 4.0)  # wider grid for a stable fit

    def run():
        return run_accuracy(
            "brazil",
            matrix,
            workload,
            [BasicMechanism(), PriveletPlusMechanism(sa_names=("Age", "Gender"))],
            epsilons,
            metric="square",
            measure="coverage",
            num_tuples=table.num_rows,
            seed=777,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Cross-panel trend: overall square error vs epsilon (Brazil)",
        "=" * 60,
        f"{'epsilon':>10}{'Basic':>14}{'Privelet+':>14}",
    ]
    basic_errors, plus_errors = [], []
    for epsilon in epsilons:
        basic = result.series_for("Basic", epsilon).overall_error
        plus = result.series_for("Privelet+(SA={Age, Gender})", epsilon).overall_error
        basic_errors.append(basic)
        plus_errors.append(plus)
        lines.append(f"{epsilon:>10}{basic:>14.4g}{plus:>14.4g}")
    basic_slope = fitted_exponent(epsilons, basic_errors)
    plus_slope = fitted_exponent(epsilons, plus_errors)
    lines.append(
        f"fitted power law: Basic eps^{basic_slope:.2f}, "
        f"Privelet+ eps^{plus_slope:.2f}  (theory: eps^-2)"
    )
    record_result("epsilon_trend", "\n".join(lines))

    # One noise draw per epsilon -> the fitted slope carries sampling
    # error around the theoretical -2.
    assert -2.7 < basic_slope < -1.4
    assert -2.7 < plus_slope < -1.4
