"""Ablation: the §V-B mean-subtraction refinement on vs off.

The paper's Lemma 5 bound (< 4 sigma^2 per query) depends on the
refinement re-centring each sibling group; without it, subtree-sum
queries accumulate the raw noise of every child coefficient.  This bench
measures both variants at equal privacy on a 3-level hierarchy.
"""

import numpy as np

from repro.core.laplace import laplace_noise, magnitude_for_epsilon
from repro.data.hierarchy import two_level_hierarchy
from repro.transforms.nominal import NominalTransform


def measure(reps: int = 500):
    rng = np.random.default_rng(99)
    hierarchy = two_level_hierarchy([16] * 16)  # 256 leaves, h = 3
    transform = NominalTransform(hierarchy)
    counts = rng.integers(0, 50, size=256).astype(float)
    epsilon = 1.0
    magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.sensitivity_factor())
    coefficients = transform.forward(counts)
    lo, hi = hierarchy.leaf_interval(3)  # one level-2 group
    exact = counts[lo:hi].sum()

    with_refine, without_refine = [], []
    for seed in range(reps):
        noisy = coefficients + laplace_noise(
            magnitude / transform.weight_vector(), seed=seed
        )
        with_refine.append(transform.inverse(noisy, refine=True)[lo:hi].sum() - exact)
        without_refine.append(
            transform.inverse(noisy, refine=False)[lo:hi].sum() - exact
        )
    return float(np.var(with_refine)), float(np.var(without_refine))


def test_ablation_mean_subtraction(benchmark, record_result):
    refined, raw = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Ablation: nominal mean-subtraction refinement (256 leaves, h=3, eps=1)",
        "=" * 70,
        f"subtree-sum query noise variance with refinement:    {refined:10.1f}",
        f"subtree-sum query noise variance without refinement: {raw:10.1f}",
        f"refinement reduces variance by {raw / refined:.1f}x",
    ]
    record_result("ablation_mean_subtraction", "\n".join(lines))
    assert refined < raw
