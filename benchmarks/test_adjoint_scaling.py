"""Micro-benchmark: dense vs matrix-free axis variance profiles.

The pre-refactor exact-variance path materialized the dense
``input_length x output_length`` reconstruction matrix (via
``inverse(np.eye(m))``) on **every** profile call — ``O(m^2)`` time and
memory per query.  The matrix-free Haar adjoint computes the same
profile from the ``O(log m)`` boundary nodes of the dyadic tree.

This benchmark times both paths on one Haar axis across domain sizes,
asserts the matrix-free path is at least 100x faster wherever the dense
path is still feasible, and records matrix-free timings up to
``m = 2^20`` — a scale at which the dense path would need terabytes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.exact import axis_variance_profile
from repro.transforms.haar import HaarTransform


def dense_profile(transform: HaarTransform, lo: int, hi: int) -> float:
    """The pre-refactor dense path: rebuild the reconstruction matrix."""
    identity = np.eye(transform.output_length)
    reconstruction = transform.inverse(identity, refine=True)
    adjoint = reconstruction[lo:hi].sum(axis=0)
    return float(np.sum((adjoint / transform.weight_vector()) ** 2))


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_adjoint_scaling(record_result):
    # Dense is O(m^2) memory: 2^13 already needs a 0.5 GB identity, and
    # the ISSUE-motivating scales (2^16+) would need tens of GB — so the
    # head-to-head stops at 2^12 and matrix-free continues alone.
    dense_exponents = [8, 10, 12]
    free_exponents = [8, 10, 12, 16, 20]

    lines = [
        f"{'m':>10}{'dense profile (s)':>20}{'matrix-free (s)':>18}{'speedup':>10}"
    ]
    speedups = {}
    free_times = {}
    for exponent in free_exponents:
        m = 2**exponent
        transform = HaarTransform(m)
        lo, hi = m // 5, (4 * m) // 5
        free_repeats = 200
        start = time.perf_counter()
        for _ in range(free_repeats):
            free_value = axis_variance_profile(transform, lo, hi)
        free_time = (time.perf_counter() - start) / free_repeats
        free_times[exponent] = free_time

        if exponent in dense_exponents:
            dense_time = _best_of(lambda: dense_profile(transform, lo, hi), 3)
            np.testing.assert_allclose(
                free_value, dense_profile(transform, lo, hi), rtol=1e-10
            )
            speedups[exponent] = dense_time / free_time
            lines.append(
                f"{m:>10}{dense_time:>20.6f}{free_time:>18.9f}"
                f"{speedups[exponent]:>9.0f}x"
            )
        else:
            lines.append(f"{m:>10}{'(infeasible)':>20}{free_time:>18.9f}{'-':>10}")

    # Batch path: a 10k-range workload on one 2^16 axis in one call.
    transform = HaarTransform(2**16)
    rng = np.random.default_rng(0)
    lows = rng.integers(0, 2**16, size=10_000)
    highs = np.minimum(2**16, lows + 1 + rng.integers(0, 2**15, size=10_000))
    start = time.perf_counter()
    transform.range_profiles(lows, highs)
    batch_time = time.perf_counter() - start
    lines.append(f"10k-range batch on m=2^16: {batch_time:.4f} s total")

    record_result("adjoint_scaling", "\n".join(lines))

    # The refactor's headline claim: >=100x at the largest size the dense
    # path can still run (the gap only widens with m — dense is O(m^2),
    # matrix-free O(log m)).
    assert speedups[12] >= 100, f"expected >=100x at m=4096, got {speedups[12]:.0f}x"
    # Matrix-free must stay interactive at the scales dense cannot reach.
    assert free_times[16] < 0.05
    assert free_times[20] < 0.05
