"""Extension bench: Barak et al. [21] vs Privelet on marginal accuracy.

§VIII positions Barak et al. as optimizing a different target: mutually
consistent, non-negative marginals, at the cost of an LP over all m
cells.  This bench publishes a binary table both ways and measures (a)
marginal accuracy, (b) the consistency property, on a 6-attribute binary
table (m = 64, LP-friendly).
"""

import numpy as np

from repro.baselines.barak import BarakMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.data.table import Table


def measure(reps: int = 30):
    rng = np.random.default_rng(202)
    schema = Schema([OrdinalAttribute(f"B{i}", 2) for i in range(6)])
    rows = (rng.random((4000, 6)) < rng.random(6)).astype(np.int64)
    table = Table(schema, rows)
    matrix = table.frequency_matrix()
    subsets = [(0, 1), (2, 3), (4, 5)]
    epsilon = 1.0

    barak = BarakMechanism(subsets)
    privelet = PriveletPlusMechanism(sa_names=())

    barak_mse, privelet_mse, barak_negative = [], [], 0
    for seed in range(reps):
        released = barak.publish_matrix(matrix, epsilon, seed=seed)
        noisy = privelet.publish_matrix(matrix, epsilon, seed=1000 + seed).matrix
        if released.values.min() < -1e-9:
            barak_negative += 1
        for subset in subsets:
            names = [schema.names[i] for i in subset]
            exact = matrix.marginal(names)
            barak_mse.append(((released.marginal(names) - exact) ** 2).mean())
            privelet_mse.append(((noisy.marginal(names) - exact) ** 2).mean())
    return float(np.mean(barak_mse)), float(np.mean(privelet_mse)), barak_negative


def test_barak_vs_privelet_marginals(benchmark, record_result):
    barak_mse, privelet_mse, negative_count = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lines = [
        "Extension: Barak et al. vs Privelet on 2-way marginals (6 binary attrs, eps=1)",
        "=" * 78,
        f"Barak marginal MSE:    {barak_mse:12.2f}   (non-negative in all runs: "
        f"{'yes' if negative_count == 0 else 'NO'})",
        f"Privelet marginal MSE: {privelet_mse:12.2f}   (matrix may go negative; "
        "marginals unconstrained)",
        "paper §VIII: Barak et al. targets consistent non-negative marginals;",
        "Privelet targets range-count accuracy.  Both are DP at equal epsilon.",
    ]
    record_result("ablation_barak_marginals", "\n".join(lines))

    assert negative_count == 0
    # Both produce usable marginals at this scale (same order of magnitude
    # or Barak better on its home turf).
    assert barak_mse < privelet_mse * 50
