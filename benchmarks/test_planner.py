"""Benchmark: cost-based batch planning on a nested shard x time release.

The planner's promise, measured on the hardest composed backend the
algebra can build — a :class:`~repro.core.compose.Partition` of
per-shard :class:`~repro.core.compose.TimeTree` streams (16 shards
by Age, 64 epochs each; CI smoke: 4 x 8).  A skewed dashboard-style
workload (Zipf-weighted duplicate boxes plus repeated Age-marginal
cells) is answered twice over the same engine:

* **unplanned** — every row straight through
  :meth:`~repro.queries.engine.QueryEngine.answer_columnar`;
* **planned** — through :class:`~repro.planner.QueryPlanner`:
  duplicates collapse to one engine pass, the marginal cells promote
  into a materialized cube view, and answers scatter back bit-for-bit
  identical (asserted on every run).

Recorded: sustained rows/sec for both paths and the speedup, the
deduplication and view-hit rates, the mean part-cover fraction of the
batches, and the engine profile-cache hit rate.  Set ``BENCH_SMOKE=1``
for the CI-sized run (no timing assertion — shared-runner clocks are
too noisy to gate on); either way the numbers land in
``results/BENCH_planner.json`` with a provenance block.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from benchmarks.provenance import provenance
from repro.core.compose import Partition
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.framework import PublishResult
from repro.core.sharding import shard_bounds, shard_schema
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.data.table import Table
from repro.queries.engine import QueryEngine
from repro.planner import QueryPlanner
from repro.serving.cache import LRUProfileCache
from repro.streaming import StreamingPublisher

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SEED = 20100301
SHARD_BY = "Age"

# Cache-locality measurement: a hot set small enough to stay resident
# in a bounded LRU, plus a full Income marginal sweep whose distinct
# per-axis ranges overflow the bound and thrash the naive path.
LRU_BOUND = 48
HOT_BOXES = 24
HOT_ROWS = 800
WARM_RENDERS = 3
STEADY_RENDERS = 3


def _smoke() -> bool:
    from benchmarks.conftest import bench_smoke

    return bench_smoke()


def _dimensions() -> tuple[int, int, int, int]:
    """(shards, epochs, rows per epoch, batch rows)."""
    return (4, 8, 150, 800) if _smoke() else (16, 64, 400, 20_000)


def _build_nested(schema, shards: int, epochs: int, rows: int):
    """One stream per Age shard, composed under a Partition."""
    bounds = shard_bounds(schema[SHARD_BY].size, shards)
    parts = []
    for index, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        sub_schema = shard_schema(schema, SHARD_BY, lo, hi)
        publisher = StreamingPublisher(
            sub_schema,
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            seed=SEED + index,
        )
        for epoch in range(epochs):
            table = generate_census_table(
                BRAZIL.scaled(0.05), rows, seed=SEED + 100 * index + epoch
            )
            data = table.rows
            keep = (data[:, 0] >= lo) & (data[:, 0] < hi)
            data = data[keep].copy()
            data[:, 0] -= lo
            publisher.ingest(Table(sub_schema, data))
            publisher.advance_epoch()
        parts.append(publisher.result())
    return Partition(schema, SHARD_BY, bounds, parts)


def _skewed_batch(schema, count: int, seed: int):
    """Zipf-weighted duplicates over few distinct boxes + marginal cells."""
    rng = np.random.default_rng(seed)
    shape = np.asarray(schema.shape, dtype=np.int64)
    distinct = max(count // 20, 8)
    lows = np.empty((distinct, len(shape)), dtype=np.int64)
    highs = np.empty_like(lows)
    for axis, size in enumerate(shape):
        lo = rng.integers(0, size, distinct)
        width = rng.integers(1, size + 1, distinct)
        lows[:, axis] = lo
        highs[:, axis] = np.minimum(lo + width, size)
    weights = 1.0 / np.arange(1, distinct + 1) ** 1.2
    picks = rng.choice(distinct, size=count, p=weights / weights.sum())
    lows, highs = lows[picks], highs[picks]
    # A quarter of the traffic sweeps the Age marginal cell by cell.
    cells = rng.integers(0, shape[0], count // 4)
    marg_lows = np.zeros((len(cells), len(shape)), dtype=np.int64)
    marg_highs = np.tile(shape, (len(cells), 1))
    marg_lows[:, 0] = cells
    marg_highs[:, 0] = cells + 1
    lows = np.vstack([lows, marg_lows])
    highs = np.vstack([highs, marg_highs])
    order = rng.permutation(len(lows))
    return lows[order], highs[order]


def _timed(answer, lows, highs) -> tuple[float, object]:
    start = time.perf_counter()
    batch = answer(lows, highs)
    return time.perf_counter() - start, batch


def _locality_batch(schema, seed: int):
    """Hot distinct boxes plus an Income marginal sweep (the polluter)."""
    rng = np.random.default_rng(seed)
    shape = np.asarray(schema.shape, dtype=np.int64)
    lows = np.empty((HOT_BOXES, len(shape)), dtype=np.int64)
    highs = np.empty_like(lows)
    for axis, size in enumerate(shape):
        lo = rng.integers(0, size, HOT_BOXES)
        width = rng.integers(1, size + 1, HOT_BOXES)
        lows[:, axis] = lo
        highs[:, axis] = np.minimum(lo + width, size)
    picks = rng.choice(HOT_BOXES, size=HOT_ROWS)
    lows, highs = lows[picks], highs[picks]
    axis = next(i for i in range(len(shape)) if schema[i].name == "Income")
    cells = np.arange(schema[axis].size, dtype=np.int64)
    sweep_lows = np.zeros((len(cells), len(shape)), dtype=np.int64)
    sweep_highs = np.tile(shape, (len(cells), 1))
    sweep_lows[:, axis] = cells
    sweep_highs[:, axis] = cells + 1
    lows = np.vstack([lows, sweep_lows])
    highs = np.vstack([highs, sweep_highs])
    order = rng.permutation(len(lows))
    return lows[order], highs[order]


def _steady_hit_rate(caches, answer, lows, highs) -> tuple[float, int]:
    """Hit rate and miss count over the post-warm-up renders only."""
    hits_before, misses_before = caches.hits, caches.misses
    for _ in range(STEADY_RENDERS):
        answer(lows, highs)
    hits = caches.hits - hits_before
    misses = caches.misses - misses_before
    return hits / max(hits + misses, 1), misses


def _cache_locality(result, schema) -> dict:
    """Planner-grouped vs request-order hit rates under a bounded LRU.

    Two fresh engines over the same release, each with a
    ``LRU_BOUND``-entry per-axis profile cache, re-answer the same
    dashboard batch.  The naive path re-asks the Income sweep every
    render, overflowing the bound and evicting the hot set; the planner
    dedups the hot rows and serves the sweep from a materialized
    marginal view, so its engine's working set stays resident.
    """

    def factory(transforms):
        return LRUProfileCache(transforms, max_entries_per_axis=LRU_BOUND)

    lows, highs = _locality_batch(schema, SEED + 77)
    naive_engine = QueryEngine(result, profile_cache_factory=factory)
    planned_engine = QueryEngine(result, profile_cache_factory=factory)
    planner = QueryPlanner(planned_engine)
    for _ in range(WARM_RENDERS):
        naive_engine.answer_columnar(lows, highs)
        planner.answer_columnar(lows, highs)
    naive_rate, naive_misses = _steady_hit_rate(
        naive_engine.profile_cache, naive_engine.answer_columnar, lows, highs
    )
    planned_rate, planned_misses = _steady_hit_rate(
        planned_engine.profile_cache, planner.answer_columnar, lows, highs
    )
    return {
        "lru_bound_per_axis": LRU_BOUND,
        "steady_renders": STEADY_RENDERS,
        "batch_rows": int(len(lows)),
        "naive_hit_rate": naive_rate,
        "planned_hit_rate": planned_rate,
        "hit_rate_delta": planned_rate - naive_rate,
        "naive_steady_misses": int(naive_misses),
        "planned_steady_misses": int(planned_misses),
        "views_built": planner.views_built,
    }


def test_planner_speedup(record_result):
    shards, epochs, rows, batch_rows = _dimensions()
    schema = census_schema(BRAZIL.scaled(0.05))
    release = _build_nested(schema, shards, epochs, rows)
    result = PublishResult(
        release=release,
        epsilon=1.0,
        noise_magnitude=1.0,
        generalized_sensitivity=1.0,
        variance_bound=1.0,
        details={"sharded": True},
    )
    engine = QueryEngine(result)
    planner = QueryPlanner(engine)
    lows, highs = _skewed_batch(schema, batch_rows, seed=SEED + 9)

    # Warm payloads and profile caches so both paths measure steady state,
    # and let the planner see the marginal traffic once (views build here).
    engine.answer_columnar(lows, highs)
    planner.answer_columnar(lows, highs)

    unplanned_seconds, base = _timed(engine.answer_columnar, lows, highs)
    planned_seconds, planned = _timed(planner.answer_columnar, lows, highs)
    # The refactor contract, asserted under benchmark load too.
    np.testing.assert_array_equal(base.estimates, planned.estimates)
    np.testing.assert_array_equal(base.noise_stds, planned.noise_stds)

    plan = planner.plan(lows, highs)
    total_rows = len(lows)
    speedup = unplanned_seconds / planned_seconds
    caches = engine.profile_cache
    payload = {
        "smoke": _smoke(),
        "provenance": provenance(
            seed=SEED,
            shards=shards,
            epochs=epochs,
            rows_per_epoch=rows,
            batch_rows=total_rows,
            cpu_count=os.cpu_count(),
            domain_shape=list(schema.shape),
        ),
        "planned_vs_unplanned": {
            "batch_rows": total_rows,
            "unplanned_seconds": unplanned_seconds,
            "unplanned_qps": total_rows / unplanned_seconds,
            "planned_seconds": planned_seconds,
            "planned_qps": total_rows / planned_seconds,
            "planned_speedup": speedup,
        },
        "plan": {
            "unique_rows": plan.num_unique,
            "duplicate_rows": plan.duplicate_rows,
            "dedup_fraction": plan.duplicate_rows / total_rows,
            "cover_parts": len(plan.cover),
            "cover_fraction": len(plan.cover) / release.num_parts,
            "estimated_cost": plan.cost,
            "estimated_naive_cost": plan.naive_cost,
        },
        "caches": {
            "views_built": planner.views_built,
            "view_rows": planner.view_rows,
            "view_hit_rate": planner.view_rows / max(planner.rows_planned, 1),
            "profile_cache_hit_rate": caches.hit_rate,
        },
        "cache_locality": _cache_locality(result, schema),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_planner.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    timing = payload["planned_vs_unplanned"]
    locality = payload["cache_locality"]
    record_result(
        "planner",
        "\n".join(
            [
                f"{shards} shards x {epochs} epochs over {tuple(schema.shape)} "
                f"({total_rows} skewed rows/batch)",
                f"unplanned: {timing['unplanned_qps']:>10.0f} rows/s",
                f"planned  : {timing['planned_qps']:>10.0f} rows/s "
                f"(speedup {speedup:.2f}x)",
                f"dedup    : {payload['plan']['dedup_fraction']:.0%} of rows, "
                f"cover {payload['plan']['cover_parts']}/{release.num_parts} parts",
                f"views    : {planner.views_built} built, "
                f"{payload['caches']['view_hit_rate']:.0%} of rows view-served",
                f"locality : hit rate {locality['planned_hit_rate']:.3f} planned "
                f"vs {locality['naive_hit_rate']:.3f} naive "
                f"(LRU bound {LRU_BOUND}/axis)",
            ]
        ),
        meta={"seed": SEED, "shards": shards, "epochs": epochs},
    )

    assert payload["plan"]["dedup_fraction"] > 0.5  # the workload is skewed
    if _smoke():
        return
    assert speedup > 1.0, (
        f"planned path {timing['planned_qps']:.0f} rows/s did not beat "
        f"unplanned {timing['unplanned_qps']:.0f} rows/s"
    )
    assert locality["hit_rate_delta"] > 0, (
        f"planner-grouped batches ({locality['planned_hit_rate']:.4f}) did not "
        f"beat request order ({locality['naive_hit_rate']:.4f}) on profile-cache "
        f"hit rate under a {LRU_BOUND}-entry LRU"
    )
