"""Micro-benchmark of workload evaluation via the prefix-sum oracle.

The §VII-A experiments answer 40 000 queries per noisy matrix; this
bench demonstrates that bulk evaluation is cheap relative to publishing.
"""

import numpy as np

from repro.data.census import BRAZIL, census_schema
from repro.data.frequency import FrequencyMatrix
from repro.queries.oracle import RangeSumOracle
from repro.queries.workload import generate_workload


def test_oracle_build_and_answer_40k(benchmark):
    schema = census_schema(BRAZIL.scaled(0.1))
    rng = np.random.default_rng(88)
    matrix = FrequencyMatrix(schema, rng.poisson(1.0, size=schema.shape).astype(float))
    queries = generate_workload(schema, 40_000, max_predicates=4, seed=89)

    def build_and_answer():
        oracle = RangeSumOracle(matrix)
        return oracle.answer_all(queries)

    answers = benchmark.pedantic(build_and_answer, rounds=3, iterations=1)
    assert answers.shape == (40_000,)
