"""Figure 9: average relative error vs query selectivity (US census)."""

import numpy as np

from repro.data.census import US
from repro.experiments.figures import run_relative_error_vs_selectivity
from repro.experiments.reporting import format_accuracy_run


def test_fig9_relative_error_vs_selectivity_us(
    benchmark, us_bundle, accuracy_config, record_result
):
    run = benchmark.pedantic(
        run_relative_error_vs_selectivity,
        args=(US, accuracy_config),
        kwargs={"prepared": us_bundle},
        rounds=1,
        iterations=1,
    )
    text = format_accuracy_run(
        run, chart=True, title="Figure 9: avg relative error vs selectivity (US)"
    )
    record_result("fig9_relerr_selectivity_us", text)

    privelet_name = "Privelet+(SA={Age, Gender})"
    wins = 0
    for epsilon in accuracy_config.epsilons:
        basic = run.series_for("Basic", epsilon)
        plus = run.series_for(privelet_name, epsilon)
        if plus.bucket_errors[-1] < basic.bucket_errors[-1]:
            wins += 1
        assert np.all(np.isfinite(plus.bucket_errors))
    assert wins >= len(accuracy_config.epsilons) - 1
