"""Figure 8: average relative error vs query selectivity (Brazil census).

Paper shape: with the 0.1%-of-n sanity bound, Privelet+'s relative error
is below Basic's except at the lowest selectivities, and stays moderate
throughout; Basic exceeds 70% in several buckets at paper scale.
"""

import numpy as np

from repro.data.census import BRAZIL
from repro.experiments.figures import run_relative_error_vs_selectivity
from repro.experiments.reporting import format_accuracy_run


def test_fig8_relative_error_vs_selectivity_brazil(
    benchmark, brazil_bundle, accuracy_config, record_result
):
    run = benchmark.pedantic(
        run_relative_error_vs_selectivity,
        args=(BRAZIL, accuracy_config),
        kwargs={"prepared": brazil_bundle},
        rounds=1,
        iterations=1,
    )
    text = format_accuracy_run(
        run, chart=True, title="Figure 8: avg relative error vs selectivity (Brazil)"
    )
    record_result("fig8_relerr_selectivity_brazil", text)

    # Shape: in the top selectivity bucket Privelet+ beats Basic at every
    # epsilon (the crossover sits at low selectivity).
    privelet_name = "Privelet+(SA={Age, Gender})"
    wins = 0
    for epsilon in accuracy_config.epsilons:
        basic = run.series_for("Basic", epsilon)
        plus = run.series_for(privelet_name, epsilon)
        if plus.bucket_errors[-1] < basic.bucket_errors[-1]:
            wins += 1
        assert np.all(np.isfinite(plus.bucket_errors))
    assert wins >= len(accuracy_config.epsilons) - 1
