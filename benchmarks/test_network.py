"""Benchmark: the multi-process TCP front-end under Zipf hot-key load.

The fleet's promise is that worker processes escape the GIL: aggregate
queries/sec should scale with workers on real cores.  A closed-loop
load generator opens N concurrent client connections to the socket,
each drawing range queries from a Zipf-skewed pool of hot keys (the
realistic cache-friendly case: a few popular dashboards, a long tail),
and records per-request latency.  For each worker count and
concurrency level the run reports qps, p50, and p99; full mode then
asserts the 4-worker fleet clears ≥2x the 1-worker aggregate qps — a
gate that (like the sharding speedup) only runs on multi-core hosts,
because one core cannot run four workers faster than one.

Set ``BENCH_SMOKE=1`` for the CI-sized run (2 workers, loopback, a
small trace, no timing gates).  Either way the numbers land in
``results/BENCH_network.json`` with a provenance block.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from benchmarks.provenance import provenance
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, generate_census_table
from repro.serving.network import NetworkServer

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SEED = 20100301
HOT_KEYS = 64
ZIPF_EXPONENT = 1.5
MIN_FLEET_SPEEDUP = 2.0


def _smoke() -> bool:
    from benchmarks.conftest import bench_smoke

    return bench_smoke("NETWORK_BENCH_SMOKE")


def _plan() -> dict:
    """Benchmark shape: worker counts, concurrency, per-client trace."""
    if _smoke():
        return {
            "scale": 0.05,
            "rows": 2_000,
            "workers": [2],
            "concurrency": [4],
            "requests_per_client": 30,
        }
    return {
        "scale": 0.2,
        "rows": 60_000,
        "workers": [1, 4],
        "concurrency": [4, 16],
        "requests_per_client": 250,
    }


def _hot_boxes(schema, rng) -> list[dict]:
    """The Zipf pool: HOT_KEYS distinct 2-attribute range boxes."""
    boxes = []
    for _ in range(HOT_KEYS):
        box = {}
        for name in ("Age", "Income"):
            size = schema[name].size
            lo = int(rng.integers(0, size))
            hi = int(rng.integers(lo + 1, size + 1))
            box[name] = [lo, hi]
        boxes.append(box)
    return boxes


def _zipf_trace(rng, length: int) -> list[int]:
    """``length`` hot-key indices, Zipf-skewed over the pool."""
    draws = rng.zipf(ZIPF_EXPONENT, size=length)
    return ((draws - 1) % HOT_KEYS).tolist()


def _run_load(address, boxes, concurrency: int, requests_per_client: int) -> dict:
    """Closed-loop load: each client thread plays its trace, records latency."""
    import socket

    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def client(slot: int) -> None:
        rng = np.random.default_rng(SEED + slot)
        trace = _zipf_trace(rng, requests_per_client)
        sock = socket.create_connection(address, timeout=60)
        stream = sock.makefile("rwb")
        try:
            # Warm the connection (and the worker caches) off the clock.
            for key in trace[:3]:
                stream.write(
                    (
                        json.dumps(
                            {
                                "op": "query",
                                "release": "census",
                                "ranges": boxes[key],
                            }
                        )
                        + "\n"
                    ).encode()
                )
                stream.flush()
                stream.readline()
            barrier.wait()
            for key in trace:
                payload = (
                    json.dumps(
                        {"op": "query", "release": "census", "ranges": boxes[key]}
                    )
                    + "\n"
                ).encode()
                started = time.perf_counter()
                stream.write(payload)
                stream.flush()
                raw = stream.readline()
                latencies[slot].append(time.perf_counter() - started)
                if not raw or not json.loads(raw).get("ok"):
                    errors[slot] += 1
        finally:
            sock.close()

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    pooled = np.asarray([s for per in latencies for s in per], dtype=np.float64)
    completed = int(pooled.size)
    return {
        "concurrency": concurrency,
        "requests": completed,
        "errors": int(sum(errors)),
        "seconds": elapsed,
        "qps": completed / elapsed if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(pooled, 50)) * 1e3 if completed else 0.0,
        "p99_ms": float(np.percentile(pooled, 99)) * 1e3 if completed else 0.0,
    }


def test_network_fleet_throughput(record_result):
    plan = _plan()
    table = generate_census_table(BRAZIL.scaled(plan["scale"]), plan["rows"], seed=SEED)
    result = PriveletPlusMechanism(sa_names="auto").publish(
        table, 1.0, seed=SEED, materialize=False
    )
    boxes = _hot_boxes(table.schema, np.random.default_rng(SEED))

    runs = []
    aggregate_qps: dict[int, float] = {}
    for workers in plan["workers"]:
        server = NetworkServer(workers=workers, max_linger_seconds=0.001)
        server.register("census", result)
        address = server.start()
        try:
            for concurrency in plan["concurrency"]:
                measured = _run_load(
                    address, boxes, concurrency, plan["requests_per_client"]
                )
                measured["workers"] = workers
                runs.append(measured)
                assert measured["errors"] == 0, measured
                aggregate_qps[workers] = max(
                    aggregate_qps.get(workers, 0.0), measured["qps"]
                )
        finally:
            server.close()

    fleet_speedup = None
    if 1 in aggregate_qps and 4 in aggregate_qps:
        fleet_speedup = aggregate_qps[4] / aggregate_qps[1]

    payload = {
        "smoke": _smoke(),
        "provenance": provenance(
            seed=SEED,
            census_scale=plan["scale"],
            table_rows=plan["rows"],
            hot_keys=HOT_KEYS,
            zipf_exponent=ZIPF_EXPONENT,
            cpu_count=os.cpu_count(),
            domain_shape=list(table.schema.shape),
        ),
        "runs": runs,
        "fleet_qps_speedup_4v1": fleet_speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_network.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"TCP fleet over {table.schema.shape} ({plan['rows']} rows, "
        f"{os.cpu_count()} cpus), Zipf({ZIPF_EXPONENT}) over {HOT_KEYS} keys"
    ]
    for run in runs:
        lines.append(
            f"workers={run['workers']} conc={run['concurrency']:>3}: "
            f"{run['qps']:>8.0f} q/s  p50 {run['p50_ms']:.2f} ms  "
            f"p99 {run['p99_ms']:.2f} ms"
        )
    if fleet_speedup is not None:
        lines.append(f"fleet aggregate qps speedup (4 vs 1 workers): {fleet_speedup:.2f}x")
    record_result(
        "network",
        "\n".join(lines),
        meta={"seed": SEED, "census_scale": plan["scale"], "hot_keys": HOT_KEYS},
    )

    if _smoke():
        return
    # The scaling gate needs real cores; a single cpu cannot run four
    # workers faster than one (same policy as the sharding speedup).
    if (os.cpu_count() or 1) >= 2 and fleet_speedup is not None:
        assert fleet_speedup >= MIN_FLEET_SPEEDUP, (
            f"fleet qps speedup {fleet_speedup:.2f}x below the "
            f"{MIN_FLEET_SPEEDUP:.1f}x bar"
        )
