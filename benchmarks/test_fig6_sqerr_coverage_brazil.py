"""Figure 6: average square error vs query coverage (Brazil census).

Paper shape: Basic's average square error grows linearly with coverage;
Privelet+ (SA = {Age, Gender}) stays flat, and wins the top coverage
buckets by a large factor (two orders of magnitude at the paper's
m > 1e8; proportionally less at benchmark scale).
"""

from repro.data.census import BRAZIL
from repro.experiments.figures import run_square_error_vs_coverage
from repro.experiments.reporting import format_accuracy_run


def test_fig6_square_error_vs_coverage_brazil(
    benchmark, brazil_bundle, accuracy_config, record_result
):
    run = benchmark.pedantic(
        run_square_error_vs_coverage,
        args=(BRAZIL, accuracy_config),
        kwargs={"prepared": brazil_bundle},
        rounds=1,
        iterations=1,
    )
    text = format_accuracy_run(
        run, chart=True, title="Figure 6: avg square error vs coverage (Brazil)"
    )
    record_result("fig6_sqerr_coverage_brazil", text)

    # Shape assertions (who wins, and the Basic linear-growth signature).
    privelet_name = "Privelet+(SA={Age, Gender})"
    for epsilon in accuracy_config.epsilons:
        basic = run.series_for("Basic", epsilon)
        plus = run.series_for(privelet_name, epsilon)
        assert basic.bucket_errors[-1] > basic.bucket_errors[0] * 20
        assert plus.bucket_errors[-1] < basic.bucket_errors[-1] / 5
