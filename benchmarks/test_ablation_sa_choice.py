"""Ablation: sweep the Privelet+ SA set from {} (Privelet) to all
attributes (Basic) on the census schema.

The §VI-D rule picks SA = {Age, Gender}; this bench shows the Equation-7
bound and the measured top-coverage error are both minimized at (or
adjacent to) the rule's choice.
"""

import itertools

import numpy as np

from repro.analysis.variance import privelet_plus_bound
from repro.core.privelet_plus import PriveletPlusMechanism, select_sa
from repro.queries.error import square_error
from repro.queries.oracle import RangeSumOracle


def test_ablation_sa_choice(benchmark, brazil_bundle, record_result):
    table, matrix, workload = brazil_bundle
    schema = table.schema
    epsilon = 1.0
    rule_choice = select_sa(schema)

    wide = workload.coverages >= np.quantile(workload.coverages, 0.8)
    queries = [q for q, keep in zip(workload.queries, wide) if keep][:2000]
    exact = np.asarray(
        [a for a, keep in zip(workload.exact_answers, wide) if keep][:2000]
    )

    def sweep():
        rows = []
        for r in range(len(schema.names) + 1):
            for sa in itertools.combinations(schema.names, r):
                bound = privelet_plus_bound(schema, sa, epsilon)
                result = PriveletPlusMechanism(sa_names=sa).publish_matrix(
                    matrix, epsilon, seed=123
                )
                answers = RangeSumOracle(result.matrix).answer_all(queries)
                measured = float(square_error(answers, exact).mean())
                rows.append((sa, bound, measured))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: Privelet+ SA sweep (Brazil census, eps=1, top-coverage queries)",
        "=" * 76,
        f"{'SA':>28}{'Eq.7 bound':>16}{'measured MSE':>16}",
    ]
    for sa, bound, measured in sorted(rows, key=lambda r: r[1]):
        label = "{" + ", ".join(sa) + "}"
        marker = "  <- rule" if sa == rule_choice else ""
        lines.append(f"{label:>28}{bound:>16.3e}{measured:>16.3e}{marker}")
    record_result("ablation_sa_choice", "\n".join(lines))

    # The rule's choice minimizes the Equation-7 bound over the sweep.
    bounds = {sa: bound for sa, bound, _ in rows}
    assert bounds[rule_choice] == min(bounds.values())
