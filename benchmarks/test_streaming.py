"""Benchmark: streaming ingestion vs republish-from-scratch.

The streaming tree's two promises, measured on a row-dominated event
stream (many rows per epoch, a moderate domain — the regime continuous
ingestion exists for):

* **publish-once ingestion** — closing epoch ``e`` publishes only that
  epoch's rows and merges ``O(1)`` amortized tree nodes (a coefficient
  add each), so total work over ``T`` epochs is linear in the data.
  The baseline is what a one-shot pipeline must do for the same
  freshness: **republish the entire prefix after every epoch**, which
  re-bins ``O(T^2)`` rows overall.  The benchmark times both over the
  same rows (streaming side includes its archive appends) and records
  the speedup plus sustained ingest throughput.
* **logarithmic window queries** — a window query touches only its
  canonical dyadic cover (``<= 2 ceil log2 T`` nodes, asserted here),
  so window-restricted traffic stays fast as history grows; the same
  workload on the flat full-prefix release is recorded for context
  (it cannot answer windows at all).

Set ``BENCH_SMOKE=1`` for a CI-sized run (few epochs, no timing
assertions).  Either way the numbers land in
``results/BENCH_streaming.json`` with a provenance block.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import time

import numpy as np

from benchmarks.conftest import bench_smoke
from benchmarks.provenance import provenance
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import OrdinalAttribute
from repro.data.schema import Schema
from repro.data.table import Table
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.streaming import StreamingPublisher, cover_bound

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SEED = 20100301
SCHEMA = Schema([OrdinalAttribute("value", 4096), OrdinalAttribute("kind", 8)])
#: Full-mode acceptance bar: streaming ingestion must beat republishing
#: the growing prefix every epoch (O(T) vs O(T^2) rows processed).
MIN_INGEST_SPEEDUP = 2.0


def _config() -> tuple[int, int, int]:
    """(epochs, rows per epoch, window queries)."""
    return (8, 20_000, 200) if bench_smoke() else (32, 100_000, 2_000)


def _epoch_tables(epochs: int, rows: int) -> list[Table]:
    rng = np.random.default_rng(SEED)
    tables = []
    for _ in range(epochs):
        columns = np.stack(
            [rng.integers(0, 4096, size=rows), rng.integers(0, 8, size=rows)],
            axis=1,
        )
        tables.append(Table(SCHEMA, columns))
    return tables


def _timed_streaming(tables, mechanism, archive):
    """One full streaming pass into a fresh archive; (seconds, publisher)."""
    publisher = StreamingPublisher(
        SCHEMA, mechanism, 1.0, seed=SEED, archive_path=archive
    )
    start = time.perf_counter()
    for table in tables:
        publisher.ingest(table)
        publisher.advance_epoch()
    return time.perf_counter() - start, publisher


def _timed_republish(tables, mechanism):
    """One full republish-the-prefix pass; (seconds, final flat result)."""
    start = time.perf_counter()
    prefix_rows = []
    flat = None
    for table in tables:
        prefix_rows.append(table.rows)
        prefix = Table(SCHEMA, np.concatenate(prefix_rows, axis=0))
        flat = mechanism.publish(prefix, 1.0, seed=SEED, materialize=False)
    return time.perf_counter() - start, flat


def test_streaming_scalability(record_result, tmp_path_factory):
    epochs, rows, num_queries = _config()
    tables = _epoch_tables(epochs, rows)
    mechanism = PriveletPlusMechanism(sa_names="auto")
    archive_dir = tmp_path_factory.mktemp("bench_streaming")

    # Both pipelines are timed as the min of two full passes, so one
    # scheduler hiccup on a shared runner cannot sink the speedup gate.
    # ---- streaming: publish each epoch once, merge, append to an archive
    streaming_seconds = math.inf
    for trial in range(2):
        seconds, publisher = _timed_streaming(
            tables, mechanism, archive_dir / f"stream_{trial}.npz"
        )
        streaming_seconds = min(streaming_seconds, seconds)

    # ---- baseline: same freshness from a one-shot pipeline means
    # republishing the whole prefix after every epoch.
    republish_seconds = math.inf
    for _ in range(2):
        seconds, flat = _timed_republish(tables, mechanism)
        republish_seconds = min(republish_seconds, seconds)
    ingest_speedup = republish_seconds / streaming_seconds

    # ---- window queries: mixed dyadic-unaligned windows over the stream
    queries = generate_workload(SCHEMA, num_queries, seed=SEED + 1)
    rng = np.random.default_rng(SEED + 2)
    windows = [
        tuple(sorted(rng.choice(epochs + 1, size=2, replace=False)))
        for _ in range(16)
    ]
    result = publisher.result()
    bound = max(1, 2 * math.ceil(math.log2(epochs)))
    window_engines = []
    for lo, hi in windows:
        release = publisher.release(lo, hi)
        assert release.nodes_touched <= min(cover_bound(hi - lo), bound)
        window_engines.append(
            QueryEngine(dataclasses.replace(result, release=release))
        )
    for engine in window_engines:  # warm node payloads + profile caches
        engine.answer_all_with_intervals(queries[:20])
    start = time.perf_counter()
    answered = 0
    for engine in window_engines:
        engine.answer_all_with_intervals(queries)
        answered += len(queries)
    window_seconds = time.perf_counter() - start
    window_qps = answered / window_seconds

    # The flat release answering the same (windowless) workload, for
    # context: one release, no time dimension, full prefix only.
    flat_engine = QueryEngine(flat)
    flat_engine.answer_all_with_intervals(queries[:20])
    start = time.perf_counter()
    flat_engine.answer_all_with_intervals(queries)
    flat_seconds = time.perf_counter() - start
    flat_qps = len(queries) / flat_seconds

    payload = {
        "smoke": bench_smoke(),
        "provenance": provenance(
            seed=SEED,
            epochs=epochs,
            rows_per_epoch=rows,
            window_queries=num_queries,
            windows=len(windows),
            cpu_count=os.cpu_count(),
            domain_shape=list(SCHEMA.shape),
        ),
        "ingest": {
            "epochs": epochs,
            "total_rows": epochs * rows,
            "streaming_seconds": streaming_seconds,
            "streaming_rows_per_s": epochs * rows / streaming_seconds,
            "flat_republish_seconds": republish_seconds,
            "ingest_speedup": ingest_speedup,
        },
        "window_query": {
            "queries": answered,
            "window_seconds": window_seconds,
            "window_qps": window_qps,
            "flat_full_prefix_qps": flat_qps,
            "max_nodes_touched": max(
                publisher.release(lo, hi).nodes_touched for lo, hi in windows
            ),
            "cover_bound": bound,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_streaming.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    record_result(
        "streaming",
        "\n".join(
            [
                f"{epochs} epochs x {rows} rows over {SCHEMA.shape} "
                f"(window workload: {len(windows)} windows x {num_queries} queries)",
                f"streaming ingest : {streaming_seconds:.3f} s "
                f"({payload['ingest']['streaming_rows_per_s']:,.0f} rows/s, "
                "publish-once + tree merges + archive appends)",
                f"flat republish   : {republish_seconds:.3f} s "
                f"(speedup {ingest_speedup:.2f}x)",
                f"window queries   : {window_qps:,.0f} q/s "
                f"(<= {payload['window_query']['max_nodes_touched']} nodes "
                f"per window, bound {bound})",
                f"flat full prefix : {flat_qps:,.0f} q/s (no windows possible)",
            ]
        ),
        meta={"seed": SEED, "epochs": epochs, "rows_per_epoch": rows},
    )

    if bench_smoke():
        return
    assert ingest_speedup >= MIN_INGEST_SPEEDUP, (
        f"streaming ingest speedup {ingest_speedup:.2f}x below the "
        f"{MIN_INGEST_SPEEDUP:.1f}x bar (O(T) streaming vs O(T^2) republish)"
    )
