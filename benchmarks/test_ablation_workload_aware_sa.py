"""Extension bench (§IX future work): workload-aware SA selection.

The paper's §VI-D rule picks SA from per-attribute worst-case factors.
With a known query distribution, :func:`repro.analysis.exact.optimize_sa`
instead minimizes the *exact average* noise variance over the workload.
This bench compares the two choices on two contrasting workloads.
"""

import numpy as np

from repro.analysis.exact import optimize_sa, workload_average_variance
from repro.core.privelet_plus import select_sa
from repro.data.census import BRAZIL, census_schema
from repro.queries.predicate import interval_predicate
from repro.queries.query import RangeCountQuery
from repro.queries.workload import generate_workload


def narrow_workload(schema, count, seed):
    """Point-ish queries on Income: the regime where direct release wins."""
    rng = np.random.default_rng(seed)
    income = schema["Income"]
    queries = []
    for _ in range(count):
        lo = int(rng.integers(0, income.size - 1))
        queries.append(
            RangeCountQuery(schema, (interval_predicate(income, lo, lo),))
        )
    return queries


def test_workload_aware_sa(benchmark, record_result):
    schema = census_schema(BRAZIL.scaled(0.1))
    epsilon = 1.0
    mixed = generate_workload(schema, 300, max_predicates=4, seed=42)
    narrow = narrow_workload(schema, 300, seed=43)
    rule = select_sa(schema)

    def optimize_both():
        return (
            optimize_sa(schema, mixed, epsilon),
            optimize_sa(schema, narrow, epsilon),
        )

    mixed_choice, narrow_choice = benchmark.pedantic(optimize_both, rounds=1, iterations=1)
    rule_on_mixed = workload_average_variance(schema, rule, mixed, epsilon)
    rule_on_narrow = workload_average_variance(schema, rule, narrow, epsilon)

    lines = [
        "Extension: workload-aware SA selection (exact variance, eps=1)",
        "=" * 64,
        f"{'workload':>12}{'rule SA':>28}{'rule avg var':>14}{'optimized SA':>28}{'opt avg var':>14}",
        f"{'mixed':>12}{str(set(rule)):>28}{rule_on_mixed:>14.4g}"
        f"{str(set(mixed_choice.sa) or '{}'):>28}{mixed_choice.average_variance:>14.4g}",
        f"{'point-q':>12}{str(set(rule)):>28}{rule_on_narrow:>14.4g}"
        f"{str(set(narrow_choice.sa) or '{}'):>28}{narrow_choice.average_variance:>14.4g}",
        "the optimizer never does worse than the rule on its own workload,",
        "and adapts the split when the workload shifts (paper §IX future work).",
    ]
    record_result("ablation_workload_aware_sa", "\n".join(lines))

    assert mixed_choice.average_variance <= rule_on_mixed + 1e-9
    assert narrow_choice.average_variance <= rule_on_narrow + 1e-9
    # Point queries on Income favour putting Income in SA.
    assert "Income" in narrow_choice.sa
