"""Benchmark: sustained query throughput through :class:`ReleaseServer`.

The serving layer's pitch is that a long-lived server answering
dashboard-style traffic (the same ranges re-asked all day, across many
releases) gets three compounding wins: archives load lazily once,
adjoint profiles stay warm in the bounded LRU cache, and concurrent
requests coalesce into vectorized engine batches.  This benchmark
measures all three on two census releases served *from coefficient
archives*:

* **cold vs warm** — a fresh server answers a dashboard workload once
  (pays archive load, engine build, serving-tensor prefix pass, and
  every distinct profile), then answers the same workload again fully
  warm.  The ISSUE's acceptance bar is a warm speedup >= 2x.
* **batch sizes 1 / 16 / 256** — the same workload submitted in
  pipelined chunks of each size, measuring sustained queries/sec (a
  chunk bounds how much the micro-batcher can coalesce).
* **two releases concurrently** — both releases are queried from
  parallel threads and every answer is checked against a direct
  single-release engine.
* **columnar vs dict wire path** — the same traffic submitted as
  ``QueryBatchRequest`` structure-of-arrays batches (one wire item per
  chunk, plan-cache reuse, zero-copy engine handoff) against the
  per-request dict path, plus the raw ``answer_columnar`` engine
  ceiling.  Full mode asserts columnar >= 5x the dict path at batch
  256 and within 5x of the raw engine.

Set ``BENCH_SMOKE=1`` (or the legacy alias ``SERVING_BENCH_SMOKE=1``)
for a CI-sized run (tiny tables, no
timing assertions — shared-runner clocks are too noisy to gate on).  In
full mode the speedup gate is re-measured up to three times before
failing.  Either way the numbers land in ``results/BENCH_serving.json``
with a provenance block, so the throughput trajectory accumulates run
over run.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from benchmarks.provenance import provenance
from repro.analysis.exact import query_boxes
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, US, generate_census_table
from repro.io import save_result
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.serving.requests import QueryBatchRequest, QueryRequest
from repro.serving.server import ReleaseServer

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SEED = 20100301
BATCH_SIZES = (1, 16, 256)
MIN_WARM_SPEEDUP = 2.0
#: Full-mode bar: columnar serving qps vs the dict path at batch 256.
MIN_COLUMNAR_SPEEDUP = 5.0
#: Full-mode bar: the raw engine may be at most this much faster than
#: columnar serving at batch 256.
MAX_ENGINE_GAP = 5.0
ATTEMPTS = 3


def _smoke() -> bool:
    from benchmarks.conftest import bench_smoke

    return bench_smoke("SERVING_BENCH_SMOKE")


def _scale_rows_queries() -> tuple[float, int, int]:
    """(census scale, table rows, distinct queries per release)."""
    return (0.05, 2_000, 120) if _smoke() else (0.2, 50_000, 600)


def _publish_archives(tmp_path) -> dict:
    """Two coefficient-space census archives, name -> (path, result)."""
    scale, rows, _ = _scale_rows_queries()
    archives = {}
    for name, spec, seed in (("brazil", BRAZIL, 1), ("us", US, 2)):
        table = generate_census_table(spec.scaled(scale), rows, seed=seed)
        result = PriveletPlusMechanism(sa_names="auto").publish(
            table, epsilon=1.0, seed=seed + 10, materialize=False
        )
        path = tmp_path / f"{name}.npz"
        save_result(path, result)
        archives[name] = (path, result)
    return archives


def _dashboard_requests(archives, repeats: int) -> list[QueryRequest]:
    """A dashboard-style workload: distinct queries per release, repeated.

    Repeats model widgets re-rendering; the distinct queries within one
    pass are what the cold run must profile from scratch.
    """
    _, _, distinct = _scale_rows_queries()
    per_release = []
    for index, (name, (_, result)) in enumerate(sorted(archives.items())):
        schema = result.release.schema
        queries = generate_workload(schema, distinct, seed=SEED + index)
        per_release.append(
            [
                QueryRequest(
                    name,
                    {p.attribute_name: (p.lo, p.hi) for p in query.predicates},
                )
                for query in queries
            ]
        )
    # Interleave the releases so every slice of traffic is mixed (the
    # batcher then splits each coalesced batch per release).
    interleaved = [
        request for group in zip(*per_release) for request in group
    ]
    return interleaved * repeats


def _fresh_server(archives) -> ReleaseServer:
    server = ReleaseServer(max_batch=256, max_linger_seconds=0.002)
    for name, (path, _) in sorted(archives.items()):
        server.register_archive(path, name=name)
    return server


def _timed_pass(server, requests, batch_size: int | None = None) -> float:
    """Seconds to answer ``requests`` (optionally in pipelined chunks)."""
    start = time.perf_counter()
    if batch_size is None:
        server.query_many(requests)
    else:
        for begin in range(0, len(requests), batch_size):
            server.query_many(requests[begin : begin + batch_size])
    return time.perf_counter() - start


def _measure(archives, requests) -> dict:
    """One full cold/warm + batch-size sweep on a fresh server."""
    with _fresh_server(archives) as server:
        cold_seconds = _timed_pass(server, requests)
        warm_seconds = _timed_pass(server, requests)
        sweep = []
        for batch_size in BATCH_SIZES:
            seconds = _timed_pass(server, requests, batch_size=batch_size)
            sweep.append(
                {
                    "batch_size": batch_size,
                    "seconds": seconds,
                    "qps": len(requests) / seconds,
                }
            )
        stats = server.stats()
    return {
        "requests": len(requests),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "batch_sweep": sweep,
        "server_stats": dataclasses.asdict(stats),
    }


def _columnar_boxes(archives, repeats: int) -> dict:
    """Per release: ``(schema, lows, highs)`` matching the dict workload.

    The same generated queries the dict path wraps in ``QueryRequest``
    objects, extracted once into tiled ``(n, d)`` box arrays — what a
    columnar client would hold natively.
    """
    _, _, distinct = _scale_rows_queries()
    boxes = {}
    for index, (name, (_, result)) in enumerate(sorted(archives.items())):
        schema = result.release.schema
        queries = generate_workload(schema, distinct, seed=SEED + index)
        lows, highs = query_boxes(queries, schema.shape)
        boxes[name] = (
            schema,
            np.tile(lows, (repeats, 1)),
            np.tile(highs, (repeats, 1)),
        )
    return boxes


def _columnar_requests(boxes, batch_size: int) -> list[QueryBatchRequest]:
    """The box arrays as interleaved per-release wire batches."""
    per_release = []
    for name, (schema, lows, highs) in sorted(boxes.items()):
        chunks = []
        for begin in range(0, lows.shape[0], batch_size):
            lo = lows[begin : begin + batch_size]
            hi = highs[begin : begin + batch_size]
            ranges = {
                attr: {"lo": lo[:, axis], "hi": hi[:, axis]}
                for axis, attr in enumerate(schema.names)
            }
            chunks.append(QueryBatchRequest(name, ranges))
        per_release.append(chunks)
    interleaved = []
    for group in itertools.zip_longest(*per_release):
        interleaved.extend(chunk for chunk in group if chunk is not None)
    return interleaved


def _measure_columnar(archives, boxes) -> dict:
    """Columnar sweep over BATCH_SIZES on a fresh (then warmed) server."""
    with _fresh_server(archives) as server:
        # Warm pass: engine builds, plan compiles, profile fills — the
        # sweep then measures steady-state throughput, same as the dict
        # sweep running after its cold/warm passes.
        for request in _columnar_requests(boxes, max(BATCH_SIZES)):
            server.query_columnar(request)
        sweep = []
        for batch_size in BATCH_SIZES:
            requests = _columnar_requests(boxes, batch_size)
            rows = sum(len(request) for request in requests)
            start = time.perf_counter()
            for request in requests:
                server.query_columnar(request)
            seconds = time.perf_counter() - start
            sweep.append(
                {
                    "batch_size": batch_size,
                    "seconds": seconds,
                    "qps": rows / seconds,
                }
            )
        stats = server.stats()
    return {
        "columnar_sweep": sweep,
        "plan_cache_hits": stats.plan_cache_hits,
        "plan_cache_misses": stats.plan_cache_misses,
        "columnar_rows": stats.columnar_rows,
    }


def _measure_engine(archives, boxes) -> float:
    """Raw-engine ceiling: ``answer_columnar`` qps, no serving layer."""
    engines = {
        name: QueryEngine(result) for name, (_, result) in archives.items()
    }
    chunk = max(BATCH_SIZES)
    total_rows = 0
    total_seconds = 0.0
    for name, (_, lows, highs) in sorted(boxes.items()):
        engine = engines[name]
        # Warm the profile caches once, then time.
        for begin in range(0, lows.shape[0], chunk):
            engine.answer_columnar(
                lows[begin : begin + chunk], highs[begin : begin + chunk]
            )
        start = time.perf_counter()
        for begin in range(0, lows.shape[0], chunk):
            engine.answer_columnar(
                lows[begin : begin + chunk], highs[begin : begin + chunk]
            )
        total_seconds += time.perf_counter() - start
        total_rows += lows.shape[0]
    return total_rows / total_seconds


def _qps_at(sweep, batch_size: int) -> float:
    return next(
        point["qps"] for point in sweep if point["batch_size"] == batch_size
    )


def test_serving_throughput(record_result, tmp_path):
    archives = _publish_archives(tmp_path)
    requests = _dashboard_requests(archives, repeats=2 if _smoke() else 4)

    # Correctness first: concurrent traffic against both releases
    # matches a direct per-release engine, answer for answer.
    engines = {
        name: QueryEngine(result) for name, (_, result) in archives.items()
    }
    with _fresh_server(archives) as server:
        sample = requests[: 200 if _smoke() else 600]
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(server.query, sample))
        for request, response in zip(sample, responses):
            engine = engines[request.release]
            expected = engine.answer(request.to_query(engine.schema))
            np.testing.assert_allclose(response.estimate, expected, atol=1e-6)
        assert server.stats().engines_built == len(archives)

    # Timing gates are noisy on shared machines: re-measure the whole
    # sweep (fresh server each attempt) and gate on the best attempt.
    payload = _measure(archives, requests)
    if not _smoke():
        for _ in range(ATTEMPTS - 1):
            if payload["warm_speedup"] >= MIN_WARM_SPEEDUP:
                break
            payload = _measure(archives, requests)

    # Columnar wire path vs the dict path vs the raw engine ceiling,
    # over the same boxes the dict requests describe.
    top_batch = max(BATCH_SIZES)
    boxes = _columnar_boxes(archives, repeats=2 if _smoke() else 4)
    columnar = _measure_columnar(archives, boxes)
    engine_qps = _measure_engine(archives, boxes)
    dict_qps = _qps_at(payload["batch_sweep"], top_batch)
    if not _smoke():
        for _ in range(ATTEMPTS - 1):
            columnar_qps = _qps_at(columnar["columnar_sweep"], top_batch)
            if (
                columnar_qps >= MIN_COLUMNAR_SPEEDUP * dict_qps
                and engine_qps <= MAX_ENGINE_GAP * columnar_qps
            ):
                break
            columnar = _measure_columnar(archives, boxes)
            engine_qps = _measure_engine(archives, boxes)
    columnar_qps = _qps_at(columnar["columnar_sweep"], top_batch)
    columnar["engine_qps"] = engine_qps
    columnar["columnar_vs_dict_speedup"] = columnar_qps / dict_qps
    columnar["serving_vs_engine_qps_ratio"] = columnar_qps / engine_qps
    payload["columnar"] = columnar

    scale, rows, distinct = _scale_rows_queries()
    payload = {
        "smoke": _smoke(),
        "provenance": provenance(
            seed=SEED,
            census_scale=scale,
            table_rows=rows,
            distinct_queries_per_release=distinct,
            releases=sorted(archives),
            domain_shapes={
                name: list(result.release.schema.shape)
                for name, (_, result) in archives.items()
            },
            batch_sizes=list(BATCH_SIZES),
        ),
        **payload,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    stats = payload["server_stats"]
    lines = [
        f"{len(requests)} dashboard requests over {len(archives)} "
        f"coefficient releases {sorted(archives)}",
        f"cold pass  : {payload['cold_seconds']:.4f} s "
        f"(archive load + engine build + profile fills)",
        f"warm pass  : {payload['warm_seconds']:.4f} s "
        f"(speedup {payload['warm_speedup']:.1f}x)",
    ]
    for point in payload["batch_sweep"]:
        lines.append(
            f"batch {point['batch_size']:>4}: {point['qps']:>10.0f} queries/s"
        )
    for point in columnar["columnar_sweep"]:
        lines.append(
            f"columnar {point['batch_size']:>4}: {point['qps']:>10.0f} rows/s"
        )
    lines.append(
        f"columnar at {top_batch}: "
        f"{columnar['columnar_vs_dict_speedup']:.1f}x the dict path; raw "
        f"engine {engine_qps:,.0f} rows/s (serving/engine ratio "
        f"{columnar['serving_vs_engine_qps_ratio']:.2f})"
    )
    lines.append(
        f"profile-cache hit rate {stats['profile_cache_hit_rate']:.0%}, "
        f"mean batch {stats['mean_batch_size']:.1f}, "
        f"p99 latency {stats['p99_latency_seconds'] * 1e3:.2f} ms"
    )
    record_result(
        "serving",
        "\n".join(lines),
        meta={"seed": SEED, "census_scale": scale, "table_rows": rows},
    )

    if _smoke():
        return

    # The ISSUE's acceptance bar: a repeated workload served >= 2x
    # faster once the profile cache and engines are warm.
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm-cache speedup {payload['warm_speedup']:.2f}x below the "
        f"{MIN_WARM_SPEEDUP:.0f}x bar after {ATTEMPTS} attempts"
    )
    # Columnar bars: the structure-of-arrays wire path must beat the
    # per-request dict path by >= 5x at batch 256 and sit within 5x of
    # the raw engine's batch throughput.
    assert columnar["columnar_vs_dict_speedup"] >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar path {columnar['columnar_vs_dict_speedup']:.2f}x the "
        f"dict path at batch {top_batch}, below the "
        f"{MIN_COLUMNAR_SPEEDUP:.0f}x bar after {ATTEMPTS} attempts"
    )
    assert engine_qps <= MAX_ENGINE_GAP * columnar_qps, (
        f"columnar serving {columnar_qps:,.0f} rows/s is more than "
        f"{MAX_ENGINE_GAP:.0f}x behind the raw engine "
        f"({engine_qps:,.0f} rows/s) after {ATTEMPTS} attempts"
    )
