"""Exact per-query noise variance under Privelet+ (beyond the paper).

The paper bounds the noise variance of a range-count answer (Lemma 3/5,
Theorem 3, Corollary 1).  Because the whole pipeline from noisy
coefficients to the answer is *linear* — the inverse transforms, the
mean-subtraction refinement, and the box sum — the variance is also
available **exactly**, in closed form, per query:

    answer = sum_j  g[j] * C*[j]          (some coefficient weighting g)
    Var    = 2 lambda^2 * sum_j g[j]^2 / W[j]^2

and for the HN transform both ``g`` and ``W`` factor across axes, so

    Var = 2 lambda^2 * prod_i ( sum_{j_i} g_i[j_i]^2 / W_i[j_i]^2 ).

``g_i`` is the adjoint of axis ``i``'s reconstruction map applied to the
query's range indicator on that axis.  We obtain the reconstruction
matrix by applying ``inverse(refine=True)`` to the identity — small per
axis — and take its transpose action.

This module powers two things the paper lists as future work (§IX):

* an *exact* expected-error profile for a known query distribution,
* :func:`optimize_sa`, workload-aware selection of the Privelet+ ``SA``
  set (minimizing average exact variance instead of the worst-case
  Equation-7 bound).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema
from repro.errors import QueryError
from repro.transforms.base import OneDimensionalTransform
from repro.transforms.multidim import HNTransform
from repro.utils.validation import ensure_positive

__all__ = [
    "axis_variance_profile",
    "query_noise_variance",
    "workload_average_variance",
    "expected_relative_errors",
    "SaChoice",
    "optimize_sa",
]


def _reconstruction_matrix(transform: OneDimensionalTransform) -> np.ndarray:
    """Dense ``input_length x output_length`` matrix of coefficient -> data.

    Column ``j`` is the reconstructed data vector when coefficient ``j``
    is 1 and all others are 0, including the refinement step (which is
    linear, so this captures the full pipeline).
    """
    identity = np.eye(transform.output_length)
    return transform.inverse(identity, refine=True)


def axis_variance_profile(transform: OneDimensionalTransform, lo: int, hi: int) -> float:
    """``sum_j g[j]^2 / W[j]^2`` for one axis and one half-open range.

    ``g = R^T r`` where ``R`` is the reconstruction matrix and ``r`` the
    range indicator.  This is the axis's multiplicative contribution to
    the exact query variance (times ``2 lambda^2`` overall).
    """
    if not (0 <= lo <= hi <= transform.input_length):
        raise QueryError(
            f"range [{lo}, {hi}) out of bounds for axis of length "
            f"{transform.input_length}"
        )
    reconstruction = _reconstruction_matrix(transform)
    g = reconstruction[lo:hi].sum(axis=0)  # R^T r
    weights = transform.weight_vector()
    return float(np.sum((g / weights) ** 2))


def query_noise_variance(hn: HNTransform, query, noise_magnitude: float) -> float:
    """Exact noise variance of ``query``'s answer under this transform.

    ``query`` is a :class:`repro.queries.query.RangeCountQuery` (imported
    lazily to keep this module free of the queries package — the engine
    there imports us).  ``noise_magnitude`` is the Privelet parameter
    lambda; each coefficient carries independent Laplace(lambda / W(c))
    noise.
    """
    noise_magnitude = ensure_positive(noise_magnitude, "noise_magnitude")
    if query.schema.shape != hn.input_shape:
        raise QueryError("query schema does not match the transform's input shape")
    product = 1.0
    for axis, (lo, hi) in enumerate(query.box()):
        product *= axis_variance_profile(hn.transforms[axis], lo, hi)
    return 2.0 * noise_magnitude**2 * product


def workload_average_variance(
    schema: Schema, sa_names, queries, epsilon: float
) -> float:
    """Average *exact* noise variance over a workload for one SA choice."""
    epsilon = ensure_positive(epsilon, "epsilon")
    hn = HNTransform(schema, sa_names)
    magnitude = 2.0 * hn.generalized_sensitivity() / epsilon

    # Cache per-axis profiles: many queries share the same range per axis.
    caches: list[dict] = [dict() for _ in hn.transforms]
    total = 0.0
    count = 0
    for query in queries:
        product = 1.0
        for axis, (lo, hi) in enumerate(query.box()):
            key = (lo, hi)
            if key not in caches[axis]:
                caches[axis][key] = axis_variance_profile(hn.transforms[axis], lo, hi)
            product *= caches[axis][key]
        total += 2.0 * magnitude**2 * product
        count += 1
    if count == 0:
        raise QueryError("workload is empty")
    return total / count


def expected_relative_errors(
    schema: Schema, sa_names, workload, epsilon: float, sanity: float
) -> np.ndarray:
    """Predicted expected relative error per query (§IX future work).

    The paper's second future-work item asks what Privelet guarantees for
    *expected relative error*.  Given a bound workload (with exact
    answers), each query's answer carries zero-mean noise of known exact
    variance ``sigma_q^2``; under the Gaussian approximation to the noise
    sum, ``E|noise| = sigma_q * sqrt(2/pi)``, so::

        E[relerr(q)] ~= sigma_q * sqrt(2/pi) / max(act_q, s)

    with the §VII-A sanity bound ``s``.  This is a *prediction* from the
    mechanism configuration plus the exact answers (a designer-side
    analysis tool, not a private release — it consumes the true answers).

    Parameters
    ----------
    workload:
        A :class:`repro.queries.workload.Workload` (bound queries with
        exact answers).
    """
    epsilon = ensure_positive(epsilon, "epsilon")
    sanity = ensure_positive(sanity, "sanity")
    hn = HNTransform(schema, sa_names)
    magnitude = 2.0 * hn.generalized_sensitivity() / epsilon
    caches: list[dict] = [dict() for _ in hn.transforms]
    predictions = np.empty(len(workload.queries))
    for index, query in enumerate(workload.queries):
        product = 1.0
        for axis, (lo, hi) in enumerate(query.box()):
            key = (lo, hi)
            if key not in caches[axis]:
                caches[axis][key] = axis_variance_profile(hn.transforms[axis], lo, hi)
            product *= caches[axis][key]
        std = float(np.sqrt(2.0 * magnitude**2 * product))
        denominator = max(float(workload.exact_answers[index]), sanity)
        predictions[index] = std * np.sqrt(2.0 / np.pi) / denominator
    return predictions


@dataclass(frozen=True)
class SaChoice:
    """Result of workload-aware SA optimization."""

    sa: tuple[str, ...]
    average_variance: float
    #: All evaluated candidates, sorted best-first: (sa, avg variance).
    ranking: tuple[tuple[tuple[str, ...], float], ...]


def optimize_sa(schema: Schema, queries, epsilon: float = 1.0) -> SaChoice:
    """Choose the Privelet+ ``SA`` minimizing average exact variance.

    Exhausts all ``2^d`` subsets (d is small for relational schemas; the
    paper's is 4).  This implements the §IX future-work direction
    "extend Privelet for the case where the distribution of range-count
    queries is known in advance": with a workload sample in hand, pick
    the hybrid split that is optimal *for that workload* rather than for
    the worst case.
    """
    queries = list(queries)
    candidates = []
    for r in range(len(schema.names) + 1):
        for sa in itertools.combinations(schema.names, r):
            average = workload_average_variance(schema, sa, queries, epsilon)
            candidates.append((sa, average))
    candidates.sort(key=lambda item: item[1])
    best_sa, best_average = candidates[0]
    return SaChoice(sa=best_sa, average_variance=best_average, ranking=tuple(candidates))
