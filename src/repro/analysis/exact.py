"""Exact per-query noise variance under Privelet+ (beyond the paper).

The paper bounds the noise variance of a range-count answer (Lemma 3/5,
Theorem 3, Corollary 1).  Because the whole pipeline from noisy
coefficients to the answer is *linear* — the inverse transforms, the
mean-subtraction refinement, and the box sum — the variance is also
available **exactly**, in closed form, per query:

    answer = sum_j  g[j] * C*[j]          (some coefficient weighting g)
    Var    = 2 lambda^2 * sum_j g[j]^2 / W[j]^2

and for the HN transform both ``g`` and ``W`` factor across axes, so

    Var = 2 lambda^2 * prod_i ( sum_{j_i} g_i[j_i]^2 / W_i[j_i]^2 ).

``g_i`` is the adjoint of axis ``i``'s reconstruction map applied to the
query's range indicator on that axis.  The transforms expose that
adjoint **matrix-free** (``OneDimensionalTransform.adjoint_range`` /
``range_profiles``): a Haar axis answers in ``O(log m)`` per range and a
nominal axis in one bottom-up tree pass, so no ``m x m`` reconstruction
matrix is ever materialized on the hot path.

Batch evaluation goes through :class:`CompiledWorkload`, which extracts
every query's per-axis ranges once, deduplicates them per axis, and
computes all profiles in one vectorized transform call — the same
compile-then-execute idiom conv-based FWT implementations use.  One
compiled workload can be re-evaluated under *any* SA choice over the
same schema, which is what makes :func:`optimize_sa` cheap across all
``2^d`` candidates.

This module powers two things the paper lists as future work (§IX):

* an *exact* expected-error profile for a known query distribution,
* :func:`optimize_sa`, workload-aware selection of the Privelet+ ``SA``
  set (minimizing average exact variance instead of the worst-case
  Equation-7 bound).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema
from repro.errors import QueryError
from repro.transforms.base import IdentityTransform, OneDimensionalTransform
from repro.transforms.multidim import HNTransform
from repro.utils.validation import ensure_boxes, ensure_positive

__all__ = [
    "axis_variance_profile",
    "query_noise_variance",
    "query_boxes",
    "AxisProfileCache",
    "CompiledWorkload",
    "workload_average_variance",
    "expected_relative_errors",
    "SaChoice",
    "optimize_sa",
]


def axis_variance_profile(transform: OneDimensionalTransform, lo: int, hi: int) -> float:
    """``sum_j g[j]^2 / W[j]^2`` for one axis and one half-open range.

    ``g = R^T r`` where ``R`` is the reconstruction map and ``r`` the
    indicator of ``[lo, hi)``.  This is the axis's multiplicative
    contribution to the exact query variance (times ``2 lambda^2``
    overall).  Computed matrix-free through the transform's own adjoint
    — ``O(log m)`` for a Haar axis — never via a dense identity
    reconstruction.

    Parameters
    ----------
    transform:
        The axis's one-dimensional transform.
    lo, hi:
        Half-open range bounds on that axis.

    Returns
    -------
    float
        The axis profile (dimensionless).
    """
    if not (0 <= lo <= hi <= transform.input_length):
        raise QueryError(
            f"range [{lo}, {hi}) out of bounds for axis of length "
            f"{transform.input_length}"
        )
    return float(transform.range_profile(lo, hi))


def query_noise_variance(hn: HNTransform, query, noise_magnitude: float) -> float:
    """Exact noise variance of ``query``'s answer under transform ``hn``.

    ``query`` is a :class:`repro.queries.query.RangeCountQuery` (imported
    lazily to keep this module free of the queries package — the engine
    there imports us).  ``noise_magnitude`` is the Privelet parameter
    lambda; each coefficient carries independent Laplace(lambda / W(c))
    noise.  Cost is ``O(sum_i log m_i)`` via the per-axis adjoints.

    Returns
    -------
    float
        ``2 lambda^2 * prod_i profile_i`` — exact, not a bound.
    """
    noise_magnitude = ensure_positive(noise_magnitude, "noise_magnitude")
    if query.schema.shape != hn.input_shape:
        raise QueryError("query schema does not match the transform's input shape")
    product = 1.0
    for axis, (lo, hi) in enumerate(query.box()):
        product *= axis_variance_profile(hn.transforms[axis], lo, hi)
    return 2.0 * noise_magnitude**2 * product


def query_boxes(queries, shape) -> tuple[np.ndarray, np.ndarray]:
    """Extract every query's box into ``(n, d)`` low/high arrays.

    Validates each of ``queries``' schema shape against ``shape``.  This
    is the shared first step of every batch path (compiled workloads,
    the engine's variance batches).

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        ``(lows, highs)`` int64 arrays, one row per query.
    """
    queries = list(queries)
    dimensions = len(shape)
    lows = np.empty((len(queries), dimensions), dtype=np.int64)
    highs = np.empty((len(queries), dimensions), dtype=np.int64)
    for row, query in enumerate(queries):
        if query.schema.shape != shape:
            raise QueryError("query schema does not match the expected shape")
        for axis, (lo, hi) in enumerate(query.box()):
            lows[row, axis] = lo
            highs[row, axis] = hi
    return lows, highs


class AxisProfileCache:
    """Memoized per-axis ``(lo, hi) -> profile`` store with batch fills.

    Bound to one sequence of per-axis transforms (e.g. an engine's
    ``HNTransform.transforms``); repeated queries over the same ranges —
    the common case in OLAP traffic — hit the dictionary, and the ranges
    a batch *does* miss are computed in a single vectorized
    ``range_profiles`` call per axis.  Lookups and inserts go through the
    :meth:`_get`/:meth:`_put` hooks so bounded policies (the serving
    layer's LRU cache) can subclass without re-implementing the batch
    fill; :attr:`hits`/:attr:`misses` count distinct-range lookups either
    way.

    Parameters
    ----------
    transforms:
        Per-axis :class:`~repro.transforms.base.OneDimensionalTransform`
        sequence the profiles are computed against (axis order = index).
    """

    def __init__(self, transforms):
        self._transforms = list(transforms)
        self._caches: list[dict[tuple[int, int], float]] = [
            dict() for _ in self._transforms
        ]
        #: Distinct-range lookups served from the cache.
        self.hits = 0
        #: Distinct-range lookups that had to call the transform.
        self.misses = 0

    # -- storage hooks (subclass points for bounded policies) ----------
    def _get(self, axis: int, key: tuple[int, int]) -> float | None:
        """Return the cached profile for ``(axis, key)`` or ``None``."""
        return self._caches[axis].get(key)

    def _put(self, axis: int, key: tuple[int, int], value: float) -> None:
        """Store one computed profile under ``(axis, key)``."""
        self._caches[axis][key] = value

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._caches)

    @property
    def hit_rate(self) -> float:
        """Fraction of distinct-range lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def profile(self, axis: int, lo: int, hi: int) -> float:
        """One axis profile for ``[lo, hi)``, memoized (``O(log m)`` on miss).

        Parameters
        ----------
        axis:
            Index into the bound transform sequence.
        lo, hi:
            Half-open range on that axis.

        Returns
        -------
        float
            ``sum_j (g[j] / W[j])^2`` for the range's adjoint ``g``.
        """
        key = (int(lo), int(hi))
        value = self._get(axis, key)
        if value is None:
            self.misses += 1
            value = axis_variance_profile(self._transforms[axis], *key)
            self._put(axis, key, value)
        else:
            self.hits += 1
        return value

    def profiles(self, axis: int, lows, highs) -> np.ndarray:
        """Vectorized profiles for one axis's ``lows``/``highs`` arrays.

        Missing ranges are computed in one batched transform call and
        remembered; duplicates within the batch are deduplicated first,
        so each distinct range costs (and counts) one lookup.

        Returns
        -------
        numpy.ndarray
            Per-range profiles aligned with ``lows``/``highs``.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        transform = self._transforms[axis]
        if lows.size and not (
            lows.min() >= 0 and np.all(lows <= highs) and highs.max() <= transform.input_length
        ):
            raise QueryError(
                f"a range is out of bounds for axis {axis} of length "
                f"{transform.input_length}"
            )
        pairs = np.stack([lows, highs], axis=1)
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        keys = [(int(lo), int(hi)) for lo, hi in unique]
        values = np.empty(len(keys), dtype=np.float64)
        missing = []
        for i, key in enumerate(keys):
            cached = self._get(axis, key)
            if cached is None:
                missing.append(i)
            else:
                values[i] = cached
        self.hits += len(keys) - len(missing)
        self.misses += len(missing)
        if missing:
            computed = transform.range_profiles(
                unique[missing, 0], unique[missing, 1]
            )
            for i, value in zip(missing, computed):
                values[i] = float(value)
                self._put(axis, keys[i], values[i])
        return values[inverse]

    def box_profile_products(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-query products of axis profiles for ``(n, d)`` box arrays.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` products over axes — the exact variance of query
            ``q`` is ``2 lambda^2 * products[q]``.
        """
        products = np.ones(lows.shape[0], dtype=np.float64)
        for axis in range(len(self._transforms)):
            products *= self.profiles(axis, lows[:, axis], highs[:, axis])
        return products


class CompiledWorkload:
    """A workload compiled to per-axis deduplicated ranges.

    Compilation extracts every query's box once, groups the ``(lo, hi)``
    ranges per axis, and deduplicates them; evaluation then computes each
    axis's unique profiles in **one** vectorized transform call and
    gathers them back per query.  The compiled form is independent of the
    SA choice: profiles are cached per ``(axis, wavelet-or-identity)``,
    so all ``2^d`` Privelet+ candidates over the same schema reuse the
    same compiled ranges (each axis is profiled at most twice in total).

    Parameters
    ----------
    schema:
        The schema all ``queries`` are bound to.
    queries:
        Non-empty iterable of range-count queries.
    """

    def __init__(self, schema: Schema, queries):
        self.schema = schema
        self.queries = tuple(queries)
        if not self.queries:
            raise QueryError("workload is empty")
        lows, highs = query_boxes(self.queries, schema.shape)
        self._compile(lows, highs)

    @classmethod
    def from_boxes(cls, schema: Schema, lows, highs) -> "CompiledWorkload":
        """Compile raw ``(n, d)`` box arrays, no query objects involved.

        The columnar serving path arrives with bound arrays straight off
        the wire; this constructor compiles them directly — same
        deduplicated per-axis ranges, same SA-independent profile cache
        — without materializing a Python query per row.  The resulting
        workload has no :attr:`queries` tuple (it is empty), but every
        vectorized method (:meth:`profile_products`, :meth:`variances`,
        :meth:`average_variance`, :meth:`expected_relative_errors`)
        works identically.

        Parameters
        ----------
        schema:
            The schema the boxes are bound to.
        lows, highs:
            ``(n, d)`` half-open box bounds, one row per query.

        Returns
        -------
        CompiledWorkload
            Compiled over the given boxes (``len`` = n).
        """
        lows, highs = ensure_boxes(lows, highs, schema.shape)
        if lows.shape[0] == 0:
            raise QueryError("workload is empty")
        compiled = cls.__new__(cls)
        compiled.schema = schema
        compiled.queries = ()
        compiled._compile(lows, highs)
        return compiled

    def _compile(self, lows: np.ndarray, highs: np.ndarray) -> None:
        self._count = lows.shape[0]
        # Per axis: unique (lo, hi) pairs + the gather map back to queries.
        self._axis_ranges: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for axis in range(self.schema.dimensions):
            pairs = np.stack([lows[:, axis], highs[:, axis]], axis=1)
            unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
            self._axis_ranges.append((unique[:, 0], unique[:, 1], inverse))
        # (axis, is_identity) -> profiles of that axis's unique ranges.
        # Sound because the wavelet transform of an axis is a pure
        # function of the schema attribute, and the only alternative an
        # SA choice introduces is the identity.
        self._profile_cache: dict[tuple[int, bool], np.ndarray] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def unique_range_counts(self) -> tuple[int, ...]:
        """Deduplicated range count per axis (diagnostics/tests)."""
        return tuple(len(lows) for lows, _, _ in self._axis_ranges)

    def axis_profiles(self, axis: int, transform: OneDimensionalTransform) -> np.ndarray:
        """Per-*query* profiles of one axis under ``transform``."""
        lows, highs, inverse = self._axis_ranges[axis]
        key = (axis, isinstance(transform, IdentityTransform))
        unique_profiles = self._profile_cache.get(key)
        if unique_profiles is None:
            unique_profiles = np.asarray(
                transform.range_profiles(lows, highs), dtype=np.float64
            )
            self._profile_cache[key] = unique_profiles
        return unique_profiles[inverse]

    def profile_products(self, hn: HNTransform) -> np.ndarray:
        """Per-query products of axis profiles under the transform ``hn``.

        Returns
        -------
        numpy.ndarray
            One product per compiled query.
        """
        # Schema *equality*, not just shape: the profile cache assumes
        # each axis's wavelet transform is determined by this workload's
        # schema, so a same-shape schema with e.g. a different hierarchy
        # must be rejected rather than served stale profiles.
        if hn.schema != self.schema:
            raise QueryError(
                "transform schema does not match the compiled workload"
            )
        products = np.ones(self._count, dtype=np.float64)
        for axis, transform in enumerate(hn.transforms):
            products *= self.axis_profiles(axis, transform)
        return products

    def variances(self, hn: HNTransform, noise_magnitude: float) -> np.ndarray:
        """Exact per-query noise variances under ``hn``, vectorized.

        Parameters
        ----------
        hn:
            The HN transform (an SA choice over the compiled schema).
        noise_magnitude:
            The Privelet lambda the mechanism uses.

        Returns
        -------
        numpy.ndarray
            One exact variance per compiled query.
        """
        noise_magnitude = ensure_positive(noise_magnitude, "noise_magnitude")
        return 2.0 * noise_magnitude**2 * self.profile_products(hn)

    def average_variance(self, hn: HNTransform, noise_magnitude: float) -> float:
        """Mean of :meth:`variances` under ``hn`` and ``noise_magnitude``."""
        return float(self.variances(hn, noise_magnitude).mean())

    def expected_relative_errors(
        self,
        hn: HNTransform,
        noise_magnitude: float,
        exact_answers,
        sanity: float,
    ) -> np.ndarray:
        """Gaussian-approximation ``E[relerr]`` per query (§IX analysis).

        ``E|noise| = sigma * sqrt(2/pi)`` under the CLT, divided by the
        §VII-A ``sanity``-bounded exact answer.

        Parameters
        ----------
        hn:
            The HN transform (an SA choice over the compiled schema).
        noise_magnitude:
            The Privelet lambda the mechanism uses.
        exact_answers:
            True answers aligned with the compiled queries.
        sanity:
            The §VII-A sanity bound ``s`` (denominator floor).

        Returns
        -------
        numpy.ndarray
            Predicted expected relative error per query.
        """
        sanity = ensure_positive(sanity, "sanity")
        stds = np.sqrt(self.variances(hn, noise_magnitude))
        exact_answers = np.asarray(exact_answers, dtype=np.float64)
        if exact_answers.shape != (self._count,):
            raise QueryError(
                f"expected {self._count} exact answers, got shape "
                f"{exact_answers.shape}"
            )
        denominators = np.maximum(exact_answers, sanity)
        return stds * math.sqrt(2.0 / math.pi) / denominators


def workload_average_variance(
    schema: Schema, sa_names, queries, epsilon: float, *, compiled: CompiledWorkload | None = None
) -> float:
    """Average *exact* noise variance over a workload for one SA choice.

    Pass ``compiled`` to reuse a :class:`CompiledWorkload` across SA
    choices (as :func:`optimize_sa` does); it must have been built from
    the same queries over the same schema.

    Parameters
    ----------
    schema:
        The released schema.
    sa_names:
        The Privelet+ SA candidate to evaluate.
    queries:
        The workload sample (ignored when ``compiled`` is given).
    epsilon:
        Privacy budget the lambda is derived from.
    compiled:
        Optional pre-compiled workload to reuse.

    Returns
    -------
    float
        Mean exact variance over the workload.
    """
    epsilon = ensure_positive(epsilon, "epsilon")
    hn = HNTransform(schema, sa_names)
    magnitude = 2.0 * hn.generalized_sensitivity() / epsilon
    if compiled is None:
        compiled = CompiledWorkload(schema, queries)
    return compiled.average_variance(hn, magnitude)


def expected_relative_errors(
    schema: Schema, sa_names, workload, epsilon: float, sanity: float
) -> np.ndarray:
    """Predicted expected relative error per query (§IX future work).

    The paper's second future-work item asks what Privelet guarantees for
    *expected relative error*.  Given a bound workload (with exact
    answers), each query's answer carries zero-mean noise of known exact
    variance ``sigma_q^2``; under the Gaussian approximation to the noise
    sum, ``E|noise| = sigma_q * sqrt(2/pi)``, so::

        E[relerr(q)] ~= sigma_q * sqrt(2/pi) / max(act_q, s)

    with the §VII-A sanity bound ``s``.  This is a *prediction* from the
    mechanism configuration plus the exact answers (a designer-side
    analysis tool, not a private release — it consumes the true answers).

    Parameters
    ----------
    schema:
        The released schema.
    sa_names:
        The Privelet+ SA set the mechanism would use.
    workload:
        A :class:`repro.queries.workload.Workload` (bound queries with
        exact answers).
    epsilon:
        Privacy budget the lambda is derived from.
    sanity:
        The §VII-A sanity bound (denominator floor).

    Returns
    -------
    numpy.ndarray
        Predicted expected relative error per query.
    """
    epsilon = ensure_positive(epsilon, "epsilon")
    sanity = ensure_positive(sanity, "sanity")
    hn = HNTransform(schema, sa_names)
    magnitude = 2.0 * hn.generalized_sensitivity() / epsilon
    compiled = CompiledWorkload(schema, workload.queries)
    return compiled.expected_relative_errors(
        hn, magnitude, workload.exact_answers, sanity
    )


@dataclass(frozen=True)
class SaChoice:
    """Result of workload-aware SA optimization."""

    sa: tuple[str, ...]
    average_variance: float
    #: All evaluated candidates, sorted best-first: (sa, avg variance).
    ranking: tuple[tuple[tuple[str, ...], float], ...]


def optimize_sa(schema: Schema, queries, epsilon: float = 1.0) -> SaChoice:
    """Choose the Privelet+ ``SA`` minimizing average exact variance.

    Exhausts all ``2^d`` subsets (d is small for relational schemas; the
    paper's is 4).  This implements the §IX future-work direction
    "extend Privelet for the case where the distribution of range-count
    queries is known in advance": with a workload sample in hand, pick
    the hybrid split that is optimal *for that workload* rather than for
    the worst case.  The workload is compiled once; every candidate
    reuses the same deduplicated per-axis profiles, so the sweep costs
    two profile passes per axis instead of ``2^d`` rebuilds.

    Parameters
    ----------
    schema:
        The schema to publish under.
    queries:
        A workload sample representative of expected traffic.
    epsilon:
        Privacy budget the per-candidate lambdas are derived from.

    Returns
    -------
    SaChoice
        Best SA set, its average variance, and the full ranking.
    """
    compiled = CompiledWorkload(schema, list(queries))
    candidates = []
    for r in range(len(schema.names) + 1):
        for sa in itertools.combinations(schema.names, r):
            average = workload_average_variance(
                schema, sa, compiled.queries, epsilon, compiled=compiled
            )
            candidates.append((sa, average))
    candidates.sort(key=lambda item: item[1])
    best_sa, best_average = candidates[0]
    return SaChoice(sa=best_sa, average_variance=best_average, ranking=tuple(candidates))
