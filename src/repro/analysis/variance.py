"""Closed-form noise-variance bounds from the paper, as checkable code.

Every bound below is "worst-case noise variance of one range-count
answer at ε-differential privacy":

* :func:`basic_bound` — §II-B: ``8 m / eps^2`` (a query can cover all
  ``m`` cells, each carrying Laplace(2/ε) noise of variance ``8/eps^2``).
* :func:`haar_bound` — Equation 4: ``(2 + log2 m)(2 + 2 log2 m)^2 /
  eps^2`` for 1-D ordinal Privelet.
* :func:`nominal_bound` — Equation 6: ``4 * 2 * (2h)^2 / eps^2 = 32 h^2 /
  eps^2`` for 1-D nominal Privelet.
* :func:`privelet_plus_bound` — Equation 7: ``(8/eps^2) * prod_{A in SA}
  |A| * prod_{A not in SA} P(A)^2 H(A)``.

Ordinal domains use their power-of-two padded size, matching what the
mechanism actually releases.
"""

from __future__ import annotations

import math

from repro.data.schema import Schema
from repro.utils.validation import ensure_positive, ensure_positive_int, next_power_of_two

__all__ = [
    "basic_bound",
    "haar_bound",
    "nominal_bound",
    "privelet_plus_bound",
    "crossover_coverage",
]


def basic_bound(num_cells: int, epsilon: float) -> float:
    """§II-B worst case for Basic: ``8 m / eps^2``."""
    num_cells = ensure_positive_int(num_cells, "num_cells")
    epsilon = ensure_positive(epsilon, "epsilon")
    return 8.0 * num_cells / (epsilon * epsilon)


def haar_bound(domain_size: int, epsilon: float) -> float:
    """Equation 4 for 1-D ordinal Privelet (domain padded to ``2**l``)."""
    domain_size = ensure_positive_int(domain_size, "domain_size")
    epsilon = ensure_positive(epsilon, "epsilon")
    log_m = math.log2(next_power_of_two(domain_size))
    return (2.0 + log_m) * (2.0 + 2.0 * log_m) ** 2 / (epsilon * epsilon)


def nominal_bound(height: int, epsilon: float) -> float:
    """Equation 6 for 1-D nominal Privelet: ``32 h^2 / eps^2``."""
    height = ensure_positive_int(height, "height")
    epsilon = ensure_positive(epsilon, "epsilon")
    return 4.0 * 2.0 * (2.0 * height) ** 2 / (epsilon * epsilon)


def privelet_plus_bound(schema: Schema, sa_names, epsilon: float) -> float:
    """Equation 7 for Privelet+ with the given ``SA`` set."""
    epsilon = ensure_positive(epsilon, "epsilon")
    sa = frozenset(sa_names)
    for name in sa:
        schema.index_of(name)
    product = 1.0
    for attribute in schema:
        if attribute.name in sa:
            product *= attribute.size
        else:
            p = attribute.sensitivity_factor()
            product *= p * p * attribute.variance_factor()
    return 8.0 / (epsilon * epsilon) * product


def crossover_coverage(schema: Schema, sa_names, epsilon: float = 1.0) -> float:
    """Coverage at which Privelet+'s bound beats Basic's *actual* error.

    Basic's noise variance for a query covering a fraction ``c`` of the
    matrix is ``8 c m / eps^2``; Privelet+'s bound is coverage-free.  The
    crossover is ``c* = privelet_plus_bound / (8 m / eps^2)``: queries
    with coverage above ``c*`` favour Privelet+.  (ε cancels; it is a
    parameter only for readability.)  The paper's experiments place this
    near 1% coverage for the census datasets.
    """
    bound = privelet_plus_bound(schema, sa_names, epsilon)
    return bound / basic_bound(schema.num_cells, epsilon)
