"""The paper's two worked analytical comparisons, reproduced as code.

* §V-D compares the nominal wavelet transform against the plain Haar
  transform (over the imposed leaf order) on the Brazil census attribute
  Occupation — ``m = 512`` leaves, hierarchy height ``h = 3``::

      Haar:    (2 + log2 512)(2 + 2 log2 512)^2 / eps^2 = 4400 / eps^2
      Nominal: 4 * 2 * (2*3)^2 / eps^2                  =  288 / eps^2

  a ~15x variance reduction.

* §VI-D compares Privelet against Basic on a single ordinal attribute
  with ``|A| = 16``::

      Privelet: 2 (2 P(A)/eps)^2 H(A) = 600 / eps^2
      Basic:    |A| * 8 / eps^2       = 128 / eps^2

  showing Basic wins on small domains — the motivation for Privelet+.
  (The paper's §VI-D display misprints Basic's bound as
  ``2(2|A|/eps)^2``; the number it reports, 128/ε², matches
  ``|A| * 8 / eps^2``, which is the §II-B analysis, so this module uses
  the latter.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.variance import basic_bound, haar_bound, nominal_bound
from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "NominalVsHaar",
    "nominal_vs_haar",
    "HybridCrossover",
    "privelet_vs_basic_small_domain",
]


@dataclass(frozen=True)
class NominalVsHaar:
    """§V-D comparison on one nominal attribute."""

    domain_size: int
    height: int
    epsilon: float
    haar_variance_bound: float
    nominal_variance_bound: float

    @property
    def improvement_factor(self) -> float:
        return self.haar_variance_bound / self.nominal_variance_bound


def nominal_vs_haar(domain_size: int, height: int, epsilon: float = 1.0) -> NominalVsHaar:
    """Compare Equations 4 and 6 for a nominal attribute.

    With the paper's Occupation figures (512 leaves, height 3) this
    returns 4400/ε² vs 288/ε² — the 15-fold reduction §V-D reports.
    """
    domain_size = ensure_positive_int(domain_size, "domain_size")
    height = ensure_positive_int(height, "height")
    epsilon = ensure_positive(epsilon, "epsilon")
    return NominalVsHaar(
        domain_size=domain_size,
        height=height,
        epsilon=epsilon,
        haar_variance_bound=haar_bound(domain_size, epsilon),
        nominal_variance_bound=nominal_bound(height, epsilon),
    )


@dataclass(frozen=True)
class HybridCrossover:
    """§VI-D comparison on one ordinal attribute."""

    domain_size: int
    epsilon: float
    privelet_variance_bound: float
    basic_variance_bound: float

    @property
    def basic_wins(self) -> bool:
        return self.basic_variance_bound < self.privelet_variance_bound


def privelet_vs_basic_small_domain(domain_size: int, epsilon: float = 1.0) -> HybridCrossover:
    """Compare Privelet's Equation-4 bound with Basic's ``8|A|/eps^2``.

    For ``|A| = 16`` this gives 600/ε² vs 128/ε² (§VI-D): Basic wins,
    motivating Privelet+'s SA rule ``|A| <= P(A)^2 H(A)``.
    """
    domain_size = ensure_positive_int(domain_size, "domain_size")
    epsilon = ensure_positive(epsilon, "epsilon")
    return HybridCrossover(
        domain_size=domain_size,
        epsilon=epsilon,
        privelet_variance_bound=haar_bound(domain_size, epsilon),
        basic_variance_bound=basic_bound(domain_size, epsilon),
    )
