"""Closed-form analyses: variance bounds and the paper's worked examples."""

from repro.analysis.exact import (
    AxisProfileCache,
    CompiledWorkload,
    SaChoice,
    axis_variance_profile,
    expected_relative_errors,
    optimize_sa,
    query_noise_variance,
    workload_average_variance,
)
from repro.analysis.theory import (
    HybridCrossover,
    NominalVsHaar,
    nominal_vs_haar,
    privelet_vs_basic_small_domain,
)
from repro.analysis.variance import (
    basic_bound,
    crossover_coverage,
    haar_bound,
    nominal_bound,
    privelet_plus_bound,
)

__all__ = [
    "axis_variance_profile",
    "query_noise_variance",
    "AxisProfileCache",
    "CompiledWorkload",
    "workload_average_variance",
    "expected_relative_errors",
    "optimize_sa",
    "SaChoice",
    "basic_bound",
    "haar_bound",
    "nominal_bound",
    "privelet_plus_bound",
    "crossover_coverage",
    "NominalVsHaar",
    "nominal_vs_haar",
    "HybridCrossover",
    "privelet_vs_basic_small_domain",
]
