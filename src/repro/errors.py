"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses mirror the major subsystems: data modelling, hierarchy
construction, transforms, query evaluation, and privacy accounting.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A schema, attribute, or table definition is invalid."""


class HierarchyError(SchemaError):
    """A nominal-attribute hierarchy violates a structural requirement.

    The nominal wavelet transform requires every internal node to have a
    fanout of at least two (otherwise the weight ``f / (2f - 2)`` used by
    :func:`repro.core.weights.nominal_weight_vector` is undefined).
    """


class TransformError(ReproError):
    """A wavelet transform was applied to incompatible input."""


class QueryError(ReproError):
    """A range-count query is malformed or incompatible with its schema."""


class PrivacyError(ReproError):
    """A privacy parameter (epsilon, lambda, sensitivity) is invalid."""


class StreamingError(ReproError):
    """A streaming-ingestion operation is invalid.

    Raised by :mod:`repro.streaming` for malformed epoch windows, rows
    whose timestamps land in an epoch that has already been published
    (late arrivals cannot be added to a released epoch), and stream
    archives whose manifest is inconsistent with their node members.
    """


class ServingError(ReproError):
    """A serving-layer request cannot be satisfied.

    Raised by :mod:`repro.serving` for registry problems (unknown or
    duplicate release names), malformed :class:`~repro.serving.requests.
    QueryRequest` payloads, and use-after-close of a
    :class:`~repro.serving.server.ReleaseServer`.  Wire-facing loops (the
    ``serve`` CLI) translate it into a structured error response instead
    of a traceback; :attr:`code` is the machine-readable response code.
    """

    def __init__(self, message: str, *, code: str = "bad-request"):
        super().__init__(message)
        #: Machine-readable error code carried into wire responses
        #: (e.g. ``unknown-release``, ``bad-request``, ``closed``).
        self.code = code
