"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses mirror the major subsystems: data modelling, hierarchy
construction, transforms, query evaluation, and privacy accounting.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A schema, attribute, or table definition is invalid."""


class HierarchyError(SchemaError):
    """A nominal-attribute hierarchy violates a structural requirement.

    The nominal wavelet transform requires every internal node to have a
    fanout of at least two (otherwise the weight ``f / (2f - 2)`` used by
    :func:`repro.core.weights.nominal_weight_vector` is undefined).
    """


class TransformError(ReproError):
    """A wavelet transform was applied to incompatible input."""


class QueryError(ReproError):
    """A range-count query is malformed or incompatible with its schema."""


class PrivacyError(ReproError):
    """A privacy parameter (epsilon, lambda, sensitivity) is invalid."""
