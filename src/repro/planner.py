"""Cost-based batch planning on top of the query engine.

The engine answers whatever rows it is handed, in the order it is
handed them.  A serving workload is rarely that tidy: dashboards re-ask
identical boxes inside one batch, marginal widgets sweep the same small
cube cell by cell, and a composed release only needs the parts the
batch actually routes to.  :class:`QueryPlanner` sits between a batch
and a :class:`~repro.queries.engine.QueryEngine` and exploits exactly
that structure — without changing a single output bit:

* **Deduplication + regrouping** — the batch's ``(lo, hi)`` rows are
  collapsed to their distinct boxes (``numpy.unique`` over the stacked
  bounds), each distinct box is answered once, and the answers are
  scattered back through the inverse map, so the response order is the
  request order.  The unique pass is lexicographically sorted, which
  also groups near-identical ranges for per-axis profile-cache reuse.
  Dedup is lossless here because a release's noise is *frozen at
  publish time*: the same box always returns the same float.
* **Minimal part cover** — for a composed backend
  (:class:`~repro.core.compose.ComposedRelease`) the planner reports
  the minimal set of parts the deduplicated batch routes to
  (:meth:`~repro.core.compose.ComposedRelease.part_cover`), one
  payload-free routing pass; parts outside the cover are never loaded.
* **Cost model** — plans are costed with the same closed-form the
  exact-variance machinery rests on: a range on an axis of size ``m``
  decomposes into at most ``2 * ceil(log2 m) + 2`` HN tree nodes, so a
  box costs about the product of its per-axis node counts.  The planned
  cost (distinct rows only) versus the naive cost (every row) is the
  planner's savings estimate.
* **Materialized marginal views** — rows that are marginal-cube cells
  (point on some axes, full domain on the rest) are tallied per cube
  signature; once a cube's cumulative row traffic would have paid for
  computing the whole cube, the planner materializes it through the
  engine (one columnar call over the cube's cells) and serves later
  cells by indexed lookup.  Views are pure post-processing of the
  frozen release, so view-served answers are bit-for-bit the engine's.
  A stream ``refresh`` drops the planner with its plan (see
  :class:`~repro.serving.plans.PlanCache`), so views never outlive the
  release snapshot they were computed from; :meth:`QueryPlanner.
  invalidate` does the same for direct users.

Planned and unplanned paths share one interval constructor, one
variance pass, and one backend gather, so
:meth:`QueryPlanner.answer_columnar` is bit-for-bit equal to
:meth:`~repro.queries.engine.QueryEngine.answer_columnar` on the same
rows — the planner is an optimization layer, never an approximation.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.queries.engine import BatchQueryAnswers, _interval_answers
from repro.utils.validation import ensure_boxes, ensure_positive_int

__all__ = ["PlannedBatch", "QueryPlanner", "plan_batch"]


def _box_costs(lows: np.ndarray, highs: np.ndarray, sizes) -> np.ndarray:
    """Estimated engine cost per box row (HN tree nodes gathered).

    A range of width ``w`` on an axis of size ``m`` decomposes into at
    most ``min(w, 2 * ceil(log2 m) + 2)`` HN tree nodes; a box's gather
    cost is the product over axes.  Degenerate rows cost 0.
    """
    widths = (highs - lows).astype(np.float64)
    costs = np.ones(lows.shape[0], dtype=np.float64)
    for axis, size in enumerate(sizes):
        bound = 2.0 * math.ceil(math.log2(size)) + 2.0 if size > 1 else 1.0
        costs *= np.minimum(widths[:, axis], bound)
    costs[np.any(widths <= 0, axis=1)] = 0.0
    return costs


@dataclass(frozen=True)
class PlannedBatch:
    """One batch, planned: distinct boxes, inverse map, cover, and costs.

    Built by :meth:`QueryPlanner.plan`; purely descriptive (answering
    happens in :meth:`QueryPlanner.answer_columnar`, which re-derives
    the same plan so it never acts on stale view state).
    """

    #: Distinct ``(u, d)`` box bounds, lexicographically sorted.
    unique_lows: np.ndarray
    unique_highs: np.ndarray
    #: ``(n,)`` map from request rows to distinct rows (scatter key).
    inverse: np.ndarray
    #: Touched part indexes for a composed backend, ``None`` otherwise.
    cover: tuple | None
    #: Estimated engine cost of the planned batch (distinct rows only).
    cost: float
    #: Estimated engine cost of answering every row naively.
    naive_cost: float

    @property
    def num_rows(self) -> int:
        """How many rows the request batch has."""
        return int(self.inverse.shape[0])

    @property
    def num_unique(self) -> int:
        """How many distinct boxes the batch collapses to."""
        return int(self.unique_lows.shape[0])

    @property
    def duplicate_rows(self) -> int:
        """Rows answered by scatter instead of a fresh engine pass."""
        return self.num_rows - self.num_unique

    def __repr__(self) -> str:
        return (
            f"PlannedBatch(rows={self.num_rows}, unique={self.num_unique}, "
            f"cover={self.cover}, cost={self.cost:.0f}/{self.naive_cost:.0f})"
        )


class _MarginalView:
    """One materialized marginal cube: flat estimate/std tables.

    Indexed by ``ravel_multi_index`` of the kept-axis cell coordinates;
    built from one engine columnar pass over the cube's cells, so every
    stored float is exactly what the engine would return for that cell.
    """

    __slots__ = ("kept_axes", "kept_sizes", "estimates", "noise_stds")

    def __init__(self, kept_axes, kept_sizes, estimates, noise_stds):
        self.kept_axes = kept_axes
        self.kept_sizes = kept_sizes
        self.estimates = estimates
        self.noise_stds = noise_stds

    def lookup(self, lows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(estimates, stds)`` for cells with the view's shape."""
        if self.kept_axes:
            coords = tuple(lows[:, axis] for axis in self.kept_axes)
            flat = np.ravel_multi_index(coords, self.kept_sizes)
        else:
            flat = np.zeros(lows.shape[0], dtype=np.intp)
        return self.estimates[flat], self.noise_stds[flat]


class QueryPlanner:
    """Plan columnar batches for one engine: dedup, cover, cached views.

    Wraps a :class:`~repro.queries.engine.QueryEngine` (one release
    snapshot, possibly a time window) and answers batches through
    :meth:`answer_columnar` with outputs bit-for-bit identical to the
    engine's own — the plan only removes redundant work.  The serving
    layer builds one planner per compiled plan (see
    :class:`~repro.serving.plans.PlanCache`), so a stream refresh drops
    the planner and its views with the plan.

    Parameters
    ----------
    engine:
        The engine to plan for; the planner owns no release state
        beyond views derived from this engine's frozen answers.
    view_cell_budget:
        Largest marginal cube (in cells) the planner may materialize;
        cubes beyond the budget are always answered directly.
    max_views:
        Most cubes kept materialized at once; further qualifying cubes
        are answered directly until :meth:`invalidate` frees slots.
    """

    def __init__(self, engine, *, view_cell_budget: int = 1 << 18, max_views: int = 16):
        self._engine = engine
        self._view_cell_budget = ensure_positive_int(
            view_cell_budget, "view_cell_budget"
        )
        self._max_views = ensure_positive_int(max_views, "max_views")
        self._lock = threading.Lock()
        self._views: dict[tuple, _MarginalView] = {}
        #: Cumulative matched rows per qualifying-but-unbuilt signature.
        self._pending: dict[tuple, int] = {}
        #: Rows planned through :meth:`answer_columnar` (monotone).
        self.rows_planned = 0
        #: Rows answered by scatter from an identical row's answer.
        self.rows_deduped = 0
        #: Rows served from materialized marginal views.
        self.view_rows = 0
        #: Marginal cubes materialized so far.
        self.views_built = 0

    @property
    def engine(self):
        """The engine this planner plans for."""
        return self._engine

    @property
    def num_views(self) -> int:
        """How many marginal cubes are currently materialized."""
        return len(self._views)

    @property
    def view_signatures(self) -> tuple:
        """Kept-axis signatures of the materialized cubes."""
        return tuple(sorted(self._views))

    # ------------------------------------------------------------------
    def _dedup(self, lows, highs):
        """Validated bounds plus their distinct rows and inverse map."""
        lows, highs = ensure_boxes(lows, highs, self._engine.schema.shape)
        dims = lows.shape[1]
        stacked = np.concatenate([lows, highs], axis=1)
        unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        return lows, highs, unique[:, :dims], unique[:, dims:], inverse

    def plan(self, lows, highs) -> PlannedBatch:
        """Describe how :meth:`answer_columnar` would run this batch.

        One vectorized dedup pass plus (for composed backends) one
        payload-free routing pass — nothing is loaded or answered.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per
            query (axis order = schema order).

        Returns
        -------
        PlannedBatch
            The distinct rows, the scatter map, the minimal part cover
            (``None`` for a monolithic backend), and the cost estimates.
        """
        lows, highs, unique_lows, unique_highs, inverse = self._dedup(lows, highs)
        release = self._engine.release
        cover = None
        if hasattr(release, "part_cover"):
            cover = release.part_cover(unique_lows, unique_highs)
        sizes = self._engine.schema.shape
        unique_costs = _box_costs(unique_lows, unique_highs, sizes)
        return PlannedBatch(
            unique_lows=unique_lows,
            unique_highs=unique_highs,
            inverse=inverse,
            cover=cover,
            cost=float(unique_costs.sum()),
            naive_cost=float(unique_costs[inverse].sum()),
        )

    # ------------------------------------------------------------------
    def _marginal_signatures(self, unique_lows, unique_highs):
        """Group marginal-cell rows by their kept-axis signature.

        A row is a marginal-cube cell when every axis is either a point
        (``hi == lo + 1``) or the full domain; its signature is the
        tuple of point axes (full-domain axes win ties so a size-1 axis
        never inflates the cube).
        """
        sizes = np.asarray(self._engine.schema.shape, dtype=np.int64)
        full = (unique_lows == 0) & (unique_highs == sizes)
        point = (unique_highs == unique_lows + 1) & ~full
        marginal = np.all(full | point, axis=1)
        groups: dict[tuple, list[int]] = {}
        for row in np.flatnonzero(marginal):
            signature = tuple(int(axis) for axis in np.flatnonzero(point[row]))
            groups.setdefault(signature, []).append(int(row))
        return groups

    def _build_view(self, signature, confidence) -> _MarginalView:
        """Materialize one cube through the engine (exact, frozen floats)."""
        sizes = self._engine.schema.shape
        kept_sizes = tuple(sizes[axis] for axis in signature)
        cells = int(np.prod(kept_sizes, dtype=np.int64)) if kept_sizes else 1
        cube_lows = np.zeros((cells, len(sizes)), dtype=np.int64)
        cube_highs = np.tile(np.asarray(sizes, dtype=np.int64), (cells, 1))
        if kept_sizes:
            grids = np.indices(kept_sizes).reshape(len(kept_sizes), cells)
            for position, axis in enumerate(signature):
                cube_lows[:, axis] = grids[position]
                cube_highs[:, axis] = grids[position] + 1
        answers = self._engine.answer_columnar(cube_lows, cube_highs, confidence)
        return _MarginalView(
            signature, kept_sizes, answers.estimates, answers.noise_stds
        )

    def answer_columnar(
        self, lows, highs, confidence: float = 0.95
    ) -> BatchQueryAnswers:
        """Answer a batch through the plan — bit-for-bit the engine's.

        Distinct rows are answered once (views first, engine for the
        rest) and scattered back through the inverse map; duplicates
        and view hits cost an indexed copy instead of a gather plus a
        variance pass.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per
            query (axis order = schema order).
        confidence:
            Two-sided coverage level in ``(0, 1)``.

        Returns
        -------
        repro.queries.engine.BatchQueryAnswers
            Arrays aligned with the request rows, identical to
            :meth:`~repro.queries.engine.QueryEngine.answer_columnar`
            on the same inputs.
        """
        if not 0.0 < confidence < 1.0:
            # Same precedence as the engine: a bad confidence fails
            # before the bounds are even looked at.
            _interval_answers(np.empty(0), np.empty(0), confidence)
        lows, highs, unique_lows, unique_highs, inverse = self._dedup(lows, highs)
        row_counts = np.bincount(inverse, minlength=unique_lows.shape[0])
        estimates = np.empty(unique_lows.shape[0], dtype=np.float64)
        noise_stds = np.empty(unique_lows.shape[0], dtype=np.float64)
        served = np.zeros(unique_lows.shape[0], dtype=bool)
        view_hits = 0
        groups = self._marginal_signatures(unique_lows, unique_highs)
        for signature, rows in groups.items():
            view = self._resolve_view(signature, rows, row_counts, confidence)
            if view is None:
                continue
            row_index = np.asarray(rows, dtype=np.intp)
            est, std = view.lookup(unique_lows[row_index])
            estimates[row_index] = est
            noise_stds[row_index] = std
            served[row_index] = True
            view_hits += int(row_counts[row_index].sum())
        rest = np.flatnonzero(~served)
        if rest.size:
            answered = self._engine.answer_columnar(
                unique_lows[rest], unique_highs[rest], confidence
            )
            estimates[rest] = answered.estimates
            noise_stds[rest] = answered.noise_stds
        with self._lock:
            self.rows_planned += int(inverse.shape[0])
            self.rows_deduped += int(inverse.shape[0]) - int(unique_lows.shape[0])
            self.view_rows += view_hits
        return _interval_answers(estimates[inverse], noise_stds[inverse], confidence)

    def _resolve_view(self, signature, rows, row_counts, confidence):
        """The view serving ``signature``'s rows, building it when its
        cumulative traffic has paid for the cube; ``None`` to answer
        directly."""
        sizes = self._engine.schema.shape
        kept_sizes = tuple(sizes[axis] for axis in signature)
        cells = int(np.prod(kept_sizes, dtype=np.int64)) if kept_sizes else 1
        if cells > self._view_cell_budget:
            return None
        matched = int(row_counts[np.asarray(rows, dtype=np.intp)].sum())
        with self._lock:
            view = self._views.get(signature)
            if view is not None:
                return view
            pending = self._pending.get(signature, 0) + matched
            if pending < cells or len(self._views) >= self._max_views:
                self._pending[signature] = pending
                return None
            # Reserve the slot before dropping the lock to build.
            self._pending.pop(signature, None)
        view = self._build_view(signature, confidence)
        with self._lock:
            self._views[signature] = view
            self.views_built += 1
        return view

    def invalidate(self) -> int:
        """Drop every materialized view (counters are preserved).

        Call after the underlying release changes (e.g. a stream
        appended an epoch and the engine was rebuilt); the serving
        layer does this implicitly by dropping the whole planner with
        its compiled plan.

        Returns
        -------
        int
            How many views were dropped.
        """
        with self._lock:
            dropped = len(self._views)
            self._views.clear()
            self._pending.clear()
        return dropped

    def __repr__(self) -> str:
        return (
            f"QueryPlanner(views={len(self._views)}, "
            f"rows_planned={self.rows_planned}, "
            f"rows_deduped={self.rows_deduped}, view_rows={self.view_rows})"
        )


def plan_batch(engine, lows, highs) -> PlannedBatch:
    """Describe how a planner would run one batch, without answering it.

    One-shot convenience over :meth:`QueryPlanner.plan` for ad-hoc
    inspection: how many rows collapse away, which parts of a composed
    release the batch routes to, and the closed-form cost estimates.
    Long-lived consumers (servers) should hold a :class:`QueryPlanner`
    instead, so materialized views persist across batches.

    Parameters
    ----------
    engine:
        The :class:`~repro.queries.engine.QueryEngine` the batch would
        run against.
    lows, highs:
        ``(n, d)`` arrays of half-open box bounds, one row per query
        (axis order = schema order).

    Returns
    -------
    PlannedBatch
        The distinct rows, the scatter map, the minimal part cover
        (``None`` for a monolithic backend), and the cost estimates.
    """
    return QueryPlanner(engine).plan(lows, highs)
