"""repro — a full reproduction of *Differential Privacy via Wavelet Transforms*.

Privelet (Xiao, Wang & Gehrke, ICDE 2010) publishes a relational table
under ε-differential privacy by Laplace-perturbing *wavelet coefficients*
of the table's frequency matrix instead of the matrix itself, bringing
range-count query noise down from Θ(m) to polylog(m) variance.

Quick start::

    from repro import (
        BRAZIL, generate_census_table, PriveletPlusMechanism,
        generate_workload, Workload, RangeSumOracle,
    )

    table = generate_census_table(BRAZIL.scaled(0.1), 50_000, seed=0)
    result = PriveletPlusMechanism(sa_names=("Age", "Gender")).publish(
        table, epsilon=1.0, seed=1
    )
    queries = generate_workload(table.schema, 100, seed=2)
    noisy = RangeSumOracle(result.matrix).answer_all(queries)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.analysis import (
    CompiledWorkload,
    basic_bound,
    crossover_coverage,
    haar_bound,
    nominal_bound,
    nominal_vs_haar,
    optimize_sa,
    privelet_plus_bound,
    privelet_vs_basic_small_domain,
    query_noise_variance,
    workload_average_variance,
)
from repro.baselines import BarakMechanism, HayHierarchicalMechanism
from repro.core import (
    BasicMechanism,
    CoefficientRelease,
    ComposedPart,
    ComposedRelease,
    CompositeProfileCaches,
    DenseRelease,
    Partition,
    TimeTree,
    PrivacyAccount,
    PriveletMechanism,
    PriveletPlusMechanism,
    PublishingMechanism,
    PublishResult,
    Release,
    ShardedRelease,
    clamp_nonnegative,
    convert_result,
    partition_table,
    publish,
    publish_nominal_release,
    publish_nominal_vector,
    publish_ordinal_release,
    publish_ordinal_vector,
    publish_sharded,
    rescale_total,
    round_to_integers,
    sanitize,
    select_sa,
    shard_bounds,
    shard_seeds,
)
from repro.io import (
    ResultHandle,
    load_result,
    open_result,
    result_from_parts,
    result_to_parts,
    save_result,
)
from repro.data import (
    BRAZIL,
    US,
    CensusSpec,
    FrequencyMatrix,
    Hierarchy,
    Node,
    NominalAttribute,
    OrdinalAttribute,
    Schema,
    Table,
    balanced_hierarchy,
    census_schema,
    flat_hierarchy,
    generate_census_table,
    generate_uniform_table,
    hierarchy_from_spec,
    load_table_csv,
    save_table_csv,
    two_level_hierarchy,
)
from repro.errors import (
    HierarchyError,
    PrivacyError,
    QueryError,
    ReproError,
    SchemaError,
    ServingError,
    StreamingError,
    TransformError,
)
from repro.planner import PlannedBatch, QueryPlanner, plan_batch
from repro.queries import (
    BatchQueryAnswers,
    QueryAnswer,
    QueryEngine,
    RangeCountQuery,
    RangeSumOracle,
    Workload,
    generate_workload,
    hierarchy_predicate,
    interval_predicate,
    relative_error,
    sanity_bound,
    square_error,
)
from repro.serving import (
    BatchQueryResponse,
    ErrorResponse,
    LatencyRecorder,
    NetworkServer,
    PlanCache,
    QueryBatchRequest,
    QueryRequest,
    QueryResponse,
    ReleaseRegistry,
    ReleaseServer,
    ServerStats,
    ShmAttachment,
    ShmPublication,
    attach_result_from_shm,
    merge_worker_stats,
    publish_result_to_shm,
    sweep_stale_segments,
)
from repro.streaming import StreamingPublisher, StreamRelease, dyadic_cover
from repro.transforms import HaarTransform, HNTransform, NominalTransform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "HierarchyError",
    "TransformError",
    "QueryError",
    "PrivacyError",
    "ServingError",
    "StreamingError",
    # data
    "OrdinalAttribute",
    "NominalAttribute",
    "Hierarchy",
    "Node",
    "flat_hierarchy",
    "two_level_hierarchy",
    "balanced_hierarchy",
    "hierarchy_from_spec",
    "load_table_csv",
    "save_table_csv",
    "Schema",
    "Table",
    "FrequencyMatrix",
    "CensusSpec",
    "BRAZIL",
    "US",
    "census_schema",
    "generate_census_table",
    "generate_uniform_table",
    # transforms
    "HaarTransform",
    "NominalTransform",
    "HNTransform",
    # mechanisms
    "PublishingMechanism",
    "PublishResult",
    "BasicMechanism",
    "PriveletMechanism",
    "PriveletPlusMechanism",
    "select_sa",
    "publish",
    "publish_ordinal_vector",
    "publish_nominal_vector",
    "publish_ordinal_release",
    "publish_nominal_release",
    "Release",
    "DenseRelease",
    "CoefficientRelease",
    "ComposedPart",
    "ComposedRelease",
    "CompositeProfileCaches",
    "Partition",
    "TimeTree",
    "ShardedRelease",
    "convert_result",
    "publish_sharded",
    "partition_table",
    "shard_bounds",
    "shard_seeds",
    "PrivacyAccount",
    "HayHierarchicalMechanism",
    "BarakMechanism",
    "clamp_nonnegative",
    "round_to_integers",
    "rescale_total",
    "sanitize",
    "save_result",
    "load_result",
    "open_result",
    "ResultHandle",
    "result_to_parts",
    "result_from_parts",
    # queries
    "RangeCountQuery",
    "interval_predicate",
    "hierarchy_predicate",
    "RangeSumOracle",
    "QueryEngine",
    "QueryAnswer",
    "BatchQueryAnswers",
    "QueryPlanner",
    "PlannedBatch",
    "plan_batch",
    "Workload",
    "generate_workload",
    "square_error",
    "relative_error",
    "sanity_bound",
    # analysis
    "basic_bound",
    "haar_bound",
    "nominal_bound",
    "privelet_plus_bound",
    "crossover_coverage",
    "nominal_vs_haar",
    "privelet_vs_basic_small_domain",
    "query_noise_variance",
    "workload_average_variance",
    "CompiledWorkload",
    "optimize_sa",
    # streaming
    "StreamingPublisher",
    "StreamRelease",
    "dyadic_cover",
    # serving
    "ReleaseServer",
    "ReleaseRegistry",
    "ServerStats",
    "QueryRequest",
    "QueryResponse",
    "QueryBatchRequest",
    "BatchQueryResponse",
    "PlanCache",
    "ErrorResponse",
    "NetworkServer",
    "LatencyRecorder",
    "merge_worker_stats",
    "ShmPublication",
    "ShmAttachment",
    "publish_result_to_shm",
    "attach_result_from_shm",
    "sweep_stale_segments",
]
