"""Barak et al.'s Fourier-domain marginal release (paper §VIII, ref [21]).

Barak, Chaudhuri, Dwork, Kale, McSherry, Talwar: *Privacy, accuracy, and
consistency too: a holistic solution to contingency table release*
(PODS 2007).  The paper's related-work section contrasts it with
Privelet: a similar transform-noise-refine framework, but optimized for
releasing **marginals** that are mutually consistent and non-negative,
not for range-count accuracy — and it needs a linear program with one
variable per frequency-matrix cell, which is why the paper calls it
impractical for large ``m``.  This module implements it for *binary*
attributes (the setting of the original paper) so the comparison can be
run.

Mechanism, for a d-attribute binary table (m = 2^d cells) and a target
family ``A`` of attribute subsets whose marginals are wanted:

1. compute the Fourier (Walsh) coefficients of the frequency matrix,
   ``phi_alpha = 2^{-d} sum_x (-1)^{<alpha, x>} M[x]``;
2. the marginal on subset ``a`` depends only on coefficients with
   ``alpha`` inside ``a``, so the needed set ``B`` is the downward
   closure of ``A``; add Laplace noise with magnitude ``2 |B| / (2^d
   eps)`` to each needed coefficient (replacing one tuple moves each
   ``phi_alpha`` by at most ``2 / 2^d``, so the weighted L1 sensitivity
   over ``B`` is ``2 |B| / 2^d``);
3. **refine**: solve a linear program for a non-negative cell vector
   ``w`` whose Fourier coefficients are as close as possible (L1) to the
   noisy ones; publish the marginals of ``w`` — non-negative and
   mutually consistent by construction.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import linprog

from repro.core.laplace import laplace_noise, magnitude_for_epsilon
from repro.data.frequency import FrequencyMatrix
from repro.errors import PrivacyError
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive

__all__ = ["BarakMechanism", "walsh_coefficients", "downward_closure"]


def walsh_coefficients(values: np.ndarray) -> np.ndarray:
    """Normalized Walsh-Hadamard transform over d binary axes.

    Input shape must be ``(2,) * d``; output has the same shape, with
    ``out[alpha] = 2^{-d} sum_x (-1)^{<alpha, x>} values[x]``.
    """
    values = np.asarray(values, dtype=np.float64)
    if any(s != 2 for s in values.shape):
        raise PrivacyError("walsh_coefficients requires a (2,)*d binary-shaped array")
    out = values.copy()
    d = out.ndim
    for axis in range(d):
        plus = np.take(out, 0, axis=axis) + np.take(out, 1, axis=axis)
        minus = np.take(out, 0, axis=axis) - np.take(out, 1, axis=axis)
        out = np.stack([plus, minus], axis=axis)
    return out / (2.0**d)


def inverse_walsh(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`walsh_coefficients` (self-inverse up to scaling)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    d = coefficients.ndim
    return walsh_coefficients(coefficients) * (4.0**d) / (2.0**d)


def downward_closure(subsets, dimensions: int) -> list[tuple[int, ...]]:
    """All coefficient indices needed for the given marginal subsets.

    A marginal over attribute subset ``a`` is determined by the Fourier
    coefficients whose support lies inside ``a``; the needed set is the
    union of the power sets of the requested subsets.
    """
    needed = set()
    for subset in subsets:
        subset = tuple(sorted(set(int(i) for i in subset)))
        for index in subset:
            if not 0 <= index < dimensions:
                raise PrivacyError(f"attribute index {index} out of range [0, {dimensions})")
        for r in range(len(subset) + 1):
            needed.update(itertools.combinations(subset, r))
    return sorted(needed, key=lambda s: (len(s), s))


def _alpha_coordinates(support: tuple[int, ...], dimensions: int) -> tuple[int, ...]:
    return tuple(1 if axis in support else 0 for axis in range(dimensions))


class BarakMechanism:
    """Consistent, non-negative DP marginals for binary tables."""

    name = "Barak"

    def __init__(self, marginal_subsets):
        self.marginal_subsets = [tuple(sorted(set(s))) for s in marginal_subsets]
        if not self.marginal_subsets:
            raise PrivacyError("at least one marginal subset is required")

    # ------------------------------------------------------------------
    def publish_matrix(
        self, matrix: FrequencyMatrix, epsilon: float, *, seed=None
    ) -> FrequencyMatrix:
        """Release a full non-negative cell vector ``w`` (whose marginals
        are the published ones)."""
        epsilon = ensure_positive(epsilon, "epsilon")
        values = matrix.values
        if any(s != 2 for s in values.shape):
            raise PrivacyError("BarakMechanism requires all attributes binary (|A| = 2)")
        d = values.ndim
        rng = as_generator(seed)

        needed = downward_closure(self.marginal_subsets, d)
        coefficients = walsh_coefficients(values)

        # Step 2: noise on the needed coefficients only.
        magnitude = magnitude_for_epsilon(epsilon, 2.0 * len(needed) / (2.0**d))
        noisy = {}
        for support in needed:
            alpha = _alpha_coordinates(support, d)
            noisy[support] = float(coefficients[alpha]) + float(
                laplace_noise(magnitude, (), seed=rng)
            )

        # Step 3: LP.  Variables: w (m cells) >= 0 and t_beta >= 0 with
        #   t_beta >= +(phi_beta(w) - noisy_beta)
        #   t_beta >= -(phi_beta(w) - noisy_beta)
        # minimize sum t_beta.
        m = values.size
        k = len(needed)
        # Row for each coefficient: phi_beta(w) = 2^{-d} sum_x chi_beta(x) w[x].
        chi = np.empty((k, m))
        grids = np.indices(values.shape).reshape(d, m)
        for row, support in enumerate(needed):
            signs = np.ones(m)
            for axis in support:
                signs *= 1.0 - 2.0 * grids[axis]
            chi[row] = signs / (2.0**d)
        target = np.asarray([noisy[s] for s in needed])

        # Inequalities: chi w - t <= target ; -chi w - t <= -target.
        eye = np.eye(k)
        a_ub = np.block([[chi, -eye], [-chi, -eye]])
        b_ub = np.concatenate([target, -target])
        objective = np.concatenate([np.zeros(m), np.ones(k)])
        bounds = [(0, None)] * (m + k)
        solution = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not solution.success:  # pragma: no cover - highs is reliable here
            raise PrivacyError(f"consistency LP failed: {solution.message}")
        w = solution.x[:m].reshape(values.shape)
        return FrequencyMatrix(matrix.schema, w)

    def publish_marginals(
        self, matrix: FrequencyMatrix, epsilon: float, *, seed=None
    ) -> dict:
        """The marginals of the released cell vector, keyed by subset."""
        released = self.publish_matrix(matrix, epsilon, seed=seed)
        names = released.schema.names
        return {
            subset: released.marginal([names[i] for i in subset])
            for subset in self.marginal_subsets
        }

    def __repr__(self) -> str:
        return f"BarakMechanism(marginals={self.marginal_subsets})"
