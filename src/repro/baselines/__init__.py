"""Additional baselines beyond the paper's Basic (extensions)."""

from repro.baselines.barak import BarakMechanism, downward_closure, walsh_coefficients
from repro.baselines.hay import HayHierarchicalMechanism

__all__ = [
    "HayHierarchicalMechanism",
    "BarakMechanism",
    "walsh_coefficients",
    "downward_closure",
]
