"""Hay et al.'s hierarchical-consistency mechanism (paper §VIII, ref [22]).

The paper's related-work section singles out Hay, Rastogi, Miklau &
Suciu, *Boosting the accuracy of differentially-private queries through
consistency* (2009/2010), as the independent approach with "comparable
utility guarantees" to Privelet, but "designed exclusively for
one-dimensional datasets".  This module implements it as an extra
baseline so that comparison can be *measured* (see
``benchmarks/test_ablation_hay_vs_privelet.py``).

Mechanism (arity ``k``, 1-D domain padded to a power of ``k``):

1. build a complete ``k``-ary tree over the domain; every node holds the
   exact count of its leaf interval;
2. add Laplace noise with magnitude ``2 L / epsilon`` to every node count
   (``L`` = number of tree levels; replacing one tuple changes the counts
   along two root-to-leaf paths by one each, so the sensitivity is
   ``2 L`` under the paper's neighbouring-table convention);
3. post-process for consistency with Hay et al.'s two closed-form passes
   (the minimum-L2 solution constrained to "parent = sum of children"):

   * bottom-up:  ``z_v = ((k^l - k^(l-1)) y_v + (k^(l-1) - 1) sum_children
     z) / (k^l - 1)`` for a node ``v`` at height ``l`` (leaves: ``z = y``);
   * top-down:   ``hbar_v = z_v + (hbar_parent - sum_siblings z) / k``.

The consistent leaf estimates form the noisy frequency vector; any range
query is then answered by summing leaves (tests use interval sums).
"""

from __future__ import annotations

import numpy as np

from repro.core.laplace import laplace_noise, magnitude_for_epsilon
from repro.errors import PrivacyError
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = ["HayHierarchicalMechanism"]


def _padded_length(length: int, arity: int) -> int:
    padded = 1
    while padded < length:
        padded *= arity
    return padded


class HayHierarchicalMechanism:
    """Hay et al.'s boosted hierarchical counts for one ordinal dimension."""

    name = "Hay"

    def __init__(self, arity: int = 2):
        self.arity = ensure_positive_int(arity, "arity")
        if self.arity < 2:
            raise PrivacyError("arity must be >= 2")

    # ------------------------------------------------------------------
    def publish_vector(self, counts, epsilon: float, *, seed=None) -> np.ndarray:
        """Release a noisy, consistent frequency vector at ε-DP."""
        epsilon = ensure_positive(epsilon, "epsilon")
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1:
            raise PrivacyError("publish_vector expects a 1-D frequency vector")
        rng = as_generator(seed)

        k = self.arity
        padded = _padded_length(len(counts), k)
        leaves = np.zeros(padded, dtype=np.float64)
        leaves[: len(counts)] = counts

        # Exact per-level counts, leaves first.  levels[i] has padded/k^i
        # entries; the last level is the root.
        levels = [leaves]
        while len(levels[-1]) > 1:
            levels.append(levels[-1].reshape(-1, k).sum(axis=1))
        num_levels = len(levels)

        magnitude = magnitude_for_epsilon(epsilon, 2.0 * num_levels)
        noisy = [level + laplace_noise(magnitude, level.shape, seed=rng) for level in levels]

        # Bottom-up pass: z arrays per level.  A node at list index i has
        # height l = i + 1 (leaves l = 1).
        z = [noisy[0]]
        for i in range(1, num_levels):
            l = i + 1
            k_l = float(k**l)
            k_lm1 = float(k ** (l - 1))
            child_sum = z[i - 1].reshape(-1, k).sum(axis=1)
            z.append(((k_l - k_lm1) * noisy[i] + (k_lm1 - 1.0) * child_sum) / (k_l - 1.0))

        # Top-down pass: hbar arrays per level, from the root down.
        hbar = [None] * num_levels
        hbar[num_levels - 1] = z[num_levels - 1]
        for i in range(num_levels - 2, -1, -1):
            sibling_sums = z[i].reshape(-1, k).sum(axis=1)
            adjust = (hbar[i + 1] - sibling_sums) / k
            hbar[i] = z[i] + np.repeat(adjust, k)

        return hbar[0][: len(counts)]

    # ------------------------------------------------------------------
    def noise_magnitude(self, domain_size: int, epsilon: float) -> float:
        """The per-node Laplace magnitude used at this domain size."""
        epsilon = ensure_positive(epsilon, "epsilon")
        padded = _padded_length(ensure_positive_int(domain_size, "domain_size"), self.arity)
        num_levels = 1
        length = padded
        while length > 1:
            length //= self.arity
            num_levels += 1
        return magnitude_for_epsilon(epsilon, 2.0 * num_levels)

    def __repr__(self) -> str:
        return f"HayHierarchicalMechanism(arity={self.arity})"
