"""Composition algebra for releases: partitions and dyadic time trees.

The paper's mechanisms publish *one* noisy coefficient tensor, and every
query answer is pure post-processing of it.  That linearity is why two
composition axes could be bolted on independently — disjoint horizontal
shards (DP parallel composition) and dyadic time hierarchies (streaming)
— but as hand-rolled special cases they did not compose with each
other.  This module makes composition a first-class **algebra** over the
:class:`~repro.core.release.Release` protocol:

* :class:`Partition` — parallel composition along one ordinal axis.
  A box query is clipped against each part's interval; only intersecting
  parts answer, and independent noise means exact variances **add**.
  :class:`~repro.core.sharding.ShardedRelease` is a thin constructor
  over this node.
* :class:`TimeTree` — coefficient-addition over a dyadic time
  hierarchy.  A window query is answered by its canonical dyadic cover
  (at most ``2 ceil(log2 T)`` nodes), every node answering the *same*
  box; all nodes share one transform, so the variance pass computes a
  single profile product per query.
  :class:`~repro.streaming.release.StreamRelease` is a thin constructor
  over this node.

The algebra is **closed under nesting**: a part of a
:class:`Partition` may itself be any composed release, so a sharded
stream is just ``Partition(TimeTree(...), ...)`` — window queries
route to each shard's windowed view and the exact variances still sum.
Every node uniformly exposes ``answer_boxes`` / ``noise_variances_boxes``
/ ``convert`` / ``build_profile_caches``, which is the one composed-
backend code path :class:`~repro.queries.engine.QueryEngine` speaks.

Bit-for-bit parity with the pre-algebra ``ShardedRelease`` and
``StreamRelease`` code paths is the refactor contract: routing masks,
clip arithmetic, and the order of every floating-point accumulation are
preserved exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import AxisProfileCache
from repro.core.framework import PublishResult
from repro.core.release import Release, infer_sa_names
from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import SchemaError, ServingError, StreamingError
from repro.transforms.multidim import HNTransform

__all__ = [
    "ComposedPart",
    "CompositeProfileCaches",
    "ComposedRelease",
    "Partition",
    "TimeTree",
    "ShardSlot",
    "shard_schema",
]


def _partition_axis(schema: Schema, attribute: str) -> int:
    """The partition attribute's axis, validated ordinal."""
    axis = schema.index_of(attribute)
    if not schema[axis].is_ordinal:
        raise SchemaError(
            f"can only shard along an ordinal attribute; {attribute!r} is nominal"
        )
    return axis


def _check_bounds(bounds, size: int) -> tuple[int, ...]:
    """Validate ascending cut points covering exactly ``[0, size)``."""
    bounds = tuple(int(b) for b in bounds)
    if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != size:
        raise SchemaError(
            f"shard bounds must run from 0 to {size}, got {bounds}"
        )
    if any(lo >= hi for lo, hi in zip(bounds, bounds[1:])):
        raise SchemaError(f"shard bounds must be strictly increasing, got {bounds}")
    return bounds


def shard_schema(schema: Schema, attribute: str, lo: int, hi: int) -> Schema:
    """The schema of one shard: ``attribute`` restricted to ``[lo, hi)``.

    Every other attribute is carried over unchanged; the partition
    attribute becomes an ordinal of size ``hi - lo`` (coded values are
    shifted down by ``lo`` inside the shard).

    Parameters
    ----------
    schema:
        The global (unsharded) schema.
    attribute:
        The ordinal attribute the table is partitioned along.
    lo, hi:
        The shard's half-open interval on that attribute's coded domain.

    Returns
    -------
    Schema
        The shard's restricted schema.
    """
    axis = _partition_axis(schema, attribute)
    if not 0 <= lo < hi <= schema[axis].size:
        raise SchemaError(
            f"shard interval [{lo}, {hi}) out of range for {attribute!r} "
            f"of size {schema[axis].size}"
        )
    labels = schema[axis].labels
    attributes = list(schema.attributes)
    attributes[axis] = OrdinalAttribute(
        attribute, hi - lo, labels[lo:hi] if labels is not None else None
    )
    return Schema(attributes)


@dataclass(frozen=True)
class ShardSlot:
    """One deferred part: mechanism configuration now, payload on touch.

    The configuration (``sa_names`` and ``noise_magnitude``) is all a
    :class:`Partition` needs for query routing and exact variances,
    so a v3 archive can register and profile queries without mapping any
    part payload; ``load`` is invoked (once, thread-safely) by the
    first query that actually routes to the part.
    """

    #: The part's Privelet+ ``SA`` set (over its restricted schema).
    sa_names: tuple
    #: The part's Laplace parameter λ.
    noise_magnitude: float
    #: Zero-argument callable returning the part's
    #: :class:`~repro.core.framework.PublishResult`.
    load: object
    #: The payload's representation when known without loading
    #: (``"dense"``/``"coefficients"``); lets representation-converting
    #: callers skip no-op conversions without touching the payload.
    representation: str | None = None


class ComposedPart:
    """Runtime state of one part inside a composed release.

    A part is either a **leaf** (a dense or coefficient release with one
    transform and one λ, possibly archive-backed and lazily loaded) or
    itself **composed** (any release exposing ``noise_variances_boxes``
    — this is what closes the algebra under nesting).  Leaves carry
    their own :class:`~repro.transforms.multidim.HNTransform`, built
    eagerly from ``schema`` and ``sa_names`` so misconfigurations
    surface at construction; composed parts delegate all variance math
    to their child release instead.

    Parameters
    ----------
    schema:
        The part's (restricted) schema.
    sa_names:
        The leaf part's SA set, or ``None`` for a composed part (the
        child release carries its own per-part configuration).
    noise_magnitude:
        The leaf part's Laplace parameter λ (unused for composed parts).
    load:
        Zero-argument callable returning the part's
        :class:`~repro.core.framework.PublishResult`; invoked once,
        thread-safely, on first touch.
    representation:
        The payload's representation when known without loading, else
        ``None``.
    """

    def __init__(
        self, schema: Schema, sa_names, noise_magnitude: float, load,
        representation: str | None = None,
    ):
        self.schema = schema
        self.composed = sa_names is None
        self.sa_names = None if self.composed else tuple(sa_names)
        self.noise_magnitude = float(noise_magnitude)
        self.representation = representation
        self.transform = (
            None if self.composed else HNTransform(schema, self.sa_names)
        )
        self._loader = load
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @classmethod
    def from_result(cls, result: PublishResult) -> "ComposedPart":
        """Wrap an in-memory part ``result`` (already loaded).

        A result whose release exposes ``noise_variances_boxes`` becomes
        a composed part (nesting); anything else is a leaf whose SA set
        is inferred from the result's configuration.

        Parameters
        ----------
        result:
            The part's published result.
        """
        release = result.release
        if hasattr(release, "noise_variances_boxes"):
            part = cls(
                release.schema,
                None,
                result.noise_magnitude,
                lambda: result,
                release.representation,
            )
        else:
            part = cls(
                release.schema,
                infer_sa_names(result),
                result.noise_magnitude,
                lambda: result,
                result.representation,
            )
        part._result = result
        return part

    @property
    def loaded(self) -> bool:
        """True once the payload has been materialized."""
        return self._result is not None

    def result(self) -> PublishResult:
        """The part's full result, loading it on first touch.

        Returns
        -------
        PublishResult
            The part's own published result.
        """
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = self._loader()
        return self._result


class CompositeProfileCaches:
    """Per-part profile caches plus aggregate hit/miss counters.

    Built by :meth:`ComposedRelease.build_profile_caches`; each engine
    serving a composed release owns one of these, so a server's bounded
    cache policy applies to *its* traffic regardless of how the release
    was used before registration.  Serving-layer stats read ``hits``/
    ``misses``/``evictions`` off an engine's profile cache; here those
    counters live in one cache per part, summed on access.  An entry may
    itself be a :class:`CompositeProfileCaches` (a nested composed
    part), so the counters aggregate recursively.

    Parameters
    ----------
    caches:
        One :class:`~repro.analysis.exact.AxisProfileCache` (or nested
        composite) per part, in part order.
    """

    def __init__(self, caches):
        self.caches = list(caches)

    @property
    def hits(self) -> int:
        """Distinct-range lookups served from any part's cache."""
        return sum(cache.hits for cache in self.caches)

    @property
    def misses(self) -> int:
        """Distinct-range lookups that had to call a transform."""
        return sum(cache.misses for cache in self.caches)

    @property
    def evictions(self) -> int:
        """LRU evictions across parts (0 for unbounded caches)."""
        return sum(getattr(cache, "evictions", 0) for cache in self.caches)

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ComposedRelease(Release):
    """Base node of the composition algebra: parts behind one backend.

    Implements the full :class:`~repro.core.release.Release` protocol —
    ``schema``, :meth:`answer_boxes`, ``marginal``, ``to_matrix`` — plus
    :meth:`noise_variances_boxes`, the exact-uncertainty hook the query
    engine uses because a composed release has no single transform or λ.
    Subclasses supply the **routing**: :meth:`Partition._route`
    clips boxes against part intervals, :meth:`TimeTree._route` fans
    the same box to every cover node.  Everything else — answer
    accumulation, per-part variance dispatch (leaf formula vs. recursive
    delegation for nested parts), profile-cache construction, lazy-load
    accounting, and representation conversion — is shared here, so the
    combinators carry no duplicated answer or variance logic.

    Parameters
    ----------
    schema:
        The global schema queries are posed against.
    parts:
        The routable parts, in routing order — :class:`ComposedPart`
        instances or any objects satisfying the same protocol
        (``result()``, ``loaded``, ``noise_magnitude``,
        ``representation``).
    """

    def __init__(self, schema: Schema, parts):
        self._schema = schema
        self._parts = list(parts)
        self._caches = None
        self._caches_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def parts(self) -> tuple:
        """The routable parts, in routing order (treat as read-only)."""
        return tuple(self._parts)

    @property
    def num_parts(self) -> int:
        """How many routable parts this node composes."""
        return len(self._parts)

    @property
    def parts_loaded(self) -> int:
        """How many member payloads have been materialized so far."""
        return sum(part.loaded for part in self._iter_members())

    def part_result(self, index: int) -> PublishResult:
        """Part ``index``'s full result (loads an archive-backed part).

        Parameters
        ----------
        index:
            Part position, in routing order.

        Returns
        -------
        PublishResult
            The part's own published result.
        """
        return self._parts[index].result()

    def _iter_members(self):
        """All member parts (for load counts, bytes, and conversion).

        Defaults to the routable parts; :class:`TimeTree` overrides
        to iterate its full node table (the cover is a subset).
        """
        return iter(self._parts)

    # ------------------------------------------------------------------
    def _route(self, lows: np.ndarray, highs: np.ndarray):
        """Yield ``(index, mask, sub_lows, sub_highs)`` per touched part.

        ``mask`` selects the query rows routed to the part (``None``
        means every row); the sub-bounds are the boxes the part answers,
        re-coded onto its local domain where applicable.
        """
        raise NotImplementedError

    def reject_sa_override(self) -> None:
        """Raise the uniform error for an ``sa_names`` override.

        A composed release carries one SA configuration *per part*, so
        a global override cannot describe it; the query engine calls
        this hook to reject the override with a clear, typed error
        instead of an ``AttributeError`` deep in transform construction.
        """
        raise ServingError(
            f"a {self.representation!r} release carries its own SA "
            "configuration per part; the sa_names override is not "
            "supported for composed releases"
        )

    def part_cover(self, lows, highs) -> tuple[int, ...]:
        """Indexes of the parts at least one box routes to.

        The planner's pruning primitive: parts whose extent misses every
        box never appear (and are therefore never loaded by the
        subsequent answer pass).  Costs one vectorized routing pass and
        touches no payload.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        tuple[int, ...]
            Touched part indexes, in routing order.
        """
        lows, highs = self._check_boxes(lows, highs)
        return tuple(index for index, _, _, _ in self._route(lows, highs))

    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Batch box answers: routed per-part answers, summed.

        Only the parts the routing touches are consulted (lazy parts
        load on their first routed query); rows no part answers keep an
        exact ``0.0``.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` private counts aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        answers = np.zeros(lows.shape[0], dtype=np.float64)
        for index, mask, sub_lows, sub_highs in self._route(lows, highs):
            part_answers = self._parts[index].result().release.answer_boxes(
                sub_lows, sub_highs
            )
            if mask is None:
                answers += part_answers
            else:
                answers[mask] += part_answers
        return answers

    def build_profile_caches(self, factory=None) -> CompositeProfileCaches:
        """Fresh per-part profile caches for one consumer (e.g. engine).

        Each :class:`~repro.queries.engine.QueryEngine` serving this
        release builds its own set, so a server's bounded cache policy
        (and its hit/miss accounting) covers exactly that engine's
        traffic.  Leaf parts get one cache over their own transform;
        nested composed parts recurse, so the returned aggregate mirrors
        the release tree.

        Parameters
        ----------
        factory:
            Optional callable mapping a part's per-axis transform
            sequence to its :class:`~repro.analysis.exact.
            AxisProfileCache`; the serving layer passes a bounded LRU
            subclass.  The default is the unbounded cache.

        Returns
        -------
        CompositeProfileCaches
            One cache (or nested composite) per part, with aggregate
            counters.
        """
        build = factory if factory is not None else AxisProfileCache
        caches = []
        for part in self._parts:
            if getattr(part, "composed", False):
                caches.append(part.result().release.build_profile_caches(factory))
            else:
                caches.append(build(part.transform.transforms))
        return CompositeProfileCaches(caches)

    def _default_caches(self) -> CompositeProfileCaches:
        """The release's own (unbounded) caches for direct variance calls."""
        if self._caches is None:
            with self._caches_lock:
                if self._caches is None:
                    self._caches = self.build_profile_caches()
        return self._caches

    def noise_variances_boxes(self, lows, highs, *, caches=None) -> np.ndarray:
        """Exact noise variance of each box's answer, summed over parts.

        Each routed leaf part contributes ``2 λ_i² · ∏ profile`` on its
        sub-box (through a memoized profile cache); a routed composed
        part recurses with its own nested cache; parts a query does not
        touch contribute nothing — independent noise means the variances
        of the summed answer simply add.  Needs no part payload: the
        profiles depend only on each part's transform configuration.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.
        caches:
            A :class:`CompositeProfileCaches` to memoize profiles in (an
            engine passes its own); defaults to the release's internal
            unbounded set.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` exact variances aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        if caches is None:
            caches = self._default_caches()
        variances = np.zeros(lows.shape[0], dtype=np.float64)
        for index, mask, sub_lows, sub_highs in self._route(lows, highs):
            part = self._parts[index]
            if getattr(part, "composed", False):
                part_variances = part.result().release.noise_variances_boxes(
                    sub_lows, sub_highs, caches=caches.caches[index]
                )
            else:
                products = caches.caches[index].box_profile_products(
                    sub_lows, sub_highs
                )
                part_variances = 2.0 * part.noise_magnitude**2 * products
            if mask is None:
                variances += part_variances
            else:
                variances[mask] += part_variances
        return variances

    def nbytes(self) -> int:
        """Bytes held by the *loaded* members' serving state."""
        return sum(
            member.result().release.nbytes()
            for member in self._iter_members()
            if member.loaded
        )

    def convert(self, representation: str) -> "ComposedRelease":
        """Re-represent every member (``dense``/``coefficients``).

        When every member is already known (without loading) to carry
        ``representation``, this returns ``self`` — so a server's
        representation override on an archive stored that way keeps its
        member-laziness.  Otherwise all members load and convert (nested
        composed members convert recursively); the composition structure
        is preserved either way.  Used by
        :func:`repro.core.release.convert_result` so servers configured
        with a representation override serve composed archives too.

        Parameters
        ----------
        representation:
            The target per-member representation.

        Returns
        -------
        ComposedRelease
            ``self`` when already uniform, else a same-type node whose
            members all carry ``representation``.
        """
        if self._uniformly_represented(representation):
            return self
        return self._converted(representation)

    def _uniformly_represented(self, representation: str) -> bool:
        """True when every *leaf* member already carries ``representation``.

        Recurses through nested composed members (their structure is
        always in memory; only leaf payloads are lazy), so a sharded
        stream whose nodes are all coefficient releases converts to
        ``"coefficients"`` as a no-op instead of loading and rebuilding
        every payload.
        """
        for member in self._iter_members():
            if getattr(member, "composed", False):
                child = member.result().release
                if not child._uniformly_represented(representation):
                    return False
            elif member.representation != representation:
                return False
        return True

    def _converted(self, representation: str) -> "ComposedRelease":
        """Rebuild this node with every member converted (subclass hook)."""
        raise NotImplementedError


class Partition(ComposedRelease):
    """Parallel composition: disjoint parts along one ordinal axis.

    The DP parallel-composition combinator: each part covers one
    contiguous coded interval ``[bounds[i], bounds[i+1])`` of the
    partition attribute and was published with the full ε, which is
    still ε-DP overall because a changed tuple lives in exactly one
    part.  A box query is clipped against each interval; only
    intersecting parts are touched (and therefore loaded, for
    archive-backed parts), their clipped answers summed — and
    independent per-part noise means the exact variances sum the same
    way.  Parts may themselves be composed releases (e.g. a
    :class:`TimeTree` per shard), which makes sharded streams a
    nesting, not a new class.

    Parameters
    ----------
    schema:
        The global (unpartitioned) schema queries are posed against.
    attribute:
        The ordinal attribute the data was partitioned along.
    bounds:
        The ascending cut points the parts cover (``len(shards) + 1``
        values from 0 to the attribute's domain size).
    shards:
        One entry per part, aligned with ``bounds`` intervals: a
        :class:`~repro.core.framework.PublishResult` (in-memory part —
        possibly itself composed), a :class:`ShardSlot` (lazy
        archive-backed leaf), or a pre-built :class:`ComposedPart`.
    """

    representation = "sharded"

    def __init__(self, schema: Schema, attribute: str, bounds, shards):
        self._attribute = str(attribute)
        self._axis = _partition_axis(schema, self._attribute)
        self._bounds = _check_bounds(bounds, schema[self._axis].size)
        entries = list(shards)
        if len(entries) != len(self._bounds) - 1:
            raise SchemaError(
                f"expected {len(self._bounds) - 1} shards for bounds "
                f"{self._bounds}, got {len(entries)}"
            )
        parts: list[ComposedPart] = []
        for index, entry in enumerate(entries):
            lo, hi = self._bounds[index], self._bounds[index + 1]
            sub_schema = shard_schema(schema, self._attribute, lo, hi)
            if isinstance(entry, PublishResult):
                if entry.release.schema.shape != sub_schema.shape:
                    raise SchemaError(
                        f"shard {index} has shape {entry.release.schema.shape}, "
                        f"expected {sub_schema.shape} for interval [{lo}, {hi})"
                    )
                parts.append(ComposedPart.from_result(entry))
            elif isinstance(entry, ShardSlot):
                parts.append(
                    ComposedPart(
                        sub_schema,
                        entry.sa_names,
                        entry.noise_magnitude,
                        entry.load,
                        entry.representation,
                    )
                )
            elif isinstance(entry, ComposedPart):
                parts.append(entry)
            else:
                raise SchemaError(
                    f"shard {index} must be a PublishResult, ShardSlot, or "
                    f"ComposedPart, got {type(entry).__name__}"
                )
        super().__init__(schema, parts)

    # ------------------------------------------------------------------
    @property
    def attribute(self) -> str:
        """The partition attribute's name."""
        return self._attribute

    @property
    def bounds(self) -> tuple[int, ...]:
        """The partition cut points (``num_parts + 1`` values)."""
        return self._bounds

    @property
    def num_shards(self) -> int:
        """How many parts this release is split into (alias of ``num_parts``)."""
        return self.num_parts

    @property
    def shards_loaded(self) -> int:
        """How many part payloads have been materialized so far."""
        return self.parts_loaded

    def shard_result(self, index: int) -> PublishResult:
        """Part ``index``'s full result (loads an archive-backed part).

        Parameters
        ----------
        index:
            Part position, aligned with the ``bounds`` intervals.

        Returns
        -------
        PublishResult
            The part's own published result (its ε equals the union's
            ε — parallel composition, not splitting).
        """
        return self.part_result(index)

    # ------------------------------------------------------------------
    def _route(self, lows: np.ndarray, highs: np.ndarray):
        """Yield ``(index, mask, clipped_lows, clipped_highs)`` per part.

        ``mask`` selects the queries whose partition-axis range
        intersects the part's interval *and* whose box is non-empty;
        the clipped bounds are re-coded onto the part's local domain.
        """
        nonempty = ~np.any(lows == highs, axis=1)
        axis = self._axis
        for index in range(len(self._parts)):
            lo_b, hi_b = self._bounds[index], self._bounds[index + 1]
            clip_lo = np.maximum(lows[:, axis], lo_b)
            clip_hi = np.minimum(highs[:, axis], hi_b)
            mask = nonempty & (clip_lo < clip_hi)
            if not mask.any():
                continue
            sub_lows = lows[mask].copy()
            sub_highs = highs[mask].copy()
            sub_lows[:, axis] = clip_lo[mask] - lo_b
            sub_highs[:, axis] = clip_hi[mask] - lo_b
            yield index, mask, sub_lows, sub_highs

    def window(self, lo: int, hi: int | None = None) -> "Partition":
        """A view answering only over epochs ``[lo, hi)`` of every part.

        Defined only when every part is time-aware (exposes its own
        ``window`` — e.g. a :class:`TimeTree` per shard); the view is
        a same-type union of the per-part windowed views, sharing every
        lazily loaded node payload with this release.  This is what
        makes a nested shard×time release serve ``time_range`` requests
        exactly like a plain stream.

        Parameters
        ----------
        lo:
            First epoch of the window.
        hi:
            One past the last epoch; ``None`` means each part's newest
            closed epoch.

        Returns
        -------
        Partition
            The windowed view.
        """
        import dataclasses

        windowed = []
        for index, part in enumerate(self._parts):
            result = part.result()
            window = getattr(result.release, "window", None)
            if window is None:
                raise StreamingError(
                    f"shard {index} is not time-aware (a "
                    f"{result.release.representation!r} release); cannot "
                    "window this union"
                )
            windowed.append(dataclasses.replace(result, release=window(lo, hi)))
        return type(self)(self._schema, self._attribute, self._bounds, windowed)

    def to_matrix(self) -> FrequencyMatrix:
        """Materialize the global ``M*`` by concatenating part matrices.

        Loads (and densifies) every part — the thing the union exists to
        avoid on the serving path — so, like
        :meth:`~repro.core.release.CoefficientRelease.to_matrix`, the
        result is not cached.
        """
        values = np.zeros(self._schema.shape, dtype=np.float64)
        selector: list = [slice(None)] * len(self._schema.shape)
        for index, part in enumerate(self._parts):
            selector[self._axis] = slice(self._bounds[index], self._bounds[index + 1])
            values[tuple(selector)] = part.result().release.to_matrix().values
        return FrequencyMatrix(self._schema, values)

    def _converted(self, representation: str) -> "Partition":
        """Rebuild the union with every part converted."""
        from repro.core.release import convert_result

        converted = [
            convert_result(self.part_result(index), representation)
            for index in range(self.num_parts)
        ]
        return type(self)(self._schema, self._attribute, self._bounds, converted)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shape={self._schema.shape}, "
            f"by={self._attribute!r}, shards={self.num_parts}, "
            f"loaded={self.parts_loaded})"
        )


class TimeTree(ComposedRelease):
    """Dyadic-time composition: a window over a tree of merged epochs.

    The streaming combinator: node ``(level, index)`` holds the
    coefficient-sum of ``2**level`` independently noised epoch releases
    (pure post-processing, no fresh noise), so its effective λ is
    ``λ · 2**(level/2)`` and the usual ``2 λ_eff² · ∏ profile`` variance
    formula stays exact.  A window ``[lo, hi)`` is answered by its
    canonical dyadic cover — at most ``2 ceil(log2 T)`` nodes, each
    answering the *same* box, summed; all nodes share one schema and SA
    set, so the variance pass computes a single profile product per
    query regardless of cover size.

    Parameters
    ----------
    schema:
        The released schema (time is *not* an axis; it is addressed by
        epoch windows).
    sa_names:
        The SA set every node was published under.
    epochs:
        How many epochs of the stream are closed (``T``); the node
        table must contain every dyadic node inside ``[0, T)``.
    nodes:
        Mapping ``(level, index) -> node``, shared (not copied) between
        a merge and its :meth:`window` views; nodes satisfy the part
        protocol (:class:`~repro.streaming.release.StreamNode` does).
    window:
        Optional ``(lo, hi)`` epoch window; ``None`` means ``[0, T)``.
    """

    representation = "stream"

    def __init__(self, schema: Schema, sa_names, epochs: int, nodes, *, window=None):
        from repro.streaming.tree import dyadic_cover

        self._transform = HNTransform(schema, tuple(sa_names))
        self._sa_names = tuple(
            name for name in schema.names if name in self._transform.sa_names
        )
        self._epochs = int(epochs)
        if self._epochs < 0:
            raise StreamingError(f"invalid epoch count {self._epochs}")
        self._nodes = nodes
        if window is None:
            window = (0, self._epochs)
        lo, hi = int(window[0]), int(window[1])
        if not 0 <= lo <= hi <= self._epochs:
            raise StreamingError(
                f"window [{lo}, {hi}) outside the closed prefix "
                f"[0, {self._epochs})"
            )
        self._window = (lo, hi)
        self._cover = dyadic_cover(lo, hi)
        missing = [key for key in self._cover if key not in self._nodes]
        if missing:
            raise StreamingError(f"stream is missing tree nodes {missing}")
        super().__init__(schema, [self._nodes[key] for key in self._cover])

    # ------------------------------------------------------------------
    @property
    def sa_names(self) -> tuple[str, ...]:
        """The SA set shared by every node, in schema order."""
        return self._sa_names

    @property
    def transform(self) -> HNTransform:
        """The HN transform every node's coefficients live in."""
        return self._transform

    @property
    def epochs(self) -> int:
        """How many epochs of the stream are closed."""
        return self._epochs

    @property
    def window_bounds(self) -> tuple[int, int]:
        """The half-open epoch window this release answers over."""
        return self._window

    @property
    def cover(self) -> tuple[tuple[int, int], ...]:
        """The window's canonical dyadic cover, as ``(level, index)`` pairs."""
        return tuple(self._cover)

    @property
    def nodes_touched(self) -> int:
        """How many node releases a query on this window consults."""
        return len(self._cover)

    @property
    def num_nodes(self) -> int:
        """Total tree nodes in the stream's node table."""
        return len(self._nodes)

    @property
    def nodes(self) -> dict:
        """The ``(level, index) -> node`` table (treat as read-only)."""
        return self._nodes

    @property
    def nodes_loaded(self) -> int:
        """How many node payloads have been materialized so far."""
        return self.parts_loaded

    def _iter_members(self):
        """All tree nodes (the cover's parts are a subset)."""
        return iter(self._nodes.values())

    def node_result(self, level: int, index: int) -> PublishResult:
        """Tree node ``(level, index)``'s result (loads it if lazy).

        Parameters
        ----------
        level, index:
            The node's tree coordinates.
        """
        try:
            node = self._nodes[(int(level), int(index))]
        except KeyError:
            raise StreamingError(f"no tree node ({level}, {index})") from None
        return node.result()

    def window(self, lo: int, hi: int | None = None) -> "TimeTree":
        """A view answering only over epochs ``[lo, hi)``.

        The view shares the node table (and therefore every lazily
        loaded payload) with this release; building it costs the
        ``O(log T)`` cover computation only.

        Parameters
        ----------
        lo:
            First epoch of the window.
        hi:
            One past the last epoch; ``None`` means the newest closed
            epoch.

        Returns
        -------
        TimeTree
            The windowed view (``lo == hi`` gives an empty window that
            answers exact zeros with zero variance).
        """
        if hi is None:
            hi = self._epochs
        return type(self)(
            self._schema,
            self._sa_names,
            self._epochs,
            self._nodes,
            window=(lo, hi),
        )

    # ------------------------------------------------------------------
    def _route(self, lows: np.ndarray, highs: np.ndarray):
        """Yield every cover node with the unmodified boxes (no mask)."""
        for index in range(len(self._parts)):
            yield index, None, lows, highs

    def build_profile_caches(self, factory=None) -> CompositeProfileCaches:
        """A fresh profile-cache set for one consumer (e.g. an engine).

        All nodes share one transform, so the set holds a single
        per-axis cache; it is wrapped in the same
        :class:`CompositeProfileCaches` aggregate the union combinator
        uses, so serving-layer stats read hit/miss counters identically
        for both.

        Parameters
        ----------
        factory:
            Optional callable mapping the per-axis transform sequence to
            its cache; the serving layer passes a bounded LRU subclass.
            The default is the unbounded cache.
        """
        build = factory if factory is not None else AxisProfileCache
        return CompositeProfileCaches([build(self._transform.transforms)])

    def noise_variances_boxes(self, lows, highs, *, caches=None) -> np.ndarray:
        """Exact noise variance of each box's answer over the window.

        One profile product per query (all nodes share the transform)
        times ``2 · Σ_cover λ_eff²`` — needing no node payload, because
        the profiles depend only on the shared transform configuration
        and each node's effective λ is recorded in the manifest.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.
        caches:
            A :class:`CompositeProfileCaches` to memoize profiles in (an
            engine passes its own); defaults to the release's internal
            unbounded set.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` exact variances aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        if caches is None:
            caches = self._default_caches()
        factor = 2.0 * sum(
            self._nodes[key].noise_magnitude ** 2 for key in self._cover
        )
        if factor == 0.0:
            return np.zeros(lows.shape[0], dtype=np.float64)
        products = caches.caches[0].box_profile_products(lows, highs)
        return factor * products

    def to_matrix(self) -> FrequencyMatrix:
        """Materialize the window's ``M*`` by summing cover-node matrices.

        Loads (and densifies) every cover node — the thing the tree
        exists to avoid on the serving path — so the result is not
        cached.
        """
        values = np.zeros(self._schema.shape, dtype=np.float64)
        for key in self._cover:
            values += self._nodes[key].result().release.to_matrix().values
        return FrequencyMatrix(self._schema, values)

    def _converted(self, representation: str) -> "TimeTree":
        """Rebuild the merge with every node converted."""
        from repro.core.release import convert_result
        from repro.streaming.release import StreamNode

        converted = {
            key: StreamNode.from_result(
                key[0], key[1], convert_result(node.result(), representation)
            )
            for key, node in self._nodes.items()
        }
        return type(self)(
            self._schema,
            self._sa_names,
            self._epochs,
            converted,
            window=self._window,
        )

    def __repr__(self) -> str:
        lo, hi = self._window
        return (
            f"{type(self).__name__}(shape={self._schema.shape}, "
            f"epochs={self._epochs}, window=[{lo}, {hi}), "
            f"cover={len(self._cover)} nodes)"
        )
