"""Release representations: how a published result stores and serves data.

The paper's mechanisms add Laplace noise *in coefficient space*, and
Equation 3 shows any range-count answer needs only ``O(log m)``
coefficients per axis — yet the original pipeline always inverted the
transform into a dense ``M*`` and served queries from an ``O(m)``
prefix-sum oracle.  This module makes the representation pluggable:

* :class:`DenseRelease` — the materialized ``M*`` plus a lazily built
  prefix-sum oracle; today's semantics, best when the domain is small or
  the query volume is huge.
* :class:`CoefficientRelease` — the noisy HN coefficients plus the SA
  configuration, answering any box query by per-axis *sparse adjoint*
  gathers in ``O(prod_i log m_i)`` with no dense reconstruction ever.
  Publishing becomes O(coefficient count) with no inverse transform, and
  serving needs no ``O(m)`` oracle build — which is what makes 1-D
  domains of ``m = 2**24`` (or multi-dimensional domains whose volume
  makes a prefix array infeasible) practical.

Both implement the **answer-backend protocol** the query engine serves
through: ``schema``, :meth:`Release.answer_boxes`,
:meth:`Release.marginal`, and :meth:`Release.to_matrix`.  A third
backend, :class:`~repro.core.sharding.ShardedRelease`, lives in its own
module: disjoint horizontal shards published independently under DP
parallel composition, composed behind the same protocol.

How a coefficient release answers (Equation 3, batched)
-------------------------------------------------------
A range answer is ``r . R c`` with ``R`` the reconstruction map, so it
equals ``g . c`` for the range adjoint ``g = R^T r`` — and under the HN
transform ``g`` is an outer product of per-axis adjoints.  Each axis
exposes its adjoint *sparsely* (:meth:`~repro.transforms.base.
OneDimensionalTransform.sparse_adjoint_ranges`): ``O(log m)`` boundary
nodes for Haar, one tree pass for nominal.  Identity (``SA``) axes get a
better trick: the serving tensor is prefix-summed along them once, which
collapses an identity range's support from its width to the two entries
``P[hi] - P[lo]``.  A query then gathers the coefficient tensor at the
cross product of its per-axis supports and contracts with the outer
product of support values — ``prod_i k_i`` multiply-adds per query.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import QueryError, TransformError
from repro.transforms.base import IdentityTransform
from repro.transforms.multidim import HNTransform
from repro.utils.validation import ensure_boxes

__all__ = [
    "Release",
    "DenseRelease",
    "CoefficientRelease",
    "REPRESENTATIONS",
    "marginal_boxes",
    "infer_sa_names",
    "convert_result",
]

#: The representations mechanisms, archives, and CLIs can name.
REPRESENTATIONS = ("dense", "coefficients")

#: Cap on (queries per chunk) x (gathered entries per query) so batch
#: answering never allocates more than a few MB of scratch indices.
_CHUNK_BUDGET = 1 << 21


def marginal_boxes(schema, attribute_names):
    """The box batch whose answers form a marginal table.

    Each marginal cell is a box query — a point on the kept axes, the
    full range elsewhere — so any backend with a batch box path can
    serve marginals from one :meth:`Release.answer_boxes` call.  Shared
    by the coefficient and sharded backends and by the engine's
    marginal-std path.

    Parameters
    ----------
    schema:
        The released schema.
    attribute_names:
        Attributes to keep, in the desired output-axis order.

    Returns
    -------
    tuple[list[int], numpy.ndarray, numpy.ndarray]
        ``(kept_sizes, lows, highs)`` — reshape the box answers to
        ``kept_sizes`` to obtain the marginal table.
    """
    names = list(attribute_names)
    axes = schema.axes_of(names)
    if len(set(axes)) != len(axes):
        raise QueryError(f"duplicate attribute names: {names}")
    kept_sizes = [schema.shape[axis] for axis in axes]
    cells = int(np.prod(kept_sizes)) if kept_sizes else 1
    grid = np.indices(kept_sizes, dtype=np.int64).reshape(len(axes), cells)
    lows = np.zeros((cells, schema.dimensions), dtype=np.int64)
    highs = np.broadcast_to(
        np.asarray(schema.shape, dtype=np.int64), (cells, schema.dimensions)
    ).copy()
    for position, axis in enumerate(axes):
        lows[:, axis] = grid[position]
        highs[:, axis] = grid[position] + 1
    return kept_sizes, lows, highs


class Release:
    """Answer-backend protocol shared by every release representation."""

    #: Which representation this is (one of :data:`REPRESENTATIONS`).
    representation: str = "abstract"

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Batch box answers.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` private counts aligned with the rows.
        """
        raise NotImplementedError

    def answer_box(self, box) -> float:
        """Answer one ``box`` given as ``((lo, hi), ...)`` per dimension.

        Returns
        -------
        float
            The private count (a batch of one through
            :meth:`answer_boxes`).
        """
        box = tuple(box)
        lows = np.asarray([[lo for lo, _ in box]], dtype=np.int64)
        highs = np.asarray([[hi for _, hi in box]], dtype=np.int64)
        return float(self.answer_boxes(lows, highs)[0])

    def marginal(self, attribute_names) -> np.ndarray:
        """Marginal table over the attributes in ``attribute_names``.

        The default implementation answers the marginal as one
        :meth:`answer_boxes` batch (see :func:`marginal_boxes`), so any
        backend with a batch box path serves marginals for free;
        backends holding a dense matrix override with a direct sum.

        Parameters
        ----------
        attribute_names:
            Attributes to keep, in the desired output-axis order.

        Returns
        -------
        numpy.ndarray
            One axis per requested attribute (order of the request).
        """
        kept_sizes, lows, highs = marginal_boxes(self.schema, attribute_names)
        return self.answer_boxes(lows, highs).reshape(kept_sizes)

    def to_matrix(self) -> FrequencyMatrix:
        """The dense ``M*`` this release represents (may materialize)."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Bytes currently held by this release's serving state."""
        raise NotImplementedError

    def _check_boxes(self, lows, highs) -> tuple[np.ndarray, np.ndarray]:
        return ensure_boxes(lows, highs, self.schema.shape)


class DenseRelease(Release):
    """Today's representation: ``M*`` plus a lazily built prefix oracle.

    Parameters
    ----------
    matrix:
        The materialized noisy frequency matrix to serve from.
    """

    representation = "dense"

    def __init__(self, matrix: FrequencyMatrix):
        if not isinstance(matrix, FrequencyMatrix):
            raise QueryError("DenseRelease requires a FrequencyMatrix")
        self._matrix = matrix
        self._oracle = None

    @property
    def schema(self) -> Schema:
        return self._matrix.schema

    def oracle(self):
        """The prefix-sum oracle, built on first use (an ``O(m)`` step)."""
        if self._oracle is None:
            # Imported here: repro.queries imports repro.core at package
            # import time, so the reverse import must happen at call time.
            from repro.queries.oracle import RangeSumOracle

            self._oracle = RangeSumOracle(self._matrix)
        return self._oracle

    def answer_boxes(self, lows, highs) -> np.ndarray:
        # The oracle performs the same shape/bounds validation as
        # _check_boxes, so the batch is checked exactly once.
        answers = self.oracle().answer_boxes(lows, highs)
        # An empty box has exactly zero cells; force the float-exact 0.0
        # the inclusion-exclusion sum is not guaranteed to produce.
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        empty = np.any(lows == highs, axis=1)
        if empty.any():
            answers[empty] = 0.0
        return answers

    def marginal(self, attribute_names) -> np.ndarray:
        return self._matrix.marginal(attribute_names)

    def to_matrix(self) -> FrequencyMatrix:
        return self._matrix

    def nbytes(self) -> int:
        total = self._matrix.values.nbytes
        if self._oracle is not None:
            total += self._oracle.nbytes
        return total

    def __repr__(self) -> str:
        return f"DenseRelease(shape={self._matrix.shape})"


class CoefficientRelease(Release):
    """Noisy HN coefficients + SA configuration; never builds ``M*``.

    Parameters
    ----------
    schema:
        The released frequency matrix's schema.
    sa_names:
        The Privelet+ ``SA`` set the coefficients were produced under
        (``()`` for Privelet, all attribute names for Basic).
    coefficients:
        The *raw* noisy coefficient tensor, shaped like the HN
        transform's output.  Refinement (nominal mean subtraction) is
        applied implicitly through the adjoints at answer time, so the
        stored tensor is exactly what the mechanism drew noise onto.
    """

    representation = "coefficients"

    def __init__(self, schema: Schema, sa_names, coefficients):
        self._transform = HNTransform(schema, tuple(sa_names))
        # Ordered (schema-order) form of the SA set, for archives/repr.
        self._sa_names = tuple(
            name for name in schema.names if name in self._transform.sa_names
        )
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape != self._transform.output_shape:
            raise TransformError(
                f"expected coefficient shape {self._transform.output_shape}, "
                f"got {coefficients.shape}"
            )
        self._coefficients = coefficients
        self._served = None  # prefix-summed along identity axes, lazily

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: FrequencyMatrix, sa_names) -> "CoefficientRelease":
        """Forward-transform a dense ``M*`` into coefficient form.

        Sound because ``inverse(forward(x)) = x`` and the refinement is a
        no-op on exact forward coefficients (sibling groups of true
        nominal coefficients sum to zero), so the converted release
        answers every query identically to the dense one.
        """
        transform = HNTransform(matrix.schema, tuple(sa_names))
        return cls(matrix.schema, sa_names, transform.forward(matrix.values))

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._transform.schema

    @property
    def sa_names(self) -> tuple[str, ...]:
        """The SA set, in schema order."""
        return self._sa_names

    @property
    def transform(self) -> HNTransform:
        """The HN transform the coefficients live in."""
        return self._transform

    @property
    def coefficients(self) -> np.ndarray:
        """The raw noisy coefficient tensor (archive payload)."""
        return self._coefficients

    # ------------------------------------------------------------------
    def _serving_tensor(self) -> np.ndarray:
        """Coefficients prefix-summed along identity (SA) axes.

        The prefix pass turns an identity-axis range's adjoint support
        from its width into two entries, keeping the per-query gather at
        ``prod_i k_i`` with every ``k_i`` logarithmic or hierarchy-sized.
        When there are no SA axes this is the coefficient tensor itself
        (no copy).
        """
        if self._served is None:
            served = self._coefficients
            for axis, transform in enumerate(self._transform.transforms):
                if isinstance(transform, IdentityTransform):
                    served = np.cumsum(served, axis=axis)
                    pad = [(0, 0)] * served.ndim
                    pad[axis] = (1, 0)
                    served = np.pad(served, pad)
            self._served = served
        return self._served

    def _axis_supports(self, axis: int, lows, highs):
        """Sparse adjoint ``(indices, values)`` of one axis's ranges.

        Identity axes index the prefix-summed serving tensor, so their
        support is ``P[hi] - P[lo]``; wavelet axes use their transform's
        own sparse adjoint.
        """
        transform = self._transform.transforms[axis]
        if isinstance(transform, IdentityTransform):
            indices = np.stack([highs, lows], axis=1)
            values = np.broadcast_to(
                np.asarray([1.0, -1.0]), indices.shape
            )
            return indices, values
        return transform.sparse_adjoint_ranges(lows, highs)

    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Batch box answers by cross-product coefficient gathers.

        Per query the work is ``prod_i k_i`` gathered entries (``k_i``
        the axis-``i`` support width, ``O(log m_i)`` for Haar axes);
        the batch is chunked so scratch index arrays stay a few MB
        regardless of batch size.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` private counts aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        count = lows.shape[0]
        answers = np.empty(count, dtype=np.float64)
        if count == 0:
            return answers
        # An empty box's adjoint is the zero vector, but the gather can
        # leave ~1e-16 residue; pin it to the exact 0.0 the dense
        # backend returns so the representations agree bit-for-bit.
        empty = np.any(lows == highs, axis=1)
        served = self._serving_tensor()
        flat = served.reshape(-1)
        strides = np.asarray(
            [int(np.prod(served.shape[axis + 1 :])) for axis in range(served.ndim)],
            dtype=np.int64,
        )
        # Support widths are data-independent, so chunk size can be set
        # from one probe row.
        probe = [
            self._axis_supports(axis, lows[:1, axis], highs[:1, axis])[0].shape[1]
            for axis in range(served.ndim)
        ]
        per_query = int(np.prod(probe))
        chunk = max(1, _CHUNK_BUDGET // max(1, per_query))
        for start in range(0, count, chunk):
            stop = min(count, start + chunk)
            combined_idx = None
            combined_val = None
            for axis in range(served.ndim):
                indices, values = self._axis_supports(
                    axis, lows[start:stop, axis], highs[start:stop, axis]
                )
                scaled = indices * strides[axis]
                if combined_idx is None:
                    combined_idx, combined_val = scaled, values
                else:
                    rows = stop - start
                    combined_idx = (
                        combined_idx[:, :, None] + scaled[:, None, :]
                    ).reshape(rows, -1)
                    combined_val = (
                        combined_val[:, :, None] * values[:, None, :]
                    ).reshape(rows, -1)
            answers[start:stop] = np.einsum(
                "ij,ij->i", flat[combined_idx], combined_val
            )
        if empty.any():
            answers[empty] = 0.0
        return answers

    def to_matrix(self) -> FrequencyMatrix:
        """Materialize ``M*`` by inverting the transform (with refinement).

        This allocates the full dense matrix — the thing this
        representation exists to avoid — so the result is *not* cached;
        wrap it in a :class:`DenseRelease` if you intend to serve from it.
        """
        return FrequencyMatrix(
            self.schema, self._transform.inverse(self._coefficients, refine=True)
        )

    def nbytes(self) -> int:
        total = self._coefficients.nbytes
        if self._served is not None and self._served is not self._coefficients:
            total += self._served.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"CoefficientRelease(shape={self._transform.output_shape}, "
            f"SA={list(self._sa_names)})"
        )


def infer_sa_names(result) -> tuple[str, ...]:
    """The SA set a result was published under, from its metadata.

    Coefficient releases carry the set themselves; dense releases record
    it in ``details`` (Basic means every attribute is released direct).
    """
    release = result.release
    if isinstance(release, CoefficientRelease):
        return release.sa_names
    details = result.details
    if details.get("mechanism") == "Basic":
        return tuple(release.schema.names)
    if "sa" in details:
        return tuple(details["sa"])
    raise QueryError(
        "cannot infer the mechanism configuration from the result; "
        "pass sa_names explicitly"
    )


def convert_result(result, representation: str, *, sa_names=None):
    """Re-represent a :class:`~repro.core.framework.PublishResult`.

    ``dense -> coefficients`` forward-transforms ``M*`` (exact: the
    refinement is a no-op on true coefficients); ``coefficients ->
    dense`` materializes via the inverse transform.  Either direction
    preserves every answer, and the accounting fields are untouched.
    Returns ``result`` itself when it already has the requested
    representation.  ``sa_names`` overrides the inferred SA set for
    results whose metadata does not record one (mirroring
    :class:`~repro.queries.engine.QueryEngine`'s escape hatch).  A
    composed release (sharded or stream) converts part by part through
    its own ``convert`` hook (each part carries its own SA set, so
    ``sa_names`` is ignored) and keeps its routing structure.
    """
    if representation not in REPRESENTATIONS:
        raise QueryError(
            f"unknown representation {representation!r}; "
            f"expected one of {REPRESENTATIONS}"
        )
    release = result.release
    if release.representation == representation:
        return result
    converter = getattr(release, "convert", None)
    if converter is not None:
        converted = converter(representation)
        if converted is release:
            return result
        return dataclasses.replace(result, release=converted)
    if representation == "dense":
        converted = DenseRelease(release.to_matrix())
    else:
        if sa_names is None:
            sa_names = infer_sa_names(result)
        converted = CoefficientRelease.from_matrix(release.to_matrix(), sa_names)
    return dataclasses.replace(result, release=converted)
