"""Generalized sensitivity: closed forms and an empirical probe.

Definition 3 of the paper: for a set of functions ``F`` (here, the map
from a frequency matrix to one wavelet coefficient each) weighted by
``W``, the generalized sensitivity is the smallest ``rho`` with::

    sum_f W(f) |f(M) - f(M')|  <=  rho * ||M - M'||_1

for all matrices differing in one entry.  Because wavelet transforms are
linear, the supremum is attained by unit perturbations of single cells,
so ``rho`` is *computable*: perturb each cell by +1 and measure the
weighted L1 change of the coefficients.  :func:`empirical_generalized_
sensitivity` does exactly that; the test suite uses it to verify
Lemma 2 (Haar: ``1 + log2 m``), Lemma 4 (nominal: ``h``), and Theorem 2
(HN: ``prod P(A_i)``) as *equalities*, not just bounds.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.data.schema import Schema
from repro.transforms.multidim import HNTransform, weight_tensor

__all__ = [
    "empirical_generalized_sensitivity",
    "sensitivity_of_schema",
    "variance_factor_of_schema",
]


def empirical_generalized_sensitivity(
    transform: HNTransform,
    *,
    cells="all",
) -> float:
    """Measure Definition 3's ``rho`` for an HN transform by perturbation.

    Parameters
    ----------
    transform:
        The HN transform to probe.
    cells:
        ``"all"`` to probe every input cell (exact; cost is one forward
        transform per cell), or an iterable of coordinate tuples to probe
        a subset (still a valid lower bound; upper tightness needs all).

    Returns
    -------
    The maximum over probed cells of ``sum |Delta C| * W`` for a unit
    cell perturbation.  By linearity this equals the true generalized
    sensitivity when all cells are probed.
    """
    shape = transform.input_shape
    weights = weight_tensor(transform.weight_vectors())
    if cells == "all":
        cells = itertools.product(*(range(s) for s in shape))

    # Linearity: Delta C for perturbing cell x by +1 equals the transform
    # of the indicator of x, so we never need a base matrix.
    worst = 0.0
    zero = np.zeros(shape, dtype=np.float64)
    for coordinates in cells:
        zero[coordinates] = 1.0
        delta = transform.forward(zero)
        zero[coordinates] = 0.0
        worst = max(worst, float(np.abs(delta * weights).sum()))
    return worst


def sensitivity_of_schema(schema: Schema, sa_names=()) -> float:
    """Closed-form ``rho = prod_{A not in SA} P(A)`` (Theorem 2/Corollary 1)."""
    sa = frozenset(sa_names)
    return math.prod(
        attr.sensitivity_factor() for attr in schema if attr.name not in sa
    )


def variance_factor_of_schema(schema: Schema, sa_names=()) -> float:
    """Closed-form ``prod H(A)`` with ``|A|`` for SA axes (Corollary 1)."""
    sa = frozenset(sa_names)
    return math.prod(
        (attr.size if attr.name in sa else attr.variance_factor()) for attr in schema
    )
