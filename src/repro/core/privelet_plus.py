"""Privelet+ — the hybrid mechanism of paper §VI-D (Figure 5).

Privelet+ takes a subset ``SA`` of the attributes and skips the wavelet
transform on those dimensions: the frequency matrix is (conceptually)
split into sub-matrices along the ``SA`` dimensions and each sub-matrix
is processed with a ``(d - |SA|)``-dimensional HN transform.

Two implementations are provided and tested equivalent:

* the **vectorized** default: run the HN transform with the identity
  transform (unit weights) on the ``SA`` axes — a coefficient's noise
  magnitude, sensitivity contribution, and variance contribution are then
  exactly those of the paper's per-sub-matrix scheme, because the 1-D
  transforms act independently on each fiber;
* the **literal** Figure 5 algorithm (:meth:`PriveletPlusMechanism.
  publish_matrix_by_splitting`), which loops over sub-matrices.  It is
  kept as an executable specification / cross-check.

Accounting (Corollary 1): with ``lambda = (2/epsilon) * prod_{A not in
SA} P(A)`` the output is ε-DP, and every range-count answer has noise
variance at most ``2 lambda^2 * (prod_{A in SA} |A|) * prod_{A not in SA}
H(A)``.

``SA`` selection: §VI-D puts an attribute in ``SA`` when
``|A| <= P(A)^2 * H(A)`` — small domains are better off with Basic-style
direct noise.  :func:`select_sa` implements that rule (it chooses
{Age, Gender} for the paper's census data, as §VII-A reports).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.framework import PublishingMechanism, PublishResult
from repro.core.laplace import laplace_noise, laplace_variance, magnitude_for_epsilon
from repro.core.release import CoefficientRelease, DenseRelease
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.transforms.multidim import HNTransform, weight_tensor
from repro.utils.rng import as_generator

__all__ = ["PriveletPlusMechanism", "select_sa"]


def select_sa(schema: Schema) -> tuple[str, ...]:
    """Attributes for which direct release beats the wavelet transform.

    The §VI-D rule: ``A in SA`` iff ``|A| <= P(A)^2 * H(A)``; with that
    choice Privelet+'s bound (Equation 7) is never worse than either
    Privelet's or Basic's.
    """
    return tuple(attr.name for attr in schema if attr.favours_direct_release())


class PriveletPlusMechanism(PublishingMechanism):
    """Privelet+ with an explicit ``SA`` set (Figure 5).

    ``SA = ()`` gives plain Privelet; ``SA`` = all attributes gives
    Basic-equivalent noise (but prefer :class:`~repro.core.basic.
    BasicMechanism` for clarity).  ``sa_names="auto"`` applies
    :func:`select_sa` at publish time.
    """

    supports_coefficient_release = True

    def __init__(self, sa_names="auto"):
        if sa_names != "auto":
            sa_names = tuple(sa_names)
        self._sa_names = sa_names

    @property
    def name(self) -> str:
        if self._sa_names == "auto":
            return "Privelet+"
        if not self._sa_names:
            return "Privelet"
        return f"Privelet+(SA={{{', '.join(self._sa_names)}}})"

    # ------------------------------------------------------------------
    def sa_for(self, schema: Schema) -> tuple[str, ...]:
        """Resolve the ``SA`` set for ``schema``."""
        if self._sa_names == "auto":
            return select_sa(schema)
        for name in self._sa_names:
            schema.index_of(name)
        return tuple(self._sa_names)

    def _transform(self, schema: Schema) -> HNTransform:
        return HNTransform(schema, self.sa_for(schema))

    def noise_magnitude(self, schema: Schema, epsilon: float) -> float:
        """``lambda = (2/epsilon) * prod_{A not in SA} P(A)`` (Corollary 1)."""
        epsilon = self._check_epsilon(epsilon)
        rho = self._transform(schema).generalized_sensitivity()
        return magnitude_for_epsilon(epsilon, 2.0 * rho)

    # ------------------------------------------------------------------
    def publish_matrix(
        self,
        matrix: FrequencyMatrix,
        epsilon: float,
        *,
        seed=None,
        materialize: bool = True,
    ) -> PublishResult:
        """Publish with the vectorized HN pipeline.

        ``materialize=False`` stops after the noise step: the result
        carries a :class:`CoefficientRelease` holding exactly the noisy
        coefficients (same Laplace draws as the dense path under the same
        seed), and the inverse transform is never run.
        """
        epsilon = self._check_epsilon(epsilon)
        self._check_matrix(matrix)
        sa = self.sa_for(matrix.schema)
        transform = self._transform(matrix.schema)
        rho = transform.generalized_sensitivity()
        magnitude = magnitude_for_epsilon(epsilon, 2.0 * rho)

        coefficients = transform.forward(matrix.values)
        magnitudes = magnitude / weight_tensor(transform.weight_vectors())
        noisy = coefficients + laplace_noise(magnitudes, seed=seed)
        if materialize:
            reconstructed = transform.inverse(noisy, refine=True)
            release = DenseRelease(FrequencyMatrix(matrix.schema, reconstructed))
        else:
            release = CoefficientRelease(matrix.schema, sa, noisy)

        return PublishResult(
            release=release,
            epsilon=epsilon,
            noise_magnitude=magnitude,
            generalized_sensitivity=rho,
            variance_bound=self.variance_bound(matrix.schema, epsilon),
            details={
                "mechanism": self.name,
                "sa": sa,
                "coefficient_shape": transform.output_shape,
            },
        )

    def publish_matrix_by_splitting(
        self, matrix: FrequencyMatrix, epsilon: float, *, seed=None
    ) -> PublishResult:
        """The literal Figure 5 algorithm: loop over ``SA`` sub-matrices.

        Kept as an executable specification; the vectorized
        :meth:`publish_matrix` is distribution-identical (tests verify
        both determinize to the same output under zeroed noise, and that
        the per-coefficient noise magnitudes match).
        """
        epsilon = self._check_epsilon(epsilon)
        schema = matrix.schema
        sa = self.sa_for(schema)
        sa_axes = schema.axes_of(sa)
        other_attrs = [attr for attr in schema if attr.name not in sa]
        rng = as_generator(seed)

        if not other_attrs:
            # Degenerate case: everything in SA -> Basic's noise.
            magnitude = magnitude_for_epsilon(epsilon, 2.0)
            noisy = matrix.values + laplace_noise(magnitude, matrix.shape, seed=rng)
            return PublishResult(
                release=DenseRelease(FrequencyMatrix(schema, noisy)),
                epsilon=epsilon,
                noise_magnitude=magnitude,
                generalized_sensitivity=1.0,
                variance_bound=self.variance_bound(schema, epsilon),
                details={"mechanism": self.name, "sa": sa, "split": True},
            )

        sub_schema = Schema(other_attrs)
        sub_transform = HNTransform(sub_schema)
        rho = sub_transform.generalized_sensitivity()
        magnitude = magnitude_for_epsilon(epsilon, 2.0 * rho)
        magnitudes = magnitude / weight_tensor(sub_transform.weight_vectors())

        # Move SA axes to the front, loop over their coordinates.
        other_axes = tuple(i for i in range(schema.dimensions) if i not in sa_axes)
        reordered = np.moveaxis(matrix.values, sa_axes, range(len(sa_axes)))
        out = np.empty_like(reordered)
        sa_shape = tuple(schema.shape[a] for a in sa_axes)
        for sa_coordinates in itertools.product(*(range(s) for s in sa_shape)):
            sub = reordered[sa_coordinates]
            coefficients = sub_transform.forward(sub)
            noisy = coefficients + laplace_noise(magnitudes, seed=rng)
            out[sa_coordinates] = sub_transform.inverse(noisy, refine=True)
        restored = np.moveaxis(out, range(len(sa_axes)), sa_axes)

        return PublishResult(
            release=DenseRelease(FrequencyMatrix(schema, restored)),
            epsilon=epsilon,
            noise_magnitude=magnitude,
            generalized_sensitivity=rho,
            variance_bound=self.variance_bound(schema, epsilon),
            details={"mechanism": self.name, "sa": sa, "split": True},
        )

    # ------------------------------------------------------------------
    def variance_bound(self, matrix_schema: Schema, epsilon: float) -> float:
        """Equation 7: ``(8/eps^2) * prod_SA |A| * prod_rest P(A)^2 H(A)``."""
        epsilon = self._check_epsilon(epsilon)
        transform = self._transform(matrix_schema)
        magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.generalized_sensitivity())
        return laplace_variance(magnitude) * transform.variance_bound_factor()

    def __repr__(self) -> str:
        return f"PriveletPlusMechanism(sa={self._sa_names!r})"
