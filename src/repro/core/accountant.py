"""Privacy accounting for the mechanisms in this library.

Collects the ε ↔ λ arithmetic of Theorem 1 (unweighted) and Lemma 1
(weighted) in one queryable object, so experiments can report, for a
mechanism and schema, exactly which guarantee a given noise level buys.

The key identities:

* Basic:         ε = 2 / λ                        (sensitivity 2)
* Privelet(+):   ε = 2 ρ / λ,  ρ = Π_{A∉SA} P(A)  (Lemma 1 + Theorem 2)

and the utility side (worst-case per-query noise variance):

* Basic:         8 m / ε²
* Privelet(+):   2 λ² · (Π_{A∈SA} |A|) · Π_{A∉SA} H(A)   (Corollary 1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.laplace import laplace_variance
from repro.core.sensitivity import sensitivity_of_schema, variance_factor_of_schema
from repro.data.schema import Schema
from repro.errors import PrivacyError
from repro.utils.validation import ensure_positive

__all__ = ["PrivacyAccount"]


@dataclass(frozen=True)
class PrivacyAccount:
    """ε/λ/variance bookkeeping for one (schema, SA) configuration."""

    schema: Schema
    sa_names: tuple[str, ...] = ()

    def __post_init__(self):
        for name in self.sa_names:
            self.schema.index_of(name)
        if len(set(self.sa_names)) != len(self.sa_names):
            raise PrivacyError(f"duplicate names in SA: {self.sa_names}")

    # ------------------------------------------------------------------
    @property
    def generalized_sensitivity(self) -> float:
        """ρ = Π_{A∉SA} P(A); equals 1 when SA covers every attribute."""
        return sensitivity_of_schema(self.schema, self.sa_names)

    def lambda_for_epsilon(self, epsilon: float) -> float:
        """λ achieving ε-DP: ``λ = 2 ρ / ε`` (Lemma 1 with weights)."""
        epsilon = ensure_positive(epsilon, "epsilon")
        return 2.0 * self.generalized_sensitivity / epsilon

    def epsilon_for_lambda(self, magnitude: float) -> float:
        """ε bought by noise magnitude λ: ``ε = 2 ρ / λ``."""
        magnitude = ensure_positive(magnitude, "magnitude")
        return 2.0 * self.generalized_sensitivity / magnitude

    def variance_bound(self, epsilon: float) -> float:
        """Corollary 1's worst-case per-query noise variance at ε."""
        magnitude = self.lambda_for_epsilon(epsilon)
        return laplace_variance(magnitude) * variance_factor_of_schema(
            self.schema, self.sa_names
        )

    def per_coefficient_variance(self, epsilon: float, weight: float) -> float:
        """Noise variance of one coefficient with weight ``W(c)``."""
        weight = ensure_positive(weight, "weight")
        return laplace_variance(self.lambda_for_epsilon(epsilon) / weight)

    def summary(self, epsilon: float) -> dict:
        """A readable account of the guarantee at ``epsilon``."""
        return {
            "epsilon": float(epsilon),
            "sa": tuple(self.sa_names),
            "generalized_sensitivity": self.generalized_sensitivity,
            "lambda": self.lambda_for_epsilon(epsilon),
            "variance_bound": self.variance_bound(epsilon),
            "num_cells": self.schema.num_cells,
        }
