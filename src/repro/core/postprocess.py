"""Post-processing of published matrices (privacy-free improvements).

Differential privacy is closed under post-processing: any function of the
released output — here, the noisy frequency matrix ``M*`` — preserves the
ε guarantee because it consumes no further information about the input
table.  The paper leaves ``M*`` raw (entries can be negative and
fractional); this module adds the standard practical clean-ups:

* :func:`clamp_nonnegative` — zero out negative cells (counts are
  non-negative);
* :func:`round_to_integers` — integral counts;
* :func:`rescale_total` — rescale so the grand total matches a target
  (e.g. a separately-published noisy total), useful when downstream
  consumers require consistency with ``n``;
* :func:`sanitize` — the composition used by
  :meth:`PublishResultPostprocessor`-style pipelines.

Note these can only *reduce or preserve* privacy leakage but they change
the error profile: clamping biases sparse regions upward in total count
(it removes negative noise but keeps positive noise).  Tests quantify
both effects.
"""

from __future__ import annotations

import numpy as np

from repro.data.frequency import FrequencyMatrix
from repro.errors import PrivacyError

__all__ = ["clamp_nonnegative", "round_to_integers", "rescale_total", "sanitize"]


def clamp_nonnegative(matrix: FrequencyMatrix) -> FrequencyMatrix:
    """Replace negative cells with zero (returns a new matrix)."""
    return FrequencyMatrix(matrix.schema, np.maximum(matrix.values, 0.0))


def round_to_integers(matrix: FrequencyMatrix) -> FrequencyMatrix:
    """Round every cell to the nearest integer (returns a new matrix)."""
    return FrequencyMatrix(matrix.schema, np.rint(matrix.values))


def rescale_total(matrix: FrequencyMatrix, target_total: float) -> FrequencyMatrix:
    """Scale all cells so they sum to ``target_total``.

    Requires a strictly positive current total (rescaling a zero or
    negative total is ill-defined); clamp first if needed.
    """
    if target_total < 0:
        raise PrivacyError(f"target_total must be >= 0, got {target_total}")
    current = matrix.total
    if current <= 0:
        raise PrivacyError(
            f"cannot rescale a matrix with non-positive total {current}; "
            "apply clamp_nonnegative first"
        )
    return FrequencyMatrix(matrix.schema, matrix.values * (target_total / current))


def sanitize(
    matrix: FrequencyMatrix,
    *,
    nonnegative: bool = True,
    integral: bool = False,
    target_total: float | None = None,
) -> FrequencyMatrix:
    """Apply the selected clean-ups in a sensible order.

    Order: clamp -> rescale -> round.  Rounding last keeps the total as
    close to the target as integrality allows.
    """
    out = matrix
    if nonnegative:
        out = clamp_nonnegative(out)
    if target_total is not None:
        out = rescale_total(out, target_total)
    if integral:
        out = round_to_integers(out)
    return out
