"""Laplace noise primitives (paper §II-B).

A Laplace noise of *magnitude* ``lambda`` has density
``Pr[eta = x] = exp(-|x|/lambda) / (2 lambda)`` (Equation 1) and variance
``2 lambda^2``.  Privelet draws per-coefficient noise with magnitude
``lambda / W(c)``; this module provides scalar and tensor-shaped draws
plus the small analytic helpers tests use (density ratios, variance).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive

__all__ = [
    "laplace_noise",
    "laplace_variance",
    "laplace_log_density",
    "magnitude_for_epsilon",
    "epsilon_for_magnitude",
]


def laplace_noise(magnitude, shape=None, *, seed=None) -> np.ndarray:
    """Draw zero-mean Laplace noise.

    Parameters
    ----------
    magnitude:
        Scalar magnitude ``lambda``, or an array of per-entry magnitudes
        (e.g. ``lambda / W`` for a whole coefficient matrix).  All entries
        must be positive.
    shape:
        Output shape; defaults to ``magnitude``'s shape when ``magnitude``
        is an array.
    """
    magnitude = np.asarray(magnitude, dtype=np.float64)
    if np.any(magnitude <= 0) or not np.all(np.isfinite(magnitude)):
        raise PrivacyError("noise magnitudes must be positive and finite")
    if shape is None:
        shape = magnitude.shape
    rng = as_generator(seed)
    return rng.laplace(loc=0.0, scale=magnitude, size=shape)


def laplace_variance(magnitude: float) -> float:
    """Variance ``2 lambda^2`` of a Laplace with magnitude ``lambda``."""
    magnitude = ensure_positive(magnitude, "magnitude")
    return 2.0 * magnitude * magnitude


def laplace_log_density(x, magnitude: float):
    """Log of Equation 1's density; used by the analytic DP ratio tests."""
    magnitude = ensure_positive(magnitude, "magnitude")
    x = np.asarray(x, dtype=np.float64)
    return -np.abs(x) / magnitude - np.log(2.0 * magnitude)


def magnitude_for_epsilon(epsilon: float, sensitivity: float) -> float:
    """``lambda = sensitivity / epsilon`` (Theorem 1 / Lemma 1 rearranged).

    For the unweighted mechanism the sensitivity is 2 (one tuple change
    moves two frequency-matrix entries by one); for Privelet it is
    ``2 * rho`` with ``rho`` the generalized sensitivity.
    """
    epsilon = ensure_positive(epsilon, "epsilon")
    sensitivity = ensure_positive(sensitivity, "sensitivity")
    return sensitivity / epsilon


def epsilon_for_magnitude(magnitude: float, sensitivity: float) -> float:
    """Inverse of :func:`magnitude_for_epsilon`."""
    magnitude = ensure_positive(magnitude, "magnitude")
    sensitivity = ensure_positive(sensitivity, "sensitivity")
    return sensitivity / magnitude
