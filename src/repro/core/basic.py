"""Dwork et al.'s baseline mechanism ("Basic", paper §II-B).

Add independent Laplace noise with magnitude ``lambda = 2 / epsilon`` to
every entry of the frequency matrix.  Sensitivity is 2 because replacing
one tuple moves exactly two entries by one each (Theorem 1).  Each entry
carries noise variance ``8 / epsilon^2``; a range-count query covering
``k`` cells therefore has noise variance ``8k / epsilon^2`` — up to
``Theta(m)`` for large queries, which is the weakness Privelet attacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import PublishingMechanism, PublishResult
from repro.core.laplace import laplace_noise, laplace_variance, magnitude_for_epsilon
from repro.core.release import CoefficientRelease, DenseRelease
from repro.data.frequency import FrequencyMatrix

__all__ = ["BasicMechanism"]

#: Replacing one tuple changes two frequency-matrix entries by one each.
FREQUENCY_MATRIX_SENSITIVITY = 2.0


class BasicMechanism(PublishingMechanism):
    """Laplace-perturb every frequency-matrix cell (Dwork et al.)."""

    name = "Basic"
    supports_coefficient_release = True

    def publish_matrix(
        self,
        matrix: FrequencyMatrix,
        epsilon: float,
        *,
        seed=None,
        materialize: bool = True,
    ) -> PublishResult:
        epsilon = self._check_epsilon(epsilon)
        self._check_matrix(matrix)
        magnitude = magnitude_for_epsilon(epsilon, FREQUENCY_MATRIX_SENSITIVITY)
        noisy = matrix.values + laplace_noise(magnitude, matrix.shape, seed=seed)
        # Basic's "coefficients" are the cells themselves (identity
        # transform on every axis), so both representations store the
        # same array.  Basic has no wavelet structure to exploit: the
        # coefficient release's serving state is still O(m) (it prefix-
        # sums the identity axes on first answer, like the oracle would);
        # the switch exists for a uniform API, not to save memory here.
        if materialize:
            release = DenseRelease(FrequencyMatrix(matrix.schema, noisy))
        else:
            release = CoefficientRelease(matrix.schema, matrix.schema.names, noisy)
        return PublishResult(
            release=release,
            epsilon=epsilon,
            noise_magnitude=magnitude,
            generalized_sensitivity=1.0,
            variance_bound=self.variance_bound(matrix.schema, epsilon),
            details={"mechanism": self.name},
        )

    def variance_bound(self, matrix_schema, epsilon: float) -> float:
        """Worst case: a query covering all ``m`` cells -> ``8 m / eps^2``."""
        epsilon = self._check_epsilon(epsilon)
        per_cell = laplace_variance(FREQUENCY_MATRIX_SENSITIVITY / epsilon)
        return float(per_cell * np.prod(matrix_schema.shape, dtype=np.float64))
