"""One front door for every publishing shape: :func:`publish`.

The library grew four parallel entry points — 1-D ordinal and nominal
count vectors, horizontally sharded tables, and timestamped streams —
each with its own function and slightly different conventions.  Under
the composition algebra they are all the *same* operation: publish some
leaves, then combine them with :class:`~repro.core.compose.Partition`
(disjoint domain shards) and/or :class:`~repro.core.compose.TimeTree`
(dyadic epochs).  :func:`publish` exposes exactly that: the input's
shape plus ``shard_by``/``stream`` picks the composition, and every
path returns the standard
:class:`~repro.core.framework.PublishResult`.

The legacy entry points (:func:`~repro.core.privelet.
publish_ordinal_release`, :func:`~repro.core.privelet.
publish_nominal_release`, :func:`~repro.core.sharding.publish_sharded`,
:func:`~repro.streaming.release.stream_result`) remain as thin
deprecated aliases and draw identical noise under the same seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.basic import BasicMechanism
from repro.core.compose import Partition, _partition_axis, shard_schema
from repro.core.framework import PublishingMechanism, PublishResult
from repro.core.privelet import PriveletMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import _publish_sharded, shard_bounds
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import PrivacyError, StreamingError

__all__ = ["publish"]

#: String names :func:`publish` resolves to mechanism instances.
_MECHANISMS = ("basic", "privelet", "privelet+")


def _resolve_mechanism(mechanism, sa_names):
    """A :class:`PublishingMechanism` from a name or an instance."""
    if isinstance(mechanism, PublishingMechanism):
        return mechanism
    if not isinstance(mechanism, str):
        raise PrivacyError(
            f"mechanism must be one of {_MECHANISMS} or a "
            f"PublishingMechanism, got {type(mechanism).__name__}"
        )
    key = mechanism.lower()
    if key == "basic":
        return BasicMechanism()
    if key == "privelet":
        return PriveletMechanism()
    if key == "privelet+":
        return PriveletPlusMechanism(sa_names=sa_names)
    raise PrivacyError(
        f"unknown mechanism {mechanism!r}; expected one of {_MECHANISMS}"
    )


def _check_representation(representation) -> None:
    if representation not in (None, "dense", "coefficients"):
        raise PrivacyError(
            f"representation must be 'dense', 'coefficients', or None, "
            f"got {representation!r}"
        )


def _counts_matrix(data, hierarchy, name: str) -> FrequencyMatrix:
    """A 1-D frequency matrix from a raw count vector."""
    counts = np.asarray(data, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError(
            f"expected a Table, FrequencyMatrix, or 1-D count vector, "
            f"got a {counts.ndim}-D array"
        )
    if hierarchy is not None:
        attribute = NominalAttribute(name, hierarchy)
    else:
        attribute = OrdinalAttribute(name, len(counts))
    return FrequencyMatrix(Schema([attribute]), counts)


def _stream_config(stream, epoch_length: int):
    """Normalize the ``stream`` argument to (timestamps, epoch_length,
    explicit epoch count or None)."""
    epochs = None
    if isinstance(stream, dict):
        if "timestamps" not in stream:
            raise StreamingError("stream dict needs a 'timestamps' entry")
        epoch_length = int(stream.get("epoch_length", epoch_length))
        if "epochs" in stream:
            epochs = int(stream["epochs"])
        stream = stream["timestamps"]
    timestamps = np.asarray(stream, dtype=np.int64)
    if timestamps.ndim != 1:
        raise StreamingError("stream timestamps must be a 1-D array")
    if timestamps.size and timestamps.min() < 0:
        raise StreamingError("stream timestamps must be non-negative")
    return timestamps, epoch_length, epochs


def _closed_epochs(timestamps, epoch_length: int, epochs) -> int:
    """How many epochs to close so every row's epoch is published."""
    needed = (
        int(timestamps.max()) // epoch_length + 1 if timestamps.size else 0
    )
    if epochs is None:
        return needed
    if epochs < needed:
        raise StreamingError(
            f"stream asks for {epochs} epochs but the newest timestamp "
            f"needs {needed}"
        )
    return epochs


def _stream_seed(seed, shard: int):
    """An integer per-shard base seed (pure function of ``(seed, shard)``).

    :func:`~repro.core.sharding.shard_seeds` hands out
    ``SeedSequence`` objects, which :func:`~repro.streaming.publisher.
    epoch_seed` cannot nest as entropy — so sharded streams derive one
    integer per shard from the same ``(entropy, spawn_key)`` scheme and
    let each stream spawn its per-epoch sequences from it.
    """
    if seed is None:
        return None
    return int(
        np.random.SeedSequence(entropy=seed, spawn_key=(shard,)).generate_state(
            1, dtype=np.uint64
        )[0]
    )


def _publish_stream(
    table, mechanism, epsilon, *, timestamps, epoch_length, epochs, seed,
    materialize,
) -> PublishResult:
    """Publish one table as a closed stream of ``epochs`` epochs."""
    from repro.streaming.publisher import StreamingPublisher

    publisher = StreamingPublisher(
        table.schema,
        mechanism,
        epsilon,
        epoch_length=epoch_length,
        seed=seed,
        materialize=materialize,
    )
    if table.rows.shape[0]:
        publisher.ingest(table, timestamps=timestamps)
    for _ in range(epochs):
        publisher.advance_epoch()
    return publisher.result()


def publish(
    data,
    epsilon: float,
    *,
    mechanism="privelet+",
    representation: str | None = None,
    shard_by: str | None = None,
    stream=None,
    seed=None,
    shards: int = 4,
    bounds=None,
    hierarchy=None,
    name: str = "value",
    sa_names="auto",
    epoch_length: int = 1,
    parallel: bool = True,
) -> PublishResult:
    """Publish ``data`` under ε-differential privacy, composing as asked.

    One entry point for every release shape the library produces.  The
    composition is chosen by the keywords: ``shard_by`` partitions the
    domain (disjoint shards, each at full ε — DP parallel composition),
    ``stream`` buckets rows into dyadic-tree epochs, and giving both
    publishes one stream per shard and joins them with
    :class:`~repro.core.compose.Partition` — a nested composition that
    archives as a v5 manifest and serves like any other release.

    Parameters
    ----------
    data:
        A :class:`~repro.data.table.Table`, a
        :class:`~repro.data.frequency.FrequencyMatrix`, or a 1-D count
        vector (ordinal domain, or nominal when ``hierarchy`` is given).
    epsilon:
        The privacy budget.  Every shard and every epoch receives the
        full budget (parallel composition over disjoint data).
    mechanism:
        ``"privelet+"`` (default), ``"privelet"``, ``"basic"``, or any
        :class:`~repro.core.framework.PublishingMechanism` instance.
    representation:
        ``"dense"``, ``"coefficients"``, or ``None`` for each path's
        default — dense for tables and matrices, coefficients for count
        vectors and streams (the shapes whose domains are expected to
        be large).
    shard_by:
        Ordinal attribute to partition a table along (see
        :func:`~repro.core.sharding.publish_sharded` for the caveat on
        choosing cut points independently of the data).
    stream:
        Per-row timestamps (aligned with the table's rows), or a dict
        ``{"timestamps": ..., "epoch_length": ..., "epochs": ...}``;
        rows land in epoch ``t // epoch_length`` and every epoch up to
        the newest timestamp is closed.
    seed:
        Base seed.  Shard ``i`` and epoch ``e`` draw noise as pure
        functions of ``(seed, i)`` / ``(seed, e)``, matching the legacy
        entry points bit for bit under the same seed.
    shards:
        Number of balanced shards (ignored when ``bounds`` is given).
    bounds:
        Explicit ascending cut points for ``shard_by``.
    hierarchy:
        Nominal hierarchy for a 1-D count vector.
    name:
        Attribute name for a 1-D count vector's released schema.
    sa_names:
        Privelet+ SA configuration when ``mechanism`` is a string
        (default ``"auto"``).
    epoch_length:
        Timestamp units per epoch (``stream`` dicts may override).
    parallel:
        Publish static shards on a thread pool (matches
        :func:`~repro.core.sharding.publish_sharded`).

    Returns
    -------
    PublishResult
        The standard result; its release is a leaf, a
        :class:`~repro.core.compose.Partition`, a
        :class:`~repro.core.compose.TimeTree`, or a nesting of the two.
    """
    _check_representation(representation)
    mech = _resolve_mechanism(mechanism, sa_names)
    if hierarchy is not None and isinstance(data, (Table, FrequencyMatrix)):
        raise PrivacyError(
            "hierarchy applies only to 1-D count vectors; tables and "
            "matrices carry their hierarchies in their schema"
        )

    if stream is not None:
        if not isinstance(data, Table):
            raise StreamingError("stream publishing requires a Table input")
        timestamps, epoch_length, explicit = _stream_config(stream, epoch_length)
        if timestamps.shape[0] != data.rows.shape[0]:
            raise StreamingError(
                f"{timestamps.shape[0]} timestamps for "
                f"{data.rows.shape[0]} rows"
            )
        epochs = _closed_epochs(timestamps, epoch_length, explicit)
        materialize = representation == "dense"
        if shard_by is None:
            return _publish_stream(
                data,
                mech,
                epsilon,
                timestamps=timestamps,
                epoch_length=epoch_length,
                epochs=epochs,
                seed=seed,
                materialize=materialize,
            )
        schema = data.schema
        axis = _partition_axis(schema, shard_by)
        if bounds is None:
            bounds = shard_bounds(schema[axis].size, shards)
        results = []
        for index, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            mask = (data.rows[:, axis] >= lo) & (data.rows[:, axis] < hi)
            rows = data.rows[mask].copy()
            rows[:, axis] -= lo
            results.append(
                _publish_stream(
                    Table(shard_schema(schema, shard_by, lo, hi), rows),
                    mech,
                    epsilon,
                    timestamps=timestamps[mask],
                    epoch_length=epoch_length,
                    epochs=epochs,
                    seed=_stream_seed(seed, index),
                    materialize=materialize,
                )
            )
        release = Partition(schema, shard_by, bounds, results)
        return PublishResult(
            release=release,
            epsilon=float(results[0].epsilon),
            noise_magnitude=max(r.noise_magnitude for r in results),
            generalized_sensitivity=max(
                r.generalized_sensitivity for r in results
            ),
            variance_bound=sum(r.variance_bound for r in results),
            details={
                "mechanism": mech.name,
                "sharded": True,
                "shard_by": shard_by,
                "bounds": list(bounds),
                "shards": len(results),
                "stream": True,
                "epochs": epochs,
                "epoch_length": epoch_length,
            },
        )

    if shard_by is not None:
        if not isinstance(data, Table):
            raise PrivacyError("shard_by publishing requires a Table input")
        return _publish_sharded(
            data,
            mech,
            epsilon,
            shard_by=shard_by,
            shards=shards,
            bounds=bounds,
            seed=seed,
            materialize=representation != "coefficients",
            parallel=parallel,
        )

    if isinstance(data, Table):
        return mech.publish(
            data, epsilon, seed=seed,
            materialize=representation != "coefficients",
        )
    if isinstance(data, FrequencyMatrix):
        matrix = data
        materialize = representation != "coefficients"
    else:
        matrix = _counts_matrix(data, hierarchy, name)
        materialize = representation == "dense"
    if materialize:
        return mech.publish_matrix(matrix, epsilon, seed=seed)
    return mech.publish_matrix(matrix, epsilon, seed=seed, materialize=False)
