"""Sharded releases: disjoint horizontal partitions, each at full ε.

Privelet's guarantee is stated *per frequency matrix*: two tables
differing in one tuple produce matrices differing in one cell.  Split a
table into disjoint horizontal shards along one ordinal attribute and
the changed tuple lives in exactly one shard — so publishing every
shard with the full ε budget is still ε-differentially private overall
(DP **parallel composition**).  The paper's Laplace-in-coefficient-space
analysis then applies shard by shard unchanged: each shard is just a
smaller frequency matrix with its own HN transform, λ, and exact
variance profile.

That observation buys two scaling axes at once:

* **publish time** — shards share nothing (separate matrices, separate
  transforms, separate noise draws), so :func:`publish_sharded` runs
  them on a thread or process pool and the wall clock drops with cores;
* **serve time** — a :class:`ShardedRelease` keeps every shard in its
  own (coefficient-space, if asked) release, so even a partitioned
  domain far too large for one dense matrix stays matrix-free, and a
  box query touches only the shards its partition-axis range
  intersects.

Answers and uncertainties compose exactly: a query's answer is the sum
of the per-shard answers on the clipped boxes, and because each shard's
noise is drawn independently the exact variances **add**.  The
:class:`~repro.queries.engine.QueryEngine` batch/interval API therefore
works transparently on a sharded result.

The partition attribute must be ordinal: shards are contiguous coded
ranges ``[bounds[i], bounds[i+1])``, which is what makes range routing a
two-comparison clip per shard.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import AxisProfileCache
from repro.core.framework import PublishResult
from repro.core.release import Release, infer_sa_names
from repro.data.attributes import OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import SchemaError
from repro.transforms.multidim import HNTransform
from repro.utils.validation import ensure_positive_int

__all__ = [
    "shard_bounds",
    "shard_schema",
    "shard_seeds",
    "partition_table",
    "ShardSlot",
    "ShardProfileCaches",
    "ShardedRelease",
    "publish_sharded",
]


def shard_bounds(size: int, shards: int) -> tuple[int, ...]:
    """Balanced contiguous cut points splitting ``[0, size)`` into ``shards``.

    Parameters
    ----------
    size:
        The partition attribute's coded domain size.
    shards:
        How many contiguous intervals to cut the domain into; must not
        exceed ``size`` (every shard needs at least one coded value).

    Returns
    -------
    tuple[int, ...]
        ``shards + 1`` ascending cut points starting at 0 and ending at
        ``size``; shard ``i`` covers ``[bounds[i], bounds[i+1])`` and
        interval lengths differ by at most one.
    """
    size = ensure_positive_int(size, "size")
    shards = ensure_positive_int(shards, "shards")
    if shards > size:
        raise SchemaError(
            f"cannot cut a domain of size {size} into {shards} non-empty shards"
        )
    return tuple(int(round(i * size / shards)) for i in range(shards + 1))


def _partition_axis(schema: Schema, attribute: str) -> int:
    """The partition attribute's axis, validated ordinal."""
    axis = schema.index_of(attribute)
    if not schema[axis].is_ordinal:
        raise SchemaError(
            f"can only shard along an ordinal attribute; {attribute!r} is nominal"
        )
    return axis


def _check_bounds(bounds, size: int) -> tuple[int, ...]:
    """Validate ascending cut points covering exactly ``[0, size)``."""
    bounds = tuple(int(b) for b in bounds)
    if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != size:
        raise SchemaError(
            f"shard bounds must run from 0 to {size}, got {bounds}"
        )
    if any(lo >= hi for lo, hi in zip(bounds, bounds[1:])):
        raise SchemaError(f"shard bounds must be strictly increasing, got {bounds}")
    return bounds


def shard_schema(schema: Schema, attribute: str, lo: int, hi: int) -> Schema:
    """The schema of one shard: ``attribute`` restricted to ``[lo, hi)``.

    Every other attribute is carried over unchanged; the partition
    attribute becomes an ordinal of size ``hi - lo`` (coded values are
    shifted down by ``lo`` inside the shard).

    Parameters
    ----------
    schema:
        The global (unsharded) schema.
    attribute:
        The ordinal attribute the table is partitioned along.
    lo, hi:
        The shard's half-open interval on that attribute's coded domain.

    Returns
    -------
    Schema
        The shard's restricted schema.
    """
    axis = _partition_axis(schema, attribute)
    if not 0 <= lo < hi <= schema[axis].size:
        raise SchemaError(
            f"shard interval [{lo}, {hi}) out of range for {attribute!r} "
            f"of size {schema[axis].size}"
        )
    labels = schema[axis].labels
    attributes = list(schema.attributes)
    attributes[axis] = OrdinalAttribute(
        attribute, hi - lo, labels[lo:hi] if labels is not None else None
    )
    return Schema(attributes)


def shard_seeds(seed, shards: int) -> list:
    """Independent, reproducible per-shard seeds derived from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (every shard draws fresh entropy) or an integer; the
        per-shard streams are spawned from one
        :class:`numpy.random.SeedSequence`, so shard ``i``'s noise is a
        pure function of ``(seed, i)`` — republishing shard 2 alone
        reproduces exactly the noise it drew inside the sharded publish.
    shards:
        How many per-shard seeds to derive.

    Returns
    -------
    list
        One seed per shard, each acceptable anywhere the library takes
        a ``seed``.
    """
    shards = ensure_positive_int(shards, "shards")
    if seed is None:
        return [None] * shards
    return [
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
        for index in range(shards)
    ]


def partition_table(table: Table, attribute: str, bounds) -> list[Table]:
    """Split ``table`` into disjoint shards along one ordinal ``attribute``.

    Shard ``i`` keeps exactly the rows whose ``attribute`` value lies in
    ``[bounds[i], bounds[i+1])``, re-coded onto the shard's restricted
    schema (values shifted down by ``bounds[i]``).  The shards are
    disjoint and cover the table, which is the hypothesis of DP parallel
    composition.

    Parameters
    ----------
    table:
        The table to partition.
    attribute:
        An ordinal attribute of the table's schema.
    bounds:
        Ascending cut points from 0 to the attribute's domain size
        (:func:`shard_bounds` builds balanced ones).

    Returns
    -------
    list[Table]
        One table per shard, over :func:`shard_schema` schemas.
    """
    schema = table.schema
    axis = _partition_axis(schema, attribute)
    bounds = _check_bounds(bounds, schema[axis].size)
    column = table.rows[:, axis]
    shards = []
    for lo, hi in zip(bounds, bounds[1:]):
        rows = table.rows[(column >= lo) & (column < hi)].copy()
        rows[:, axis] -= lo
        shards.append(Table(shard_schema(schema, attribute, lo, hi), rows))
    return shards


@dataclass(frozen=True)
class ShardSlot:
    """One deferred shard: mechanism configuration now, payload on touch.

    The configuration (``sa_names`` and ``noise_magnitude``) is all a
    :class:`ShardedRelease` needs for query routing and exact variances,
    so a v3 archive can register and profile queries without mapping any
    shard payload; ``load`` is invoked (once, thread-safely) by the
    first query that actually routes to the shard.
    """

    #: The shard's Privelet+ ``SA`` set (over its restricted schema).
    sa_names: tuple
    #: The shard's Laplace parameter λ.
    noise_magnitude: float
    #: Zero-argument callable returning the shard's
    #: :class:`~repro.core.framework.PublishResult`.
    load: object
    #: The payload's representation when known without loading
    #: (``"dense"``/``"coefficients"``); lets representation-converting
    #: callers skip no-op conversions without touching the payload.
    representation: str | None = None


class _Shard:
    """Runtime state of one shard inside a :class:`ShardedRelease`."""

    def __init__(
        self, schema: Schema, sa_names, noise_magnitude: float, loader,
        representation: str | None = None,
    ):
        self.schema = schema
        self.sa_names = tuple(sa_names)
        self.noise_magnitude = float(noise_magnitude)
        self.representation = representation
        self.transform = HNTransform(schema, self.sa_names)
        self._loader = loader
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @property
    def loaded(self) -> bool:
        return self._result is not None

    def result(self) -> PublishResult:
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = self._loader()
        return self._result


class ShardProfileCaches:
    """Per-shard profile caches plus aggregate hit/miss counters.

    Built by :meth:`ShardedRelease.build_profile_caches`; each engine
    serving a sharded release owns one of these, so a server's bounded
    cache policy applies to *its* traffic regardless of how the release
    was used before registration.  Serving-layer stats read ``hits``/
    ``misses``/``evictions`` off an engine's profile cache; here those
    counters live in one cache per shard, summed on access.
    """

    def __init__(self, caches):
        self.caches = list(caches)

    @property
    def hits(self) -> int:
        """Distinct-range lookups served from any shard's cache."""
        return sum(cache.hits for cache in self.caches)

    @property
    def misses(self) -> int:
        """Distinct-range lookups that had to call a transform."""
        return sum(cache.misses for cache in self.caches)

    @property
    def evictions(self) -> int:
        """LRU evictions across shards (0 for unbounded caches)."""
        return sum(getattr(cache, "evictions", 0) for cache in self.caches)

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ShardedRelease(Release):
    """Disjoint per-shard releases behind one answer backend.

    Implements the full :class:`~repro.core.release.Release` protocol —
    ``schema``, :meth:`answer_boxes`, ``marginal``, :meth:`to_matrix` —
    plus :meth:`noise_variances_boxes`, the exact-uncertainty hook the
    query engine uses because a sharded release has no single transform
    or λ.  A box query is clipped against each shard's partition-axis
    interval; only intersecting shards are touched (and therefore
    loaded, for archive-backed shards), their clipped answers summed.
    Independent per-shard noise means the exact variances sum the same
    way.

    Parameters
    ----------
    schema:
        The global (unsharded) schema queries are posed against.
    attribute:
        The ordinal attribute the table was partitioned along.
    bounds:
        The ascending cut points the shards cover (``len(shards) + 1``
        values from 0 to the attribute's domain size).
    shards:
        One entry per shard, aligned with ``bounds`` intervals: either a
        :class:`~repro.core.framework.PublishResult` (in-memory shard)
        or a :class:`ShardSlot` (lazy archive-backed shard).
    """

    representation = "sharded"

    def __init__(self, schema: Schema, attribute: str, bounds, shards):
        self._schema = schema
        self._attribute = str(attribute)
        self._axis = _partition_axis(schema, self._attribute)
        self._bounds = _check_bounds(bounds, schema[self._axis].size)
        shards = list(shards)
        if len(shards) != len(self._bounds) - 1:
            raise SchemaError(
                f"expected {len(self._bounds) - 1} shards for bounds "
                f"{self._bounds}, got {len(shards)}"
            )
        self._shards: list[_Shard] = []
        for index, entry in enumerate(shards):
            lo, hi = self._bounds[index], self._bounds[index + 1]
            sub_schema = shard_schema(schema, self._attribute, lo, hi)
            if isinstance(entry, PublishResult):
                if entry.release.schema.shape != sub_schema.shape:
                    raise SchemaError(
                        f"shard {index} has shape {entry.release.schema.shape}, "
                        f"expected {sub_schema.shape} for interval [{lo}, {hi})"
                    )
                shard = _Shard(
                    entry.release.schema,
                    infer_sa_names(entry),
                    entry.noise_magnitude,
                    lambda result=entry: result,
                    entry.representation,
                )
                shard._result = entry
            elif isinstance(entry, ShardSlot):
                shard = _Shard(
                    sub_schema,
                    entry.sa_names,
                    entry.noise_magnitude,
                    entry.load,
                    entry.representation,
                )
            else:
                raise SchemaError(
                    f"shard {index} must be a PublishResult or ShardSlot, "
                    f"got {type(entry).__name__}"
                )
            self._shards.append(shard)
        self._caches = None
        self._caches_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def attribute(self) -> str:
        """The partition attribute's name."""
        return self._attribute

    @property
    def bounds(self) -> tuple[int, ...]:
        """The partition cut points (``num_shards + 1`` values)."""
        return self._bounds

    @property
    def num_shards(self) -> int:
        """How many shards this release is split into."""
        return len(self._shards)

    @property
    def shards_loaded(self) -> int:
        """How many shard payloads have been materialized so far."""
        return sum(shard.loaded for shard in self._shards)

    def shard_result(self, index: int) -> PublishResult:
        """Shard ``index``'s full result (loads an archive-backed shard).

        Parameters
        ----------
        index:
            Shard position, aligned with the ``bounds`` intervals.

        Returns
        -------
        PublishResult
            The shard's own published result (its ε equals the sharded
            release's ε — parallel composition, not splitting).
        """
        return self._shards[index].result()

    # ------------------------------------------------------------------
    def _route(self, lows: np.ndarray, highs: np.ndarray):
        """Yield ``(shard, mask, clipped_lows, clipped_highs)`` per shard.

        ``mask`` selects the queries whose partition-axis range
        intersects the shard's interval *and* whose box is non-empty;
        the clipped bounds are re-coded onto the shard's local domain.
        """
        nonempty = ~np.any(lows == highs, axis=1)
        axis = self._axis
        for index, shard in enumerate(self._shards):
            lo_b, hi_b = self._bounds[index], self._bounds[index + 1]
            clip_lo = np.maximum(lows[:, axis], lo_b)
            clip_hi = np.minimum(highs[:, axis], hi_b)
            mask = nonempty & (clip_lo < clip_hi)
            if not mask.any():
                continue
            sub_lows = lows[mask].copy()
            sub_highs = highs[mask].copy()
            sub_lows[:, axis] = clip_lo[mask] - lo_b
            sub_highs[:, axis] = clip_hi[mask] - lo_b
            yield shard, index, mask, sub_lows, sub_highs

    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Batch box answers: clipped per-shard answers, summed.

        Only the shards a query's partition-axis range intersects are
        consulted (lazy shards load on their first routed query);
        degenerate boxes (``lo == hi`` on any axis) short-circuit to an
        exact ``0.0`` without touching any shard.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` private counts aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        answers = np.zeros(lows.shape[0], dtype=np.float64)
        for shard, _, mask, sub_lows, sub_highs in self._route(lows, highs):
            answers[mask] += shard.result().release.answer_boxes(sub_lows, sub_highs)
        return answers

    def build_profile_caches(self, factory=None) -> ShardProfileCaches:
        """Fresh per-shard profile caches for one consumer (e.g. engine).

        Each :class:`~repro.queries.engine.QueryEngine` serving this
        release builds its own set, so a server's bounded cache policy
        (and its hit/miss accounting) covers exactly that engine's
        traffic — a release queried directly beforehand, or served by
        two servers, cannot bypass either bound.

        Parameters
        ----------
        factory:
            Optional callable mapping a shard's per-axis transform
            sequence to its :class:`~repro.analysis.exact.
            AxisProfileCache`; the serving layer passes a bounded LRU
            subclass.  The default is the unbounded cache.

        Returns
        -------
        ShardProfileCaches
            One cache per shard, with aggregate counters.
        """
        build = factory if factory is not None else AxisProfileCache
        return ShardProfileCaches(
            build(shard.transform.transforms) for shard in self._shards
        )

    def _default_caches(self) -> ShardProfileCaches:
        """The release's own (unbounded) caches for direct variance calls."""
        if self._caches is None:
            with self._caches_lock:
                if self._caches is None:
                    self._caches = self.build_profile_caches()
        return self._caches

    def noise_variances_boxes(self, lows, highs, *, caches=None) -> np.ndarray:
        """Exact noise variance of each box's answer, summed over shards.

        Each routed shard contributes ``2 λ_i² · ∏ profile`` on the
        clipped box (through a memoized profile cache); shards a query
        does not touch contribute nothing — independent noise means the
        variances of the summed answer simply add.  Needs no shard
        payload: the profiles depend only on each shard's transform
        configuration.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.
        caches:
            A :class:`ShardProfileCaches` to memoize profiles in (an
            engine passes its own); defaults to the release's internal
            unbounded set.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` exact variances aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        if caches is None:
            caches = self._default_caches()
        variances = np.zeros(lows.shape[0], dtype=np.float64)
        for shard, index, mask, sub_lows, sub_highs in self._route(lows, highs):
            products = caches.caches[index].box_profile_products(
                sub_lows, sub_highs
            )
            variances[mask] += 2.0 * shard.noise_magnitude**2 * products
        return variances

    def to_matrix(self) -> FrequencyMatrix:
        """Materialize the global ``M*`` by concatenating shard matrices.

        Loads (and densifies) every shard — the thing sharding exists to
        avoid on the serving path — so, like
        :meth:`~repro.core.release.CoefficientRelease.to_matrix`, the
        result is not cached.
        """
        values = np.zeros(self._schema.shape, dtype=np.float64)
        selector: list = [slice(None)] * len(self._schema.shape)
        for index, shard in enumerate(self._shards):
            selector[self._axis] = slice(self._bounds[index], self._bounds[index + 1])
            values[tuple(selector)] = shard.result().release.to_matrix().values
        return FrequencyMatrix(self._schema, values)

    def nbytes(self) -> int:
        """Bytes held by the *loaded* shards' serving state."""
        return sum(
            shard.result().release.nbytes() for shard in self._shards if shard.loaded
        )

    def convert(self, representation: str) -> "ShardedRelease":
        """Re-represent every shard (``dense``/``coefficients``).

        When every shard is already known (without loading) to carry
        ``representation``, this returns ``self`` — so a server's
        representation override on an archive stored that way keeps its
        shard-laziness.  Otherwise all shards load and convert; routing
        metadata is preserved either way.  Used by
        :func:`repro.core.release.convert_result` so servers configured
        with a representation override serve sharded archives too.

        Parameters
        ----------
        representation:
            The target per-shard representation.

        Returns
        -------
        ShardedRelease
            ``self`` when already uniform, else a new release whose
            shards all carry ``representation``.
        """
        from repro.core.release import convert_result

        if all(shard.representation == representation for shard in self._shards):
            return self
        converted = [
            convert_result(self.shard_result(index), representation)
            for index in range(self.num_shards)
        ]
        return ShardedRelease(self._schema, self._attribute, self._bounds, converted)

    def __repr__(self) -> str:
        return (
            f"ShardedRelease(shape={self._schema.shape}, "
            f"by={self._attribute!r}, shards={self.num_shards}, "
            f"loaded={self.shards_loaded})"
        )


def _publish_shard(mechanism, table, epsilon, seed, materialize):
    """Publish one shard (module-level so process pools can pickle it)."""
    return mechanism.publish(table, epsilon, seed=seed, materialize=materialize)


def publish_sharded(
    table: Table,
    mechanism,
    epsilon: float,
    *,
    shard_by: str,
    shards: int = 4,
    bounds=None,
    seed=None,
    materialize: bool = True,
    parallel: bool = True,
    max_workers: int | None = None,
    use_processes: bool = False,
) -> PublishResult:
    """Partition, publish every shard at full ε, and wrap the results.

    Each shard is a disjoint horizontal slice of ``table`` (see
    :func:`partition_table`), so by DP parallel composition the combined
    release is ε-differentially private even though every shard spends
    the whole budget.  Shards share nothing — per-shard transforms,
    noise draws, and (optionally skipped) inversions run concurrently on
    a pool.

    Parameters
    ----------
    table:
        The table to publish.
    mechanism:
        Any :class:`~repro.core.framework.PublishingMechanism` (it is
        applied per shard; ``sa_names="auto"`` re-selects per shard
        schema).
    epsilon:
        The privacy budget — each shard gets all of it.
    shard_by:
        The ordinal attribute to partition along.
    shards:
        Number of balanced shards (ignored when ``bounds`` is given).
    bounds:
        Explicit ascending cut points; defaults to :func:`shard_bounds`
        of the attribute's domain.  **Must be chosen independently of
        the table's contents**: parallel composition covers any *fixed*
        disjoint partition, but cut points tuned to the private data
        (e.g. eyeballing the attribute's histogram to balance shards)
        make the partition itself leak, voiding the ε guarantee.  Use
        the uniform default, public knowledge, or a separately budgeted
        DP quantile estimate.
    seed:
        Base seed; per-shard seeds come from :func:`shard_seeds`, so the
        draw in shard ``i`` is a pure function of ``(seed, i)``.
    materialize:
        Per-shard representation: ``False`` keeps every shard in
        coefficient space (never inverts, never densifies).
    parallel:
        ``False`` publishes shards sequentially on the calling thread
        (the benchmark's baseline).
    max_workers:
        Pool size; defaults to ``min(num_shards, cpu_count)``.
    use_processes:
        Use a process pool instead of threads (worth it only when
        per-shard work dwarfs the pickling of its table).

    Returns
    -------
    PublishResult
        Carries a :class:`ShardedRelease`; ``noise_magnitude`` and
        ``generalized_sensitivity`` are the per-shard maxima,
        ``variance_bound`` the per-shard sum (a query may span every
        shard), and ``details`` records the partition.
    """
    schema = table.schema
    axis = _partition_axis(schema, shard_by)
    if bounds is None:
        bounds = shard_bounds(schema[axis].size, shards)
    else:
        bounds = _check_bounds(bounds, schema[axis].size)
    tables = partition_table(table, shard_by, bounds)
    seeds = shard_seeds(seed, len(tables))
    jobs = [
        (mechanism, shard_table, epsilon, shard_seed, materialize)
        for shard_table, shard_seed in zip(tables, seeds)
    ]
    if parallel and len(jobs) > 1:
        workers = max_workers or min(len(jobs), os.cpu_count() or 1)
        pool_type = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
        with pool_type(max_workers=workers) as pool:
            results = list(pool.map(_publish_shard, *zip(*jobs)))
    else:
        results = [_publish_shard(*job) for job in jobs]
    release = ShardedRelease(schema, shard_by, bounds, results)
    return PublishResult(
        release=release,
        epsilon=float(results[0].epsilon),
        noise_magnitude=max(result.noise_magnitude for result in results),
        generalized_sensitivity=max(
            result.generalized_sensitivity for result in results
        ),
        variance_bound=sum(result.variance_bound for result in results),
        details={
            "mechanism": mechanism.name,
            "sharded": True,
            "shard_by": shard_by,
            "bounds": list(bounds),
            "shards": len(results),
        },
    )
