"""Sharded releases: disjoint horizontal partitions, each at full ε.

Privelet's guarantee is stated *per frequency matrix*: two tables
differing in one tuple produce matrices differing in one cell.  Split a
table into disjoint horizontal shards along one ordinal attribute and
the changed tuple lives in exactly one shard — so publishing every
shard with the full ε budget is still ε-differentially private overall
(DP **parallel composition**).  The paper's Laplace-in-coefficient-space
analysis then applies shard by shard unchanged: each shard is just a
smaller frequency matrix with its own HN transform, λ, and exact
variance profile.

That observation buys two scaling axes at once:

* **publish time** — shards share nothing (separate matrices, separate
  transforms, separate noise draws), so :func:`publish_sharded` runs
  them on a thread or process pool and the wall clock drops with cores;
* **serve time** — a :class:`ShardedRelease` keeps every shard in its
  own (coefficient-space, if asked) release, so even a partitioned
  domain far too large for one dense matrix stays matrix-free, and a
  box query touches only the shards its partition-axis range
  intersects.

Since the composition-algebra refactor, all routing and accounting live
in :class:`~repro.core.compose.Partition` — the parallel-composition
combinator of :mod:`repro.core.compose` — and :class:`ShardedRelease`
is a thin constructor over it.  This module keeps the partitioning
utilities (:func:`shard_bounds`, :func:`partition_table`,
:func:`shard_seeds`) and the parallel publisher
(:func:`publish_sharded`), plus back-compat re-exports of the names
that moved into the algebra (:class:`ShardSlot`, :func:`shard_schema`,
:class:`ShardProfileCaches`).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.core.compose import (
    CompositeProfileCaches,
    Partition,
    ShardSlot,
    _check_bounds,
    _partition_axis,
    shard_schema,
)
from repro.core.framework import PublishResult
from repro.data.table import Table
from repro.errors import SchemaError
from repro.utils.validation import ensure_positive_int

__all__ = [
    "shard_bounds",
    "shard_schema",
    "shard_seeds",
    "partition_table",
    "ShardSlot",
    "ShardProfileCaches",
    "ShardedRelease",
    "publish_sharded",
]


def shard_bounds(size: int, shards: int) -> tuple[int, ...]:
    """Balanced contiguous cut points splitting ``[0, size)`` into ``shards``.

    Parameters
    ----------
    size:
        The partition attribute's coded domain size.
    shards:
        How many contiguous intervals to cut the domain into; must not
        exceed ``size`` (every shard needs at least one coded value).

    Returns
    -------
    tuple[int, ...]
        ``shards + 1`` ascending cut points starting at 0 and ending at
        ``size``; shard ``i`` covers ``[bounds[i], bounds[i+1])`` and
        interval lengths differ by at most one.
    """
    size = ensure_positive_int(size, "size")
    shards = ensure_positive_int(shards, "shards")
    if shards > size:
        raise SchemaError(
            f"cannot cut a domain of size {size} into {shards} non-empty shards"
        )
    return tuple(int(round(i * size / shards)) for i in range(shards + 1))


def shard_seeds(seed, shards: int) -> list:
    """Independent, reproducible per-shard seeds derived from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (every shard draws fresh entropy) or an integer; the
        per-shard streams are spawned from one
        :class:`numpy.random.SeedSequence`, so shard ``i``'s noise is a
        pure function of ``(seed, i)`` — republishing shard 2 alone
        reproduces exactly the noise it drew inside the sharded publish.
    shards:
        How many per-shard seeds to derive.

    Returns
    -------
    list
        One seed per shard, each acceptable anywhere the library takes
        a ``seed``.
    """
    shards = ensure_positive_int(shards, "shards")
    if seed is None:
        return [None] * shards
    return [
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
        for index in range(shards)
    ]


def partition_table(table: Table, attribute: str, bounds) -> list[Table]:
    """Split ``table`` into disjoint shards along one ordinal ``attribute``.

    Shard ``i`` keeps exactly the rows whose ``attribute`` value lies in
    ``[bounds[i], bounds[i+1])``, re-coded onto the shard's restricted
    schema (values shifted down by ``bounds[i]``).  The shards are
    disjoint and cover the table, which is the hypothesis of DP parallel
    composition.

    Parameters
    ----------
    table:
        The table to partition.
    attribute:
        An ordinal attribute of the table's schema.
    bounds:
        Ascending cut points from 0 to the attribute's domain size
        (:func:`shard_bounds` builds balanced ones).

    Returns
    -------
    list[Table]
        One table per shard, over :func:`shard_schema` schemas.
    """
    schema = table.schema
    axis = _partition_axis(schema, attribute)
    bounds = _check_bounds(bounds, schema[axis].size)
    column = table.rows[:, axis]
    shards = []
    for lo, hi in zip(bounds, bounds[1:]):
        rows = table.rows[(column >= lo) & (column < hi)].copy()
        rows[:, axis] -= lo
        shards.append(Table(shard_schema(schema, attribute, lo, hi), rows))
    return shards


class ShardProfileCaches(CompositeProfileCaches):
    """Back-compat name for :class:`~repro.core.compose.CompositeProfileCaches`.

    Pre-algebra code built per-shard profile-cache aggregates under this
    name; the algebra generalized it to arbitrary composed parts
    (including nested composites).  The class is unchanged — only the
    canonical name moved: construct it from the per-shard ``caches``
    list exactly as before.
    """


class ShardedRelease(Partition):
    """Disjoint per-shard releases behind one answer backend.

    A thin constructor over the algebra's
    :class:`~repro.core.compose.Partition` combinator, kept for its
    established name and accessors (``num_shards``, ``shards_loaded``,
    ``shard_result``).  All routing, answer accumulation, and exact
    variance math are inherited: a box query is clipped against each
    shard's partition-axis interval; only intersecting shards are
    touched (and therefore loaded, for archive-backed shards), their
    clipped answers summed, and independent per-shard noise means the
    exact variances sum the same way.

    Parameters
    ----------
    schema:
        The global (unsharded) schema queries are posed against.
    attribute:
        The ordinal attribute the table was partitioned along.
    bounds:
        The ascending cut points the shards cover (``len(shards) + 1``
        values from 0 to the attribute's domain size).
    shards:
        One entry per shard, aligned with ``bounds`` intervals: either a
        :class:`~repro.core.framework.PublishResult` (in-memory shard —
        possibly itself composed, e.g. a per-shard stream) or a
        :class:`~repro.core.compose.ShardSlot` (lazy archive-backed
        shard).
    """


def _publish_shard(mechanism, table, epsilon, seed, materialize):
    """Publish one shard (module-level so process pools can pickle it)."""
    return mechanism.publish(table, epsilon, seed=seed, materialize=materialize)


def _publish_sharded(
    table: Table,
    mechanism,
    epsilon: float,
    *,
    shard_by: str,
    shards: int = 4,
    bounds=None,
    seed=None,
    materialize: bool = True,
    parallel: bool = True,
    max_workers: int | None = None,
    use_processes: bool = False,
) -> PublishResult:
    """Partition, publish every shard at full ε, and wrap the results.

    Each shard is a disjoint horizontal slice of ``table`` (see
    :func:`partition_table`), so by DP parallel composition the combined
    release is ε-differentially private even though every shard spends
    the whole budget.  Shards share nothing — per-shard transforms,
    noise draws, and (optionally skipped) inversions run concurrently on
    a pool.

    Parameters
    ----------
    table:
        The table to publish.
    mechanism:
        Any :class:`~repro.core.framework.PublishingMechanism` (it is
        applied per shard; ``sa_names="auto"`` re-selects per shard
        schema).
    epsilon:
        The privacy budget — each shard gets all of it.
    shard_by:
        The ordinal attribute to partition along.
    shards:
        Number of balanced shards (ignored when ``bounds`` is given).
    bounds:
        Explicit ascending cut points; defaults to :func:`shard_bounds`
        of the attribute's domain.  **Must be chosen independently of
        the table's contents**: parallel composition covers any *fixed*
        disjoint partition, but cut points tuned to the private data
        (e.g. eyeballing the attribute's histogram to balance shards)
        make the partition itself leak, voiding the ε guarantee.  Use
        the uniform default, public knowledge, or a separately budgeted
        DP quantile estimate.
    seed:
        Base seed; per-shard seeds come from :func:`shard_seeds`, so the
        draw in shard ``i`` is a pure function of ``(seed, i)``.
    materialize:
        Per-shard representation: ``False`` keeps every shard in
        coefficient space (never inverts, never densifies).
    parallel:
        ``False`` publishes shards sequentially on the calling thread
        (the benchmark's baseline).
    max_workers:
        Pool size; defaults to ``min(num_shards, cpu_count)``.
    use_processes:
        Use a process pool instead of threads (worth it only when
        per-shard work dwarfs the pickling of its table).

    Returns
    -------
    PublishResult
        Carries a :class:`ShardedRelease`; ``noise_magnitude`` and
        ``generalized_sensitivity`` are the per-shard maxima,
        ``variance_bound`` the per-shard sum (a query may span every
        shard), and ``details`` records the partition.
    """
    schema = table.schema
    axis = _partition_axis(schema, shard_by)
    if bounds is None:
        bounds = shard_bounds(schema[axis].size, shards)
    else:
        bounds = _check_bounds(bounds, schema[axis].size)
    tables = partition_table(table, shard_by, bounds)
    seeds = shard_seeds(seed, len(tables))
    jobs = [
        (mechanism, shard_table, epsilon, shard_seed, materialize)
        for shard_table, shard_seed in zip(tables, seeds)
    ]
    if parallel and len(jobs) > 1:
        workers = max_workers or min(len(jobs), os.cpu_count() or 1)
        pool_type = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
        with pool_type(max_workers=workers) as pool:
            results = list(pool.map(_publish_shard, *zip(*jobs)))
    else:
        results = [_publish_shard(*job) for job in jobs]
    release = ShardedRelease(schema, shard_by, bounds, results)
    return PublishResult(
        release=release,
        epsilon=float(results[0].epsilon),
        noise_magnitude=max(result.noise_magnitude for result in results),
        generalized_sensitivity=max(
            result.generalized_sensitivity for result in results
        ),
        variance_bound=sum(result.variance_bound for result in results),
        details={
            "mechanism": mechanism.name,
            "sharded": True,
            "shard_by": shard_by,
            "bounds": list(bounds),
            "shards": len(results),
        },
    )


def publish_sharded(
    table: Table,
    mechanism,
    epsilon: float,
    *,
    shard_by: str,
    shards: int = 4,
    bounds=None,
    seed=None,
    materialize: bool = True,
    parallel: bool = True,
    max_workers: int | None = None,
    use_processes: bool = False,
) -> PublishResult:
    """Deprecated alias of :func:`repro.publish` with ``shard_by``.

    Kept for released callers; draws identical noise under the same
    seed.  Prefer ``repro.publish(table, epsilon, shard_by=...)``.

    Every parameter — ``table``, ``mechanism``, ``epsilon``,
    ``shard_by``, ``shards``, ``bounds``, ``seed``, ``materialize``,
    ``parallel``, ``max_workers``, ``use_processes`` — forwards
    unchanged to the internal implementation the facade shares.
    """
    warnings.warn(
        "publish_sharded is deprecated; use repro.publish(table, epsilon, "
        "shard_by=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _publish_sharded(
        table,
        mechanism,
        epsilon,
        shard_by=shard_by,
        shards=shards,
        bounds=bounds,
        seed=seed,
        materialize=materialize,
        parallel=parallel,
        max_workers=max_workers,
        use_processes=use_processes,
    )
