"""The Privelet publishing framework (paper §III) as a mechanism interface.

Every mechanism in this library is a :class:`PublishingMechanism`: it
takes a table (or its frequency matrix) plus a privacy budget and returns
a :class:`PublishResult` — a :class:`~repro.core.release.Release`
(the published data in either representation) together with the
accounting facts (ε, λ, sensitivity, variance bound) that the paper's
lemmas attach to it.

The framework's three steps (§III-A) appear as hooks so Basic, Privelet,
and Privelet+ share one code path:

1. ``transform`` the frequency matrix into coefficients;
2. add Laplace noise of magnitude ``lambda / W(c)`` per coefficient;
3. optionally ``refine`` (must depend only on noisy coefficients) and
   invert the transform.

Step 3's inversion is now optional end to end: ``materialize=False``
asks the mechanism to keep the release in coefficient space (a
:class:`~repro.core.release.CoefficientRelease`), skipping the inverse
transform at publish time and the dense prefix oracle at serving time.
``result.matrix`` still works on either representation — it materializes
``M*`` on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.release import Release
from repro.data.frequency import FrequencyMatrix
from repro.data.table import Table
from repro.errors import PrivacyError
from repro.utils.validation import ensure_epsilon

__all__ = ["PublishResult", "PublishingMechanism"]


@dataclass(frozen=True)
class PublishResult:
    """A published release plus its privacy/utility facts."""

    #: The published data — dense ``M*`` or coefficient-space.
    release: Release
    #: The ε of the ε-differential-privacy guarantee.
    epsilon: float
    #: The Laplace parameter λ the mechanism used (before weighting).
    noise_magnitude: float
    #: Generalized sensitivity ρ of the transform w.r.t. its weights
    #: (1 for Basic, which has unweighted sensitivity 2 = 2ρ).
    generalized_sensitivity: float
    #: Worst-case noise variance of any range-count answer on the release
    #: (the paper's Lemma 3 / Lemma 5 / Theorem 3 / Corollary 1 bound).
    variance_bound: float
    #: Free-form mechanism details (e.g. the SA set used by Privelet+).
    details: dict = field(default_factory=dict)

    @property
    def matrix(self) -> FrequencyMatrix:
        """The noisy frequency matrix ``M*`` (entries may be negative).

        For a dense release this is the stored matrix; for a coefficient
        release it is materialized on demand (and *not* cached — see
        :meth:`repro.core.release.CoefficientRelease.to_matrix`).
        """
        return self.release.to_matrix()

    @property
    def representation(self) -> str:
        """Which release representation this result carries."""
        return self.release.representation


class PublishingMechanism:
    """Interface shared by Basic, Privelet, and Privelet+."""

    #: Human-readable mechanism name used in experiment reports.
    name: str = "mechanism"

    #: Whether ``materialize=False`` (coefficient-space releases) is
    #: implemented.  Baselines that publish through other means (e.g.
    #: Barak's marginals) leave this False.
    supports_coefficient_release: bool = False

    def publish(
        self, table: Table, epsilon: float, *, seed=None, materialize: bool = True
    ) -> PublishResult:
        """Publish ``table`` with ε-differential privacy.

        Equivalent to ``publish_matrix(table.frequency_matrix(), ...)``;
        mechanisms may override for efficiency.  ``materialize=False``
        requests a coefficient-space release (supported when
        :attr:`supports_coefficient_release` is True).
        """
        matrix = table.frequency_matrix()
        if materialize:
            return self.publish_matrix(matrix, epsilon, seed=seed)
        self._require_coefficient_support()
        return self.publish_matrix(matrix, epsilon, seed=seed, materialize=False)

    def publish_matrix(
        self, matrix: FrequencyMatrix, epsilon: float, *, seed=None
    ) -> PublishResult:
        """Publish a pre-computed frequency matrix with ε-DP."""
        raise NotImplementedError

    def variance_bound(self, matrix_schema, epsilon: float) -> float:
        """Closed-form worst-case noise variance per range-count answer."""
        raise NotImplementedError

    def _require_coefficient_support(self) -> None:
        if not self.supports_coefficient_release:
            raise PrivacyError(
                f"{self.name} cannot publish a coefficient-space release; "
                "use materialize=True"
            )

    @staticmethod
    def _check_epsilon(epsilon: float) -> float:
        return ensure_epsilon(epsilon)

    @staticmethod
    def _check_matrix(matrix: FrequencyMatrix) -> FrequencyMatrix:
        """Reject non-finite inputs before any noise is spent on them."""
        import numpy as np

        if not np.isfinite(matrix.values).all():
            raise PrivacyError("frequency matrix contains NaN or infinite entries")
        return matrix
