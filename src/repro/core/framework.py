"""The Privelet publishing framework (paper §III) as a mechanism interface.

Every mechanism in this library is a :class:`PublishingMechanism`: it
takes a table (or its frequency matrix) plus a privacy budget and returns
a :class:`PublishResult` — the noisy frequency matrix ``M*`` together
with the accounting facts (ε, λ, sensitivity, variance bound) that the
paper's lemmas attach to it.

The framework's three steps (§III-A) appear as hooks so Basic, Privelet,
and Privelet+ share one code path:

1. ``transform`` the frequency matrix into coefficients;
2. add Laplace noise of magnitude ``lambda / W(c)`` per coefficient;
3. optionally ``refine`` (must depend only on noisy coefficients) and
   invert the transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.frequency import FrequencyMatrix
from repro.data.table import Table
from repro.errors import PrivacyError

__all__ = ["PublishResult", "PublishingMechanism"]


@dataclass(frozen=True)
class PublishResult:
    """A published noisy frequency matrix plus its privacy/utility facts."""

    #: The noisy frequency matrix ``M*`` (entries may be negative).
    matrix: FrequencyMatrix
    #: The ε of the ε-differential-privacy guarantee.
    epsilon: float
    #: The Laplace parameter λ the mechanism used (before weighting).
    noise_magnitude: float
    #: Generalized sensitivity ρ of the transform w.r.t. its weights
    #: (1 for Basic, which has unweighted sensitivity 2 = 2ρ).
    generalized_sensitivity: float
    #: Worst-case noise variance of any range-count answer on ``matrix``
    #: (the paper's Lemma 3 / Lemma 5 / Theorem 3 / Corollary 1 bound).
    variance_bound: float
    #: Free-form mechanism details (e.g. the SA set used by Privelet+).
    details: dict = field(default_factory=dict)


class PublishingMechanism:
    """Interface shared by Basic, Privelet, and Privelet+."""

    #: Human-readable mechanism name used in experiment reports.
    name: str = "mechanism"

    def publish(self, table: Table, epsilon: float, *, seed=None) -> PublishResult:
        """Publish ``table`` with ε-differential privacy.

        Equivalent to ``publish_matrix(table.frequency_matrix(), ...)``;
        mechanisms may override for efficiency.
        """
        return self.publish_matrix(table.frequency_matrix(), epsilon, seed=seed)

    def publish_matrix(
        self, matrix: FrequencyMatrix, epsilon: float, *, seed=None
    ) -> PublishResult:
        """Publish a pre-computed frequency matrix with ε-DP."""
        raise NotImplementedError

    def variance_bound(self, matrix_schema, epsilon: float) -> float:
        """Closed-form worst-case noise variance per range-count answer."""
        raise NotImplementedError

    @staticmethod
    def _check_epsilon(epsilon: float) -> float:
        if not (isinstance(epsilon, (int, float)) and epsilon > 0):
            raise PrivacyError(f"epsilon must be a positive number, got {epsilon!r}")
        return float(epsilon)

    @staticmethod
    def _check_matrix(matrix: FrequencyMatrix) -> FrequencyMatrix:
        """Reject non-finite inputs before any noise is spent on them."""
        import numpy as np

        if not np.isfinite(matrix.values).all():
            raise PrivacyError("frequency matrix contains NaN or infinite entries")
        return matrix
