"""Core mechanisms: Basic, Privelet, Privelet+, and their accounting."""

from repro.core.accountant import PrivacyAccount
from repro.core.basic import FREQUENCY_MATRIX_SENSITIVITY, BasicMechanism
from repro.core.framework import PublishingMechanism, PublishResult
from repro.core.laplace import (
    epsilon_for_magnitude,
    laplace_log_density,
    laplace_noise,
    laplace_variance,
    magnitude_for_epsilon,
)
from repro.core.privelet import (
    PriveletMechanism,
    publish_nominal_release,
    publish_nominal_vector,
    publish_ordinal_release,
    publish_ordinal_vector,
)
from repro.core.release import (
    REPRESENTATIONS,
    CoefficientRelease,
    DenseRelease,
    Release,
    convert_result,
    infer_sa_names,
)
from repro.core.postprocess import (
    clamp_nonnegative,
    rescale_total,
    round_to_integers,
    sanitize,
)
from repro.core.compose import (
    ComposedPart,
    ComposedRelease,
    CompositeProfileCaches,
    Partition,
    TimeTree,
)
from repro.core.privelet_plus import PriveletPlusMechanism, select_sa
from repro.core.publish import publish
from repro.core.sharding import (
    ShardedRelease,
    ShardSlot,
    partition_table,
    publish_sharded,
    shard_bounds,
    shard_schema,
    shard_seeds,
)
from repro.core.sensitivity import (
    empirical_generalized_sensitivity,
    sensitivity_of_schema,
    variance_factor_of_schema,
)
from repro.core.weights import w_haar, w_hn, w_nominal

__all__ = [
    "PublishingMechanism",
    "PublishResult",
    "BasicMechanism",
    "FREQUENCY_MATRIX_SENSITIVITY",
    "PriveletMechanism",
    "PriveletPlusMechanism",
    "select_sa",
    "publish",
    "publish_ordinal_vector",
    "publish_nominal_vector",
    "publish_ordinal_release",
    "publish_nominal_release",
    "Release",
    "DenseRelease",
    "CoefficientRelease",
    "ComposedPart",
    "ComposedRelease",
    "CompositeProfileCaches",
    "Partition",
    "TimeTree",
    "ShardedRelease",
    "ShardSlot",
    "REPRESENTATIONS",
    "convert_result",
    "infer_sa_names",
    "publish_sharded",
    "partition_table",
    "shard_bounds",
    "shard_schema",
    "shard_seeds",
    "PrivacyAccount",
    "laplace_noise",
    "laplace_variance",
    "laplace_log_density",
    "magnitude_for_epsilon",
    "epsilon_for_magnitude",
    "empirical_generalized_sensitivity",
    "sensitivity_of_schema",
    "variance_factor_of_schema",
    "w_haar",
    "w_nominal",
    "w_hn",
    "clamp_nonnegative",
    "round_to_integers",
    "rescale_total",
    "sanitize",
]
