"""Privelet — the pure wavelet mechanism (paper §IV, §V, §VI-A/B/C).

Privelet is Privelet+ with ``SA = {}``: every dimension is wavelet
transformed (Haar for ordinal, nominal transform for nominal).  This
module also exposes convenience entry points for the paper's two
one-dimensional instantiations, which are what §IV-B and §V-B describe:

* :func:`publish_ordinal_vector` — Privelet with the 1-D HWT (§IV-B):
  ε-DP with ``lambda = 2 (1 + log2 m) / epsilon``; any range-count answer
  has noise variance at most ``(2 + log2 m)(2 + 2 log2 m)^2 / eps^2``
  (Equation 4).
* :func:`publish_nominal_vector` — Privelet with the nominal transform
  (§V-B): ε-DP with ``lambda = 2 h / epsilon``; any range-count answer
  has noise variance at most ``32 h^2 / eps^2`` (Equation 6).
"""

from __future__ import annotations

import numpy as np

from repro.core.laplace import laplace_noise, magnitude_for_epsilon
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.hierarchy import Hierarchy
from repro.errors import PrivacyError
from repro.transforms.haar import HaarTransform
from repro.transforms.nominal import NominalTransform

__all__ = ["PriveletMechanism", "publish_ordinal_vector", "publish_nominal_vector"]


class PriveletMechanism(PriveletPlusMechanism):
    """Privelet: the HN wavelet transform on *every* dimension (SA = {})."""

    def __init__(self):
        super().__init__(sa_names=())

    @property
    def name(self) -> str:
        return "Privelet"

    def __repr__(self) -> str:
        return "PriveletMechanism()"


def _check_epsilon(epsilon: float) -> float:
    if not (isinstance(epsilon, (int, float)) and epsilon > 0):
        raise PrivacyError(f"epsilon must be a positive number, got {epsilon!r}")
    return float(epsilon)


def publish_ordinal_vector(counts, epsilon: float, *, seed=None) -> np.ndarray:
    """§IV-B: 1-D Privelet with the Haar wavelet transform.

    ``counts`` is the one-dimensional frequency vector of an ordinal
    attribute; the result is the noisy vector ``M*`` of the same length.
    """
    epsilon = _check_epsilon(epsilon)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_ordinal_vector expects a 1-D frequency vector")
    transform = HaarTransform(len(counts))
    magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.sensitivity_factor())
    coefficients = transform.forward(counts)
    noisy = coefficients + laplace_noise(magnitude / transform.weight_vector(), seed=seed)
    return transform.inverse(noisy)


def publish_nominal_vector(
    counts, hierarchy: Hierarchy, epsilon: float, *, seed=None
) -> np.ndarray:
    """§V-B: 1-D Privelet with the nominal wavelet transform.

    ``counts`` is indexed by the hierarchy's DFS leaf order.  Includes the
    mean-subtraction refinement before reconstruction.
    """
    epsilon = _check_epsilon(epsilon)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_nominal_vector expects a 1-D frequency vector")
    transform = NominalTransform(hierarchy)
    if len(counts) != transform.input_length:
        raise PrivacyError(
            f"counts has length {len(counts)} but the hierarchy has "
            f"{transform.input_length} leaves"
        )
    magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.sensitivity_factor())
    coefficients = transform.forward(counts)
    noisy = coefficients + laplace_noise(magnitude / transform.weight_vector(), seed=seed)
    return transform.inverse(noisy, refine=True)
