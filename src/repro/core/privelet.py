"""Privelet — the pure wavelet mechanism (paper §IV, §V, §VI-A/B/C).

Privelet is Privelet+ with ``SA = {}``: every dimension is wavelet
transformed (Haar for ordinal, nominal transform for nominal).  This
module also exposes convenience entry points for the paper's two
one-dimensional instantiations, which are what §IV-B and §V-B describe:

* :func:`publish_ordinal_vector` — Privelet with the 1-D HWT (§IV-B):
  ε-DP with ``lambda = 2 (1 + log2 m) / epsilon``; any range-count answer
  has noise variance at most ``(2 + log2 m)(2 + 2 log2 m)^2 / eps^2``
  (Equation 4).
* :func:`publish_nominal_vector` — Privelet with the nominal transform
  (§V-B): ε-DP with ``lambda = 2 h / epsilon``; any range-count answer
  has noise variance at most ``32 h^2 / eps^2`` (Equation 6).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.framework import PublishResult
from repro.core.laplace import laplace_noise, magnitude_for_epsilon
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import Hierarchy
from repro.data.schema import Schema
from repro.errors import PrivacyError
from repro.transforms.haar import HaarTransform
from repro.transforms.nominal import NominalTransform
from repro.utils.validation import ensure_epsilon as _check_epsilon

__all__ = [
    "PriveletMechanism",
    "publish_ordinal_vector",
    "publish_nominal_vector",
    "publish_ordinal_release",
    "publish_nominal_release",
]


class PriveletMechanism(PriveletPlusMechanism):
    """Privelet: the HN wavelet transform on *every* dimension (SA = {})."""

    def __init__(self):
        super().__init__(sa_names=())

    @property
    def name(self) -> str:
        return "Privelet"

    def __repr__(self) -> str:
        return "PriveletMechanism()"


def publish_ordinal_vector(counts, epsilon: float, *, seed=None) -> np.ndarray:
    """§IV-B: 1-D Privelet with the Haar wavelet transform.

    ``counts`` is the one-dimensional frequency vector of an ordinal
    attribute; the result is the noisy vector ``M*`` of the same length.
    """
    epsilon = _check_epsilon(epsilon)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_ordinal_vector expects a 1-D frequency vector")
    transform = HaarTransform(len(counts))
    magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.sensitivity_factor())
    coefficients = transform.forward(counts)
    noisy = coefficients + laplace_noise(magnitude / transform.weight_vector(), seed=seed)
    return transform.inverse(noisy)


def publish_nominal_vector(
    counts, hierarchy: Hierarchy, epsilon: float, *, seed=None
) -> np.ndarray:
    """§V-B: 1-D Privelet with the nominal wavelet transform.

    ``counts`` is indexed by the hierarchy's DFS leaf order.  Includes the
    mean-subtraction refinement before reconstruction.
    """
    epsilon = _check_epsilon(epsilon)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_nominal_vector expects a 1-D frequency vector")
    transform = NominalTransform(hierarchy)
    if len(counts) != transform.input_length:
        raise PrivacyError(
            f"counts has length {len(counts)} but the hierarchy has "
            f"{transform.input_length} leaves"
        )
    magnitude = magnitude_for_epsilon(epsilon, 2.0 * transform.sensitivity_factor())
    coefficients = transform.forward(counts)
    noisy = coefficients + laplace_noise(magnitude / transform.weight_vector(), seed=seed)
    return transform.inverse(noisy, refine=True)


def _ordinal_release(
    counts, epsilon: float, *, seed=None, materialize: bool = False, name: str = "value"
) -> PublishResult:
    """1-D Privelet over an ordinal domain as a full :class:`PublishResult`.

    The release-typed sibling of :func:`publish_ordinal_vector`: by
    default (``materialize=False``) the result carries a
    :class:`~repro.core.release.CoefficientRelease`, so a domain of
    ``m = 2**20`` (or far larger) is published and served without ever
    allocating ``M*`` or a prefix oracle — every range answer gathers
    ``O(log m)`` coefficients (Equation 3).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_ordinal_release expects a 1-D frequency vector")
    schema = Schema([OrdinalAttribute(name, len(counts))])
    return PriveletMechanism().publish_matrix(
        FrequencyMatrix(schema, counts), epsilon, seed=seed, materialize=materialize
    )


def _nominal_release(
    counts,
    hierarchy: Hierarchy,
    epsilon: float,
    *,
    seed=None,
    materialize: bool = False,
    name: str = "value",
) -> PublishResult:
    """1-D Privelet over a nominal domain as a full :class:`PublishResult`.

    Like :func:`_ordinal_release` but with the §V nominal transform;
    ``counts`` is indexed by the hierarchy's DFS leaf order.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise PrivacyError("publish_nominal_release expects a 1-D frequency vector")
    schema = Schema([NominalAttribute(name, hierarchy)])
    return PriveletMechanism().publish_matrix(
        FrequencyMatrix(schema, counts), epsilon, seed=seed, materialize=materialize
    )


def publish_ordinal_release(
    counts, epsilon: float, *, seed=None, materialize: bool = False, name: str = "value"
) -> PublishResult:
    """Deprecated alias of :func:`repro.publish` on an ordinal count vector.

    Kept for released callers; draws identical noise under the same
    seed.  Prefer ``repro.publish(counts, epsilon,
    mechanism="privelet")``.
    """
    warnings.warn(
        'publish_ordinal_release is deprecated; use repro.publish(counts, '
        'epsilon, mechanism="privelet") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return _ordinal_release(
        counts, epsilon, seed=seed, materialize=materialize, name=name
    )


def publish_nominal_release(
    counts,
    hierarchy: Hierarchy,
    epsilon: float,
    *,
    seed=None,
    materialize: bool = False,
    name: str = "value",
) -> PublishResult:
    """Deprecated alias of :func:`repro.publish` on a nominal count vector.

    Kept for released callers; draws identical noise under the same
    seed.  Prefer ``repro.publish(counts, epsilon,
    mechanism="privelet", hierarchy=hierarchy)``.
    """
    warnings.warn(
        'publish_nominal_release is deprecated; use repro.publish(counts, '
        'epsilon, mechanism="privelet", hierarchy=hierarchy) instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return _nominal_release(
        counts, hierarchy, epsilon, seed=seed, materialize=materialize, name=name
    )
