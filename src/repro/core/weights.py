"""The paper's weight functions under their paper names.

These are thin, documented aliases over the transform classes so code
and tests can speak the paper's vocabulary:

* ``w_haar(m)`` — §IV-B's ``W_Haar`` for a padded domain of size ``m``:
  the base coefficient gets ``m``; a level-``i`` coefficient gets
  ``2**(l-i+1)``.
* ``w_nominal(hierarchy)`` — §V-B's ``W_Nom``: 1 for the base
  coefficient, ``f/(2f-2)`` otherwise (``f`` = parent's fanout).
* ``w_hn(schema, sa)`` — §VI-B's ``W_HN`` as per-axis vectors whose outer
  product is the full weight function (Example 5).
"""

from __future__ import annotations

import numpy as np

from repro.data.hierarchy import Hierarchy
from repro.data.schema import Schema
from repro.transforms.haar import haar_weight_vector
from repro.transforms.multidim import HNTransform
from repro.transforms.nominal import NominalTransform

__all__ = ["w_haar", "w_nominal", "w_hn"]


def w_haar(padded_length: int) -> np.ndarray:
    """``W_Haar`` over a power-of-two domain, level-order layout."""
    return haar_weight_vector(padded_length)


def w_nominal(hierarchy: Hierarchy) -> np.ndarray:
    """``W_Nom`` over a hierarchy, level-order (node-id) layout."""
    return NominalTransform(hierarchy).weight_vector()


def w_hn(schema: Schema, sa_names=()) -> list[np.ndarray]:
    """Per-axis weight vectors of ``W_HN`` (outer product = full weights)."""
    return HNTransform(schema, sa_names).weight_vectors()
