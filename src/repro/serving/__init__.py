"""The serving layer: many releases, heavy traffic, one front door.

Everything below this package answers *one* query batch well; this
package is about sustained traffic across *many* releases.  The pieces
(each documented in its own module):

* :class:`~repro.serving.registry.ReleaseRegistry` — named releases,
  archive-backed entries load lazily;
* :class:`~repro.serving.requests.QueryRequest` /
  :class:`~repro.serving.requests.QueryResponse` /
  :class:`~repro.serving.requests.QueryBatchRequest` /
  :class:`~repro.serving.requests.BatchQueryResponse` /
  :class:`~repro.serving.requests.ErrorResponse` — the wire types of
  the JSONL protocol ``python -m repro serve`` speaks (scalar and
  columnar);
* :class:`~repro.serving.batching.MicroBatcher` — adaptive coalescing
  of concurrent single queries into vectorized engine batches;
* :class:`~repro.serving.cache.LRUProfileCache` — bounded per-axis
  adjoint-profile memo keyed by axis ranges;
* :class:`~repro.serving.plans.PlanCache` — compiled per-shape plans
  the columnar path reuses across batches;
* :class:`~repro.serving.server.ReleaseServer` — the composition, with
  per-release locks and hit-rate/batch/latency stats;
* :mod:`~repro.serving.shm` — publish-once shared-memory segments that
  worker processes map zero copy;
* :class:`~repro.serving.stats.LatencyRecorder` /
  :func:`~repro.serving.stats.merge_worker_stats` — thread-safe latency
  windows and cross-worker stat aggregation;
* :class:`~repro.serving.network.NetworkServer` — the multi-process TCP
  front door (``python -m repro serve --tcp``), fault-isolated workers
  over the shared segments.

See ``docs/ARCHITECTURE.md`` for where this layer sits in the system.
"""

from repro.serving.batching import MicroBatcher
from repro.serving.cache import LRUProfileCache
from repro.serving.network import NetworkServer
from repro.serving.plans import CompiledPlan, PlanCache
from repro.serving.registry import ReleaseRegistry
from repro.serving.requests import (
    BatchQueryResponse,
    ErrorResponse,
    QueryBatchRequest,
    QueryRequest,
    QueryResponse,
    parse_request_line,
)
from repro.serving.server import ReleaseServer, ServerStats
from repro.serving.shm import (
    ShmAttachment,
    ShmPublication,
    attach_result_from_shm,
    publish_result_to_shm,
    sweep_stale_segments,
)
from repro.serving.stats import LatencyRecorder, merge_worker_stats

__all__ = [
    "BatchQueryResponse",
    "CompiledPlan",
    "ErrorResponse",
    "LRUProfileCache",
    "LatencyRecorder",
    "MicroBatcher",
    "NetworkServer",
    "PlanCache",
    "QueryBatchRequest",
    "QueryRequest",
    "QueryResponse",
    "ReleaseRegistry",
    "ReleaseServer",
    "ServerStats",
    "ShmAttachment",
    "ShmPublication",
    "attach_result_from_shm",
    "merge_worker_stats",
    "parse_request_line",
    "publish_result_to_shm",
    "sweep_stale_segments",
]
