"""The serving layer: many releases, heavy traffic, one front door.

Everything below this package answers *one* query batch well; this
package is about sustained traffic across *many* releases.  The pieces
(each documented in its own module):

* :class:`~repro.serving.registry.ReleaseRegistry` — named releases,
  archive-backed entries load lazily;
* :class:`~repro.serving.requests.QueryRequest` /
  :class:`~repro.serving.requests.QueryResponse` /
  :class:`~repro.serving.requests.QueryBatchRequest` /
  :class:`~repro.serving.requests.BatchQueryResponse` /
  :class:`~repro.serving.requests.ErrorResponse` — the wire types of
  the JSONL protocol ``python -m repro serve`` speaks (scalar and
  columnar);
* :class:`~repro.serving.batching.MicroBatcher` — adaptive coalescing
  of concurrent single queries into vectorized engine batches;
* :class:`~repro.serving.cache.LRUProfileCache` — bounded per-axis
  adjoint-profile memo keyed by axis ranges;
* :class:`~repro.serving.plans.PlanCache` — compiled per-shape plans
  the columnar path reuses across batches;
* :class:`~repro.serving.server.ReleaseServer` — the composition, with
  per-release locks and hit-rate/batch/latency stats.

See ``docs/ARCHITECTURE.md`` for where this layer sits in the system.
"""

from repro.serving.batching import MicroBatcher
from repro.serving.cache import LRUProfileCache
from repro.serving.plans import CompiledPlan, PlanCache
from repro.serving.registry import ReleaseRegistry
from repro.serving.requests import (
    BatchQueryResponse,
    ErrorResponse,
    QueryBatchRequest,
    QueryRequest,
    QueryResponse,
    parse_request_line,
)
from repro.serving.server import ReleaseServer, ServerStats

__all__ = [
    "BatchQueryResponse",
    "CompiledPlan",
    "ErrorResponse",
    "LRUProfileCache",
    "MicroBatcher",
    "PlanCache",
    "QueryBatchRequest",
    "QueryRequest",
    "QueryResponse",
    "ReleaseRegistry",
    "ReleaseServer",
    "ServerStats",
    "parse_request_line",
]
