"""Zero-copy release publication over ``multiprocessing.shared_memory``.

Releases are immutable once published — the whole point of the paper's
publish-once model — which makes them ideal for multi-process serving:
the parent process copies each release's arrays into named shared-memory
segments **once**, and every worker maps them read-only with no pickling
and no per-worker copy of the coefficient tensors.

The split rides on :func:`repro.io.result_to_parts`: the JSON-able
header travels over the worker pipe as a **manifest** (header + one
``{key, segment, dtype, shape}`` row per array), and the worker rebuilds
the exact same :class:`~repro.core.framework.PublishResult` via
:func:`repro.io.result_from_parts` over ndarray views of the mapped
segments — so a worker's answers are bit-for-bit those of the parent.

Ownership and lifetime discipline:

* the **parent** owns every segment: it creates, later unlinks.  Workers
  only ``close()`` their mappings (and Python's per-process resource
  tracker is explicitly told to leave attached segments alone — without
  that, the first worker to exit would unlink segments the parent still
  serves from, a classic 3.11/3.12 footgun fixed only by 3.13's
  ``track=False``).
* segment names embed the owning pid (``<prefix>-<pid>-<token>-<n>``) so
  :func:`sweep_stale_segments` can garbage-collect segments whose owner
  died without unlinking (e.g. a SIGKILLed serving parent) the next time
  a server starts.
"""

from __future__ import annotations

import os
import re
import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.io import result_from_parts, result_to_parts

__all__ = [
    "ShmAttachment",
    "ShmPublication",
    "attach_result_from_shm",
    "publish_result_to_shm",
    "sweep_stale_segments",
]

#: Default first component of every segment name this module creates.
DEFAULT_PREFIX = "repro-shm"
#: Where POSIX shared memory appears as files (Linux).
_SHM_DIR = "/dev/shm"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove ``shm`` from this process's resource tracker.

    Python 3.11/3.12 register a segment on *attach* as well as create,
    so the tracker of the first worker to exit would unlink segments
    the parent still serves from.  Publication and attachment therefore
    both untrack immediately: segment lifetime is an explicit lifecycle
    step here (:meth:`ShmPublication.unlink` / the startup sweep), not
    an atexit side effect.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink ``shm``'s name without touching the resource tracker.

    ``SharedMemory.unlink`` unregisters too, which spams the tracker
    with KeyErrors for segments that were untracked at creation.
    """
    unlink = getattr(getattr(shared_memory, "_posixshmem", None), "shm_unlink", None)
    try:
        if unlink is not None:
            unlink(shm._name)
        else:  # pragma: no cover - non-POSIX fallback
            shm.unlink()
    except FileNotFoundError:
        pass


class ShmPublication:
    """One result's arrays, published as named shared-memory segments.

    Create via :func:`publish_result_to_shm`; the parent keeps the
    publication alive for as long as workers may attach, then calls
    :meth:`unlink` (and :meth:`close`) exactly once.

    Parameters
    ----------
    header:
        The JSON header from :func:`repro.io.result_to_parts`.
    segments:
        ``key -> SharedMemory`` for every array payload.
    entries:
        The manifest rows (``key``, ``segment``, ``dtype``, ``shape``)
        describing each segment.
    """

    def __init__(self, header: dict, segments: dict, entries: list):
        self._header = header
        self._segments = segments
        self._entries = entries
        self._unlinked = False

    @property
    def manifest(self) -> dict:
        """The JSON-able manifest workers attach from (header + rows)."""
        return {"header": self._header, "arrays": list(self._entries)}

    @property
    def segment_names(self) -> tuple:
        """The published segment names, in manifest order."""
        return tuple(entry["segment"] for entry in self._entries)

    @property
    def total_bytes(self) -> int:
        """Bytes published across every segment."""
        return sum(segment.size for segment in self._segments.values())

    def close(self) -> None:
        """Unmap the parent's own views of every segment.

        Safe to call repeatedly; mappings workers hold are unaffected.
        """
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass

    def unlink(self) -> None:
        """Remove every segment name from the system (idempotent).

        Existing worker mappings stay valid — POSIX shared memory is
        reference-counted — but no new attach can happen afterwards.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments.values():
            _unlink_segment(segment)

    def __repr__(self) -> str:
        return (
            f"ShmPublication(segments={len(self._segments)}, "
            f"bytes={self.total_bytes})"
        )


class ShmAttachment:
    """A worker's read-only mapping of one published result.

    Create via :func:`attach_result_from_shm`.  The attachment owns the
    worker-side ``SharedMemory`` handles; :attr:`result` answers queries
    over views of the mapped segments (zero copy).  Dropping the
    attachment (or calling :meth:`close` once no arrays are referenced)
    unmaps the segments in this process only.

    Parameters
    ----------
    result:
        The reconstructed :class:`~repro.core.framework.PublishResult`.
    segments:
        The mapped ``SharedMemory`` handles keeping the views valid.
    """

    def __init__(self, result, segments: list):
        self._result = result
        self._segments = segments

    @property
    def result(self):
        """The attached result (arrays are read-only shm views)."""
        return self._result

    def close(self) -> None:
        """Unmap this process's views (best effort; see class note)."""
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                # An ndarray view still references the buffer; the map
                # is released when the last view is garbage collected.
                pass

    def __repr__(self) -> str:
        return f"ShmAttachment(segments={len(self._segments)})"


def publish_result_to_shm(result, *, prefix: str = DEFAULT_PREFIX) -> ShmPublication:
    """Copy a result's arrays into named shared-memory segments.

    Parameters
    ----------
    result:
        Any :class:`~repro.core.framework.PublishResult` (dense,
        coefficient, sharded, or stream release).  Lazy archive-backed
        payloads are forced; the published arrays are the exact bytes a
        fresh :func:`repro.io.load_result` would see.
    prefix:
        First component of each segment name.  The owning pid and a
        random token are appended, so concurrent servers never collide
        and :func:`sweep_stale_segments` can tell dead owners apart.

    Returns
    -------
    ShmPublication
        The handle the parent must keep and eventually ``unlink()``.
    """
    header, arrays = result_to_parts(result)
    token = secrets.token_hex(4)
    segments: dict = {}
    entries: list = []
    try:
        for index, (key, array) in enumerate(sorted(arrays.items())):
            payload = np.ascontiguousarray(array)
            name = f"{prefix}-{os.getpid()}-{token}-{index}"
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, payload.nbytes)
            )
            if payload.nbytes:
                view = np.ndarray(
                    payload.shape, dtype=payload.dtype, buffer=segment.buf
                )
                view[...] = payload
                del view  # keep the buffer exportable for close()
            _untrack(segment)
            segments[key] = segment
            entries.append(
                {
                    "key": key,
                    "segment": name,
                    "dtype": str(payload.dtype),
                    "shape": list(payload.shape),
                }
            )
    except BaseException:
        for segment in segments.values():
            segment.close()
            _unlink_segment(segment)
        raise
    return ShmPublication(header, segments, entries)


def attach_result_from_shm(manifest: dict) -> ShmAttachment:
    """Map a published result read-only in this process.

    Parameters
    ----------
    manifest:
        A :attr:`ShmPublication.manifest` dict received from the
        publishing parent (over the worker pipe, as plain JSON-able
        data — no tensors cross the pipe).

    Returns
    -------
    ShmAttachment
        Holds the reconstructed result; its arrays are read-only
        ndarray views over the mapped segments, so an accidental
        in-place write in any consumer raises instead of corrupting
        every other worker's answers.
    """
    segments: list = []
    arrays: dict = {}
    try:
        for entry in manifest["arrays"]:
            segment = shared_memory.SharedMemory(name=entry["segment"])
            _untrack(segment)
            segments.append(segment)
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=segment.buf,
            )
            view.setflags(write=False)
            arrays[entry["key"]] = view
        result = result_from_parts(manifest["header"], arrays)
    except BaseException:
        del arrays
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover
                pass
        raise
    return ShmAttachment(result, segments)


def sweep_stale_segments(
    *, prefix: str = DEFAULT_PREFIX, directory: str = _SHM_DIR
) -> list:
    """Unlink segments whose owning process is gone (crash cleanup).

    A parent that exits cleanly unlinks its own segments; a SIGKILLed
    one cannot.  Because every name embeds the owner's pid, any later
    server start can sweep: a segment whose pid no longer designates a
    live process is unreachable garbage and is unlinked.  Live owners'
    segments are never touched.

    Parameters
    ----------
    prefix:
        The segment-name prefix to scan for.
    directory:
        Where POSIX shared memory is mounted (``/dev/shm`` on Linux;
        the sweep is a no-op where that does not exist).

    Returns
    -------
    list
        Names of the segments removed.
    """
    pattern = re.compile(re.escape(prefix) + r"-(\d+)-")
    removed = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        match = pattern.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        try:
            os.kill(pid, 0)
            continue  # owner alive; leave its segments alone
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # alive, just not ours
        try:
            os.unlink(os.path.join(directory, name))
            removed.append(name)
        except OSError:  # pragma: no cover - raced another sweeper
            pass
    return removed
