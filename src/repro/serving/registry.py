"""A named, thread-safe registry of releases.

A serving process holds *many* releases — different datasets, epochs, or
ε budgets — and requests address them by name.  The registry maps names
to either in-process :class:`~repro.core.framework.PublishResult`
objects (just published, never written to disk) or archive-backed
:class:`~repro.io.ResultHandle` entries that stay unloaded until their
first request (so registering fifty archives costs fifty header reads,
not fifty payload loads).

Every entry carries its own re-entrant lock: the server uses it to make
lazy loading, engine construction, and any direct entry access safe
under concurrent traffic without a global serving lock.
"""

from __future__ import annotations

import os
import pathlib
import threading
from dataclasses import dataclass, field

from repro.core.framework import PublishResult
from repro.errors import ServingError
from repro.io import ResultHandle, open_result

__all__ = ["ReleaseRegistry"]


@dataclass
class _Entry:
    """One registered release: in-process result or lazy archive handle."""

    result: PublishResult | None = None
    handle: ResultHandle | None = None
    lock: threading.RLock = field(default_factory=threading.RLock)


class ReleaseRegistry:
    """Name → release mapping with lazy archive loading and per-name locks."""

    def __init__(self):
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def names(self) -> tuple[str, ...]:
        """All registered release names, sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def register(self, name: str, result: PublishResult) -> str:
        """Register an in-process published result under ``name``.

        Parameters
        ----------
        name:
            Unique release name requests will address.
        result:
            The published result to serve.

        Returns
        -------
        str
            The registered name (for chaining).  Duplicate names raise
            :class:`~repro.errors.ServingError` — re-publishing under an
            existing name would silently change answers under traffic.
        """
        if not isinstance(result, PublishResult):
            raise ServingError(
                f"can only register a PublishResult, got {type(result).__name__}"
            )
        with self._lock:
            self._check_new_name(name)
            self._entries[name] = _Entry(result=result)
        return name

    def register_archive(self, path, *, name: str | None = None) -> str:
        """Register an archive lazily; the payload loads on first touch.

        The path is pinned to its **absolute** form at registration
        time: lazy loading happens at an arbitrary later moment (the
        first request), and a process that has since changed its working
        directory must still resolve the archive the caller meant.

        Parameters
        ----------
        path:
            A ``.npz`` archive written by :func:`repro.io.save_result`.
            The header is read (and validated) now; arrays are not.
        name:
            Release name; defaults to the file stem (``release.npz`` →
            ``release``).

        Returns
        -------
        str
            The registered name.
        """
        path = os.path.abspath(os.fspath(path))
        if name is None:
            name = pathlib.Path(path).stem
        handle = open_result(path)
        with self._lock:
            self._check_new_name(name)
            self._entries[name] = _Entry(handle=handle)
        return name

    def replace(self, name: str, result: PublishResult) -> None:
        """Swap an existing entry's result in place (atomic per entry).

        Unlike :meth:`register`, the name must already exist — this is
        the deliberate "change answers under traffic" path, used when a
        live stream republishes (the shared-memory worker re-attaches
        its segments through this).  The entry becomes in-memory; a
        previously archive-backed handle is dropped.

        Parameters
        ----------
        name:
            A registered release name.
        result:
            The replacement result to serve from now on.
        """
        if not isinstance(result, PublishResult):
            raise ServingError(
                f"can only register a PublishResult, got {type(result).__name__}"
            )
        entry = self._entry(name)
        with entry.lock:
            entry.result = result
            entry.handle = None

    def refresh(self, name: str) -> bool:
        """Re-resolve an archive-backed entry from its file on disk.

        The swap is atomic under the entry's lock: in-flight requests
        finish against the release they already resolved, and the next
        resolution sees the re-opened archive (for an append-able v4
        stream, its newest manifest).  In-memory entries have nothing to
        re-resolve and return ``False``.

        Parameters
        ----------
        name:
            A registered release name.

        Returns
        -------
        bool
            True when the entry was re-opened.
        """
        entry = self._entry(name)
        with entry.lock:
            if entry.handle is None:
                return False
            entry.handle = open_result(entry.handle.path)
            entry.result = None
            return True

    def stale(self, name: str) -> bool:
        """Whether ``name``'s archive changed on disk since it was opened.

        A pure ``stat`` probe (see :attr:`repro.io.ResultHandle.stale`);
        in-memory entries are never stale.

        Parameters
        ----------
        name:
            A registered release name.
        """
        entry = self._entry(name)
        handle = entry.handle
        return handle is not None and handle.stale

    def get(self, name: str) -> PublishResult:
        """Resolve ``name`` to its result, loading an archive on first touch.

        Returns
        -------
        PublishResult
            The registered (or lazily loaded) result.  Unknown names
            raise :class:`~repro.errors.ServingError` with code
            ``unknown-release``.
        """
        entry = self._entry(name)
        with entry.lock:
            if entry.result is None:
                entry.result = entry.handle.load()
            return entry.result

    def lock_for(self, name: str) -> threading.RLock:
        """The per-release lock guarding ``name``'s entry."""
        return self._entry(name).lock

    def describe(self, name: str) -> dict:
        """Cheap metadata for ``name`` without forcing a payload load.

        Returns
        -------
        dict
            ``name``, ``source`` (``memory`` or the archive path),
            ``loaded``, and — when known without loading — ``epsilon``,
            ``representation``, and the schema ``shape``.
        """
        entry = self._entry(name)
        with entry.lock:
            if entry.result is not None:
                release = entry.result.release
                return {
                    "name": name,
                    "source": entry.handle.path if entry.handle else "memory",
                    "loaded": True,
                    "epsilon": entry.result.epsilon,
                    "representation": entry.result.representation,
                    "shape": list(release.schema.shape),
                }
            return {
                "name": name,
                "source": entry.handle.path,
                "loaded": False,
                "epsilon": entry.handle.epsilon,
                "representation": entry.handle.representation,
                "shape": list(entry.handle.schema().shape),
            }

    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ServingError(
                f"unknown release {name!r}; registered: {self.names}",
                code="unknown-release",
            )
        return entry

    def _check_new_name(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ServingError(f"release name must be a non-empty string, got {name!r}")
        if name in self._entries:
            raise ServingError(f"release {name!r} is already registered")

    def __repr__(self) -> str:
        return f"ReleaseRegistry({list(self.names)})"
