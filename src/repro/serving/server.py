"""The multi-release serving layer: registry + engines + micro-batching.

:class:`ReleaseServer` is the first layer of this library whose job is
*throughput* rather than a single answer.  It composes the pieces below
it into one front door for query traffic:

* a :class:`~repro.serving.registry.ReleaseRegistry` of named releases
  (in-process results or lazily loaded archives);
* one :class:`~repro.queries.engine.QueryEngine` per release, built on
  first touch under that release's lock, each with a **bounded**
  :class:`~repro.serving.cache.LRUProfileCache` so repeated dashboard
  ranges hit warm adjoint profiles while the server's memory stays
  bounded for life;
* an adaptive :class:`~repro.serving.batching.MicroBatcher` that
  coalesces concurrent single-query requests into one
  ``answer_all_with_intervals`` call per ``(release, confidence)`` group
  — concurrency in, vectorized batches out;
* server-level stats: profile-cache hit rate, batch-size profile, and
  p50/p99 request latency over a sliding window.

Threading model
---------------
``submit``/``query`` may be called from any number of threads.  All
answering happens on the batcher's single drain thread, so engines and
their caches see single-threaded access on the hot path; per-release
locks additionally guard lazy loading and engine construction for
callers that touch :meth:`ReleaseServer.engine` directly.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.release import convert_result
from repro.errors import ServingError, StreamingError
from repro.queries.engine import BatchQueryAnswers, QueryEngine
from repro.planner import QueryPlanner
from repro.serving.batching import MicroBatcher
from repro.serving.cache import LRUProfileCache
from repro.serving.plans import PlanCache
from repro.serving.registry import ReleaseRegistry
from repro.serving.stats import LatencyRecorder
from repro.serving.requests import (
    BatchQueryResponse,
    QueryBatchRequest,
    QueryRequest,
    QueryResponse,
)

__all__ = ["ReleaseServer", "ServerStats"]


@dataclass(frozen=True)
class ServerStats:
    """A point-in-time snapshot of a server's serving counters."""

    #: Registered release names.
    releases: tuple
    #: Engines built so far (lazily; stream releases may add one engine
    #: per cached time window, so this can exceed len(releases)).
    engines_built: int
    #: Requests completed (successfully answered).
    requests: int
    #: Requests that resolved to an error response/exception.
    errors: int
    #: Handler batches dispatched by the micro-batcher.
    batches: int
    #: Mean items per batch so far.
    mean_batch_size: float
    #: Largest single batch so far.
    largest_batch: int
    #: Distinct-range profile lookups served from cache, all engines.
    profile_cache_hits: int
    #: Distinct-range profile lookups that computed, all engines.
    profile_cache_misses: int
    #: hits / (hits + misses), 0.0 before any lookup.
    profile_cache_hit_rate: float
    #: LRU evictions across engines (0 until a cache fills).
    profile_cache_evictions: int
    #: Columnar batches that found their shape compiled.
    plan_cache_hits: int
    #: Columnar batches that compiled a new plan.
    plan_cache_misses: int
    #: hits / (hits + misses), 0.0 before any columnar batch.
    plan_cache_hit_rate: float
    #: Plans dropped by the LRU bound (0 until the cache fills).
    plan_cache_evictions: int
    #: Rows answered through the columnar path (each scalar request
    #: counts 1 toward ``requests``; a columnar batch counts its rows).
    columnar_rows: int
    #: Rows the planner answered by scatter from an identical row
    #: (0 when planning is disabled).
    planner_deduped_rows: int
    #: Rows the planner served from materialized marginal views.
    planner_view_rows: int
    #: Marginal cubes the planner materialized (monotone, survives
    #: plan eviction/invalidation).
    planner_views_built: int
    #: Median request latency (submit → answered) over the window.
    p50_latency_seconds: float
    #: 99th-percentile request latency over the window.
    p99_latency_seconds: float
    #: The batcher's current adaptive linger window.
    linger_seconds: float


class ReleaseServer:
    """Serve query traffic against many named releases concurrently.

    Parameters
    ----------
    registry:
        An existing :class:`ReleaseRegistry` to serve from; a fresh
        empty one by default.
    max_batch:
        Most queries coalesced into one engine call.
    max_linger_seconds:
        Upper bound of the adaptive micro-batching window.
    profile_cache_entries:
        Per-axis bound of each engine's LRU profile cache.
    representation:
        ``None`` serves each release as stored; ``"dense"`` or
        ``"coefficients"`` converts on first touch (the conversion is
        answer-preserving, see :func:`repro.core.release.convert_result`).
    sa_names:
        Optional SA-set override forwarded to every engine — the escape
        hatch for archives whose metadata does not record one.  A value
        conflicting with a coefficient release's own SA set surfaces as
        a ``bad-request`` error on that release's first request.
    latency_window:
        Sliding-window size (requests) for the latency percentiles.
    watch_streams:
        When True (the default), a request touching a release backed by
        an append-able **stream** archive first ``stat``-checks the file
        and, if the publisher appended an epoch since, atomically swaps
        in a re-resolved release (in-flight requests finish against the
        one they already hold).  Static archives are never re-resolved
        — their answers must not change under traffic.
    window_engine_cache:
        How many distinct ``(release, time_range)`` window engines to
        keep (least recently used beyond that are dropped; their node
        payloads stay cached on the shared stream release).
    max_plans:
        LRU bound of the columnar :class:`~repro.serving.plans.PlanCache`
        (compiled ``(release, attribute set, time_range)`` shapes).
    planner:
        When True (the default), every compiled plan carries a
        :class:`~repro.planner.QueryPlanner` and columnar
        batches are answered through it — deduplicated, cover-pruned,
        and (for hot marginal shapes) served from materialized views,
        all bit-for-bit identical to the unplanned path.  ``False``
        sends batches straight to the engine.
    """

    def __init__(
        self,
        registry: ReleaseRegistry | None = None,
        *,
        max_batch: int = 256,
        max_linger_seconds: float = 0.002,
        profile_cache_entries: int = 4096,
        representation: str | None = None,
        sa_names=None,
        latency_window: int = 8192,
        watch_streams: bool = True,
        window_engine_cache: int = 64,
        max_plans: int = 256,
        planner: bool = True,
    ):
        self._registry = registry if registry is not None else ReleaseRegistry()
        self._representation = representation
        self._sa_names = sa_names
        self._profile_cache_entries = int(profile_cache_entries)
        self._watch_streams = bool(watch_streams)
        self._engines: dict[str, QueryEngine] = {}
        self._window_engines: OrderedDict = OrderedDict()
        self._max_window_engines = int(window_engine_cache)
        self._engines_lock = threading.RLock()
        self._latency = LatencyRecorder(window=latency_window)
        self._requests = 0
        self._errors = 0
        self._columnar_rows = 0
        self._closed = False
        self._plan_cache = PlanCache(
            self.engine,
            max_plans=max_plans,
            planner_factory=QueryPlanner if planner else None,
        )
        self._batcher = MicroBatcher(
            self._handle_batch,
            max_batch=max_batch,
            max_linger_seconds=max_linger_seconds,
            name="repro-release-server",
        )

    # ------------------------------------------------------------------
    # Registry facade
    # ------------------------------------------------------------------
    @property
    def registry(self) -> ReleaseRegistry:
        """The registry this server resolves release names in."""
        return self._registry

    @property
    def names(self) -> tuple:
        """Registered release names, sorted."""
        return self._registry.names

    def register(self, name: str, result) -> str:
        """Register an in-process ``result`` under ``name`` (see
        :meth:`ReleaseRegistry.register`)."""
        return self._registry.register(name, result)

    def register_archive(self, path, *, name: str | None = None) -> str:
        """Register the archive at ``path`` lazily under ``name`` (see
        :meth:`ReleaseRegistry.register_archive`)."""
        return self._registry.register_archive(path, name=name)

    def describe(self, name: str) -> dict:
        """Cheap metadata for release ``name`` (no payload load)."""
        return self._registry.describe(name)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def engine(self, name: str, time_range=None) -> QueryEngine:
        """The per-release engine, built on first touch under its lock.

        Parameters
        ----------
        name:
            A registered release name.
        time_range:
            Optional ``(lo, hi)`` epoch window for a stream-backed
            release; the returned engine serves a
            :meth:`~repro.streaming.release.StreamRelease.window` view
            (engines are cached per window, LRU-bounded).  Non-stream
            releases reject a time range with a ``bad-request``.

        Returns
        -------
        QueryEngine
            The engine serving that release, with this server's bounded
            profile cache installed.
        """
        self._refresh_if_stale(name)
        if time_range is None:
            engine = self._engines.get(name)
            if engine is not None:
                return engine
            with self._registry.lock_for(name):
                engine = self._engines.get(name)
                if engine is not None:
                    return engine
                engine = self._build_engine(self._resolve(name))
                with self._engines_lock:
                    self._engines[name] = engine
                return engine
        key = (name, tuple(time_range))
        with self._engines_lock:
            engine = self._window_engines.get(key)
            if engine is not None:
                self._window_engines.move_to_end(key)
                return engine
        with self._registry.lock_for(name):
            with self._engines_lock:
                engine = self._window_engines.get(key)
                if engine is not None:
                    self._window_engines.move_to_end(key)
                    return engine
            result = self._resolve(name)
            window = getattr(result.release, "window", None)
            if window is None:
                raise ServingError(
                    f"release {name!r} is not a stream; "
                    "time_range is not supported",
                    code="bad-request",
                )
            lo, hi = key[1]
            try:
                view = window(lo, hi)
            except StreamingError as exc:
                raise ServingError(str(exc), code="bad-request") from exc
            engine = self._build_engine(
                dataclasses.replace(result, release=view)
            )
            with self._engines_lock:
                self._window_engines[key] = engine
                while len(self._window_engines) > self._max_window_engines:
                    self._window_engines.popitem(last=False)
            return engine

    def replace(self, name: str, result) -> None:
        """Swap release ``name``'s in-memory result and drop its engines.

        The registry swap happens under the entry's lock, so requests
        already holding the old engine finish against it and the next
        request builds a fresh engine from ``result``.  This is the
        in-memory analogue of :meth:`refresh` — the network worker uses
        it when the parent republishes a stream's shared-memory
        segments.

        Parameters
        ----------
        name:
            A registered release name.
        result:
            The replacement :class:`~repro.core.framework.PublishResult`.
        """
        with self._registry.lock_for(name):
            self._registry.replace(name, result)
            with self._engines_lock:
                self._engines.pop(name, None)
                for key in [k for k in self._window_engines if k[0] == name]:
                    del self._window_engines[key]
            self._plan_cache.invalidate(name)

    def refresh(self, name: str) -> bool:
        """Re-resolve an archive-backed release and swap its engines.

        Safe under traffic: the registry entry's lock makes the swap
        atomic, requests already holding the old engine finish against
        it, and the next request for ``name`` builds a fresh engine from
        the re-opened archive.  With ``watch_streams`` (the default) the
        server calls this itself whenever a stream archive's file
        changes, so an appending publisher needs no extra signalling.

        Parameters
        ----------
        name:
            A registered release name.

        Returns
        -------
        bool
            True when the entry was re-opened (in-memory entries are
            left untouched).
        """
        with self._registry.lock_for(name):
            changed = self._registry.refresh(name)
            if changed:
                with self._engines_lock:
                    self._engines.pop(name, None)
                    for key in [k for k in self._window_engines if k[0] == name]:
                        del self._window_engines[key]
                # Plans pin the engine they compiled against, so every
                # plan touching the swapped release must recompile.
                self._plan_cache.invalidate(name)
        return changed

    def _resolve(self, name: str):
        """Load (and optionally re-represent) ``name``'s result."""
        result = self._registry.get(name)
        if self._representation is not None:
            result = convert_result(
                result, self._representation, sa_names=self._sa_names
            )
        return result

    def _build_engine(self, result) -> QueryEngine:
        entries = self._profile_cache_entries
        return QueryEngine(
            result,
            sa_names=self._sa_names,
            profile_cache_factory=lambda transforms: LRUProfileCache(
                transforms, max_entries_per_axis=entries
            ),
        )

    def _refresh_if_stale(self, name: str) -> None:
        """Auto-swap a live stream whose archive grew (stat probe only)."""
        if not self._watch_streams or not self._registry.stale(name):
            return
        if self._registry.describe(name).get("representation") != "stream":
            return
        self.refresh(name)

    @property
    def plan_cache(self) -> PlanCache:
        """The columnar plan cache (compiled per-shape serving state)."""
        return self._plan_cache

    def submit(self, request):
        """Enqueue one request; returns a future of its response.

        Parameters
        ----------
        request:
            A :class:`QueryRequest` (scalar path), or a
            :class:`QueryBatchRequest` (columnar path — the whole batch
            is one queue item weighted by its row count, so micro-batch
            coalescing stays bounded by total rows).

        Returns
        -------
        concurrent.futures.Future
            Resolves to a :class:`QueryResponse` (scalar) or a
            :class:`BatchQueryResponse` (columnar), or raises the
            per-request error (e.g. ``unknown-release``).
        """
        if self._closed:
            raise ServingError("server is closed", code="closed")
        if isinstance(request, QueryBatchRequest):
            return self._batcher.submit(
                (request, time.monotonic()), weight=len(request)
            )
        if not isinstance(request, QueryRequest):
            raise ServingError(
                f"submit needs a QueryRequest or QueryBatchRequest, "
                f"got {type(request).__name__}"
            )
        return self._batcher.submit((request, time.monotonic()))

    def submit_columnar(self, request: QueryBatchRequest):
        """Enqueue one columnar batch; returns a future of its
        :class:`BatchQueryResponse`.

        Parameters
        ----------
        request:
            The columnar batch to serve.

        Returns
        -------
        concurrent.futures.Future
            Resolves to a :class:`BatchQueryResponse` whose arrays are
            aligned with the request's rows.
        """
        if not isinstance(request, QueryBatchRequest):
            raise ServingError(
                f"submit_columnar needs a QueryBatchRequest, "
                f"got {type(request).__name__}"
            )
        return self.submit(request)

    def query_columnar(self, request: QueryBatchRequest) -> BatchQueryResponse:
        """Serve one columnar batch synchronously.

        Parameters
        ----------
        request:
            The columnar batch to serve.

        Returns
        -------
        BatchQueryResponse
            Estimates, exact noise stds, and interval bounds as arrays
            aligned with the request's rows.
        """
        return self.submit_columnar(request).result()

    def query(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously (through the batching queue).

        Parameters
        ----------
        request:
            The request to serve.

        Returns
        -------
        QueryResponse
            The answer with exact noise std and confidence interval.
        """
        return self.submit(request).result()

    def query_many(self, requests) -> list:
        """Serve many requests, coalesced into as few batches as possible.

        Parameters
        ----------
        requests:
            Iterable of :class:`QueryRequest`.

        Returns
        -------
        list[QueryResponse]
            Responses aligned with ``requests``; the first failing
            request's error is raised.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """A consistent-enough snapshot of the serving counters.

        Returns
        -------
        ServerStats
            Aggregated over every engine built so far; latency
            percentiles cover the sliding window only.
        """
        with self._engines_lock:
            engines = list(self._engines.values()) + list(
                self._window_engines.values()
            )
        hits = sum(engine.profile_cache.hits for engine in engines)
        misses = sum(engine.profile_cache.misses for engine in engines)
        evictions = sum(
            getattr(engine.profile_cache, "evictions", 0) for engine in engines
        )
        p50, p99 = self._latency.percentiles()
        planner_stats = self._plan_cache.planner_stats()
        return ServerStats(
            releases=self.names,
            engines_built=len(engines),
            requests=self._requests,
            errors=self._errors,
            batches=self._batcher.batches,
            mean_batch_size=self._batcher.mean_batch_size,
            largest_batch=self._batcher.largest_batch,
            profile_cache_hits=hits,
            profile_cache_misses=misses,
            profile_cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            profile_cache_evictions=evictions,
            plan_cache_hits=self._plan_cache.hits,
            plan_cache_misses=self._plan_cache.misses,
            plan_cache_hit_rate=self._plan_cache.hit_rate,
            plan_cache_evictions=self._plan_cache.evictions,
            columnar_rows=self._columnar_rows,
            planner_deduped_rows=planner_stats["rows_deduped"],
            planner_view_rows=planner_stats["view_rows"],
            planner_views_built=planner_stats["views_built"],
            p50_latency_seconds=p50,
            p99_latency_seconds=p99,
            linger_seconds=self._batcher.linger_seconds,
        )

    def latency_samples(self) -> list:
        """The current latency window's raw samples (seconds).

        The network front-end ships these across the worker pipe so
        :func:`~repro.serving.stats.merge_worker_stats` can compute
        fleet-wide percentiles from pooled samples instead of averaging
        per-worker percentiles.
        """
        return self._latency.samples()

    def close(self, *, timeout: float = 5.0) -> bool:
        """Stop the batching thread; later submits raise ``closed``.

        Parameters
        ----------
        timeout:
            Seconds to wait for the batching thread to drain and exit.

        Returns
        -------
        bool
            True once the batching thread has exited (every accepted
            future is resolved); False if the join timed out and
            outstanding futures may never resolve — see
            :meth:`~repro.serving.batching.MicroBatcher.close`.
        """
        self._closed = True
        return self._batcher.close(timeout=timeout)

    def __enter__(self) -> "ReleaseServer":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: closes the server."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"ReleaseServer(releases={list(self.names)}, "
            f"engines={len(self._engines)})"
        )

    # ------------------------------------------------------------------
    # Batch handler (runs on the drain thread)
    # ------------------------------------------------------------------
    def _handle_batch(self, payloads) -> list:
        """Answer one coalesced batch, grouped per (release, confidence).

        Scalar requests group by ``(release, confidence, time_range)``
        and go through ``answer_all_with_intervals`` as before; columnar
        batches group by ``(plan_key, confidence)``, bind through the
        plan cache, and reach the engine as concatenated ndarray views —
        no per-row Python objects anywhere on that path.

        Returns one entry per payload: a :class:`QueryResponse` /
        :class:`BatchQueryResponse`, or an :class:`Exception` for that
        request alone (the micro-batcher sets it on the matching future,
        isolating failures per request).
        """
        results: list = [None] * len(payloads)
        groups: dict[tuple, list[int]] = {}
        columnar_groups: dict[tuple, list[int]] = {}
        for index, (request, _) in enumerate(payloads):
            if isinstance(request, QueryBatchRequest):
                columnar_groups.setdefault(
                    (request.plan_key, request.confidence), []
                ).append(index)
            else:
                groups.setdefault(
                    (request.release, request.confidence, request.time_range), []
                ).append(index)
        for (plan_key, confidence), indexes in columnar_groups.items():
            self._handle_columnar_group(payloads, results, plan_key, confidence, indexes)
        for (release_name, confidence, time_range), indexes in groups.items():
            try:
                engine = self.engine(release_name, time_range)
            except Exception as exc:  # noqa: BLE001 - becomes per-request error
                for index in indexes:
                    results[index] = exc
                continue
            queries, valid = [], []
            for index in indexes:
                request = payloads[index][0]
                try:
                    queries.append(request.to_query(engine.schema))
                    valid.append(index)
                except Exception as exc:  # noqa: BLE001
                    results[index] = exc
            if not valid:
                continue
            try:
                batch = engine.answer_all_with_intervals(queries, confidence)
            except Exception as exc:  # noqa: BLE001
                for index in valid:
                    results[index] = exc
                continue
            for position, index in enumerate(valid):
                answer = batch[position]
                results[index] = QueryResponse(
                    release=release_name,
                    estimate=answer.estimate,
                    noise_std=answer.noise_std,
                    lower=answer.lower,
                    upper=answer.upper,
                    confidence=answer.confidence,
                    request_id=payloads[index][0].request_id,
                )
        now = time.monotonic()
        for result, (_, enqueued) in zip(results, payloads):
            self._latency.record_latency(now - enqueued)
            if isinstance(result, Exception):
                self._errors += 1
            elif isinstance(result, BatchQueryResponse):
                self._requests += len(result)
                self._columnar_rows += len(result)
            else:
                self._requests += 1
        return results

    def _handle_columnar_group(
        self, payloads, results, plan_key, confidence, indexes
    ) -> None:
        """Answer one columnar plan group: bind, concatenate, one engine call.

        Each wire item binds separately (so an out-of-domain batch fails
        alone); the surviving bound arrays are concatenated — a lone
        item passes its views through untouched — and answered by one
        :meth:`~repro.queries.engine.QueryEngine.answer_columnar` call.
        Responses adopt slices of the engine's result arrays, so nothing
        on this path is copied per row.
        """
        try:
            plan = self._plan_cache.plan(plan_key)
        except Exception as exc:  # noqa: BLE001 - becomes per-request error
            for index in indexes:
                results[index] = exc
            return
        bound, valid = [], []
        for index in indexes:
            request = payloads[index][0]
            try:
                bound.append(plan.bind(request))
                valid.append(index)
            except Exception as exc:  # noqa: BLE001
                results[index] = exc
        if not valid:
            return
        if len(bound) == 1:
            lows, highs = bound[0]
        else:
            lows = np.concatenate([pair[0] for pair in bound])
            highs = np.concatenate([pair[1] for pair in bound])
        try:
            answers = plan.answer_columnar(lows, highs, confidence)
        except Exception as exc:  # noqa: BLE001
            for index in valid:
                results[index] = exc
            return
        offset = 0
        for index in valid:
            request = payloads[index][0]
            stop = offset + len(request)
            window = BatchQueryAnswers(
                estimates=answers.estimates[offset:stop],
                noise_stds=answers.noise_stds[offset:stop],
                lowers=answers.lowers[offset:stop],
                uppers=answers.uppers[offset:stop],
                confidence=answers.confidence,
            )
            results[index] = BatchQueryResponse.from_answers(
                plan_key[0], window, request_id=request.request_id
            )
            offset = stop
