"""Cross-process serving statistics: latency recording and merging.

The single-process :class:`~repro.serving.server.ReleaseServer` keeps
its latency window on the batcher drain thread, but the network
front-end records latencies from socket handlers, worker reader
threads, and benchmark load generators concurrently — and then has to
present one coherent p50/p99 across N worker processes.  This module
holds the two pieces that make that sound:

* :class:`LatencyRecorder` — a lock-protected sliding window whose
  :meth:`~LatencyRecorder.record_latency` is safe from any number of
  threads, with exact percentiles over whatever is currently in the
  window;
* :func:`merge_worker_stats` — pure-function aggregation of per-worker
  stat snapshots (counters summed, batch maxima kept, percentiles
  recomputed from the **pooled** latency samples rather than averaging
  per-worker percentiles, which would be statistically meaningless).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["LatencyRecorder", "merge_worker_stats"]

#: Counter fields summed across workers by :func:`merge_worker_stats`.
_SUMMED_FIELDS = (
    "engines_built",
    "requests",
    "errors",
    "batches",
    "columnar_rows",
    "profile_cache_hits",
    "profile_cache_misses",
    "profile_cache_evictions",
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_evictions",
    "planner_deduped_rows",
    "planner_view_rows",
    "planner_views_built",
)


class LatencyRecorder:
    """A thread-safe sliding window of request latencies.

    Parameters
    ----------
    window:
        Most samples retained; recording the ``window + 1``-th sample
        drops the oldest (matching the previous deque-based behaviour
        of :class:`~repro.serving.server.ReleaseServer`).
    """

    def __init__(self, window: int = 8192):
        self._samples: deque = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def window(self) -> int:
        """The configured window size."""
        return self._samples.maxlen or 0

    @property
    def recorded(self) -> int:
        """Total samples ever recorded (including ones slid out)."""
        return self._recorded

    def record_latency(self, seconds: float) -> None:
        """Append one latency sample (safe from any thread).

        Parameters
        ----------
        seconds:
            The request's submit-to-answer latency.
        """
        value = float(seconds)
        with self._lock:
            self._samples.append(value)
            self._recorded += 1

    def samples(self) -> list[float]:
        """A consistent copy of the current window's samples."""
        with self._lock:
            return list(self._samples)

    def percentiles(self) -> tuple[float, float]:
        """The window's ``(p50, p99)``; ``(0.0, 0.0)`` when empty."""
        window = self.samples()
        if not window:
            return 0.0, 0.0
        values = np.asarray(window, dtype=np.float64)
        return float(np.percentile(values, 50)), float(np.percentile(values, 99))

    def __len__(self) -> int:
        """Samples currently in the window."""
        with self._lock:
            return len(self._samples)

    def __repr__(self) -> str:
        return f"LatencyRecorder(window={self.window}, size={len(self)})"


def merge_worker_stats(snapshots) -> dict:
    """Aggregate per-worker stat snapshots into one fleet-wide view.

    Parameters
    ----------
    snapshots:
        Iterable of per-worker dicts, each shaped like
        ``dataclasses.asdict(ServerStats)`` and optionally carrying
        ``latency_samples`` (the worker's current latency window) and
        ``pid``.  The network front-end collects one from every live
        worker; a dead worker simply contributes nothing.

    Returns
    -------
    dict
        Counters summed, ``largest_batch`` maximised,
        ``mean_batch_size`` weighted by each worker's batch count,
        cache hit rates recomputed from the summed hits/misses, and
        ``p50_latency_seconds``/``p99_latency_seconds`` computed over
        the **pooled** samples of every worker.  ``workers`` counts the
        snapshots merged and ``per_worker`` keeps a compact
        ``{pid, requests, errors}`` row per worker for health views.
    """
    snapshots = list(snapshots)
    merged: dict = {field: 0 for field in _SUMMED_FIELDS}
    releases: set = set()
    pooled: list[float] = []
    weighted_batch_size = 0.0
    largest_batch = 0
    linger = 0.0
    per_worker = []
    for snapshot in snapshots:
        for field in _SUMMED_FIELDS:
            merged[field] += int(snapshot.get(field, 0))
        releases.update(snapshot.get("releases", ()))
        weighted_batch_size += float(snapshot.get("mean_batch_size", 0.0)) * int(
            snapshot.get("batches", 0)
        )
        largest_batch = max(largest_batch, int(snapshot.get("largest_batch", 0)))
        linger = max(linger, float(snapshot.get("linger_seconds", 0.0)))
        pooled.extend(float(s) for s in snapshot.get("latency_samples", ()))
        per_worker.append(
            {
                "pid": snapshot.get("pid"),
                "requests": int(snapshot.get("requests", 0)),
                "errors": int(snapshot.get("errors", 0)),
            }
        )
    merged["releases"] = tuple(sorted(releases))
    merged["workers"] = len(snapshots)
    merged["per_worker"] = per_worker
    merged["largest_batch"] = largest_batch
    merged["linger_seconds"] = linger
    batches = merged["batches"]
    merged["mean_batch_size"] = weighted_batch_size / batches if batches else 0.0
    profile_total = merged["profile_cache_hits"] + merged["profile_cache_misses"]
    merged["profile_cache_hit_rate"] = (
        merged["profile_cache_hits"] / profile_total if profile_total else 0.0
    )
    plan_total = merged["plan_cache_hits"] + merged["plan_cache_misses"]
    merged["plan_cache_hit_rate"] = (
        merged["plan_cache_hits"] / plan_total if plan_total else 0.0
    )
    if pooled:
        values = np.asarray(pooled, dtype=np.float64)
        merged["p50_latency_seconds"] = float(np.percentile(values, 50))
        merged["p99_latency_seconds"] = float(np.percentile(values, 99))
    else:
        merged["p50_latency_seconds"] = 0.0
        merged["p99_latency_seconds"] = 0.0
    return merged
