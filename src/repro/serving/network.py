"""Multi-process TCP front-end over shared-memory releases.

This is the serving layer's answer to "millions of users": the JSONL
``serve`` loop is one process under one GIL, while a
:class:`NetworkServer` is a **fleet** —

* an asyncio TCP acceptor (newline-delimited JSON frames, the exact
  wire types of the JSONL loop including ``op=query_batch``) running on
  a background event-loop thread;
* ``N`` worker processes, each holding its own
  :class:`~repro.serving.server.ReleaseServer` (engines, profile and
  plan caches, micro-batcher) whose release tensors are mapped
  **zero-copy** from shared-memory segments the parent published once
  (see :mod:`repro.serving.shm`) — no tensor ever crosses a pipe;
* per-worker duplex pipes carrying only small JSON-able dicts:
  requests go out with a token, responses come back by token, and a
  reader thread per worker resolves the matching asyncio future.

Failure modes are part of the contract, not an afterthought:

* a worker that dies (crash, OOM-kill, SIGKILL) fails its in-flight
  requests with a structured ``worker-lost`` :class:`ErrorResponse` —
  never a hang, never a traceback on the wire — and is respawned;
* a client that sends a malformed, truncated, or oversized frame has
  *its* connection closed; every other connection is untouched;
* a client that disconnects mid-batch abandons its responses, but the
  worker slots its requests held are released the moment the answers
  arrive, so back-pressure cannot leak;
* ``close(drain=True)`` (the SIGTERM path) stops accepting and reading,
  flushes every response already owed, then stops the workers and
  unlinks the shared segments.

Back-pressure is explicit: each worker accepts at most
``max_pending_per_worker`` outstanding requests; when every worker is
full the acceptor simply stops reading frames, so the kernel's TCP
receive window pushes back on the clients.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import queue as _queue_module
import signal
import threading

from repro.errors import ServingError
from repro.io import load_result
from repro.serving.registry import ReleaseRegistry
from repro.serving.requests import ErrorResponse, QueryBatchRequest, QueryRequest
from repro.serving.server import ReleaseServer
from repro.serving.shm import (
    DEFAULT_PREFIX,
    attach_result_from_shm,
    publish_result_to_shm,
    sweep_stale_segments,
)
from repro.serving.stats import LatencyRecorder, merge_worker_stats

__all__ = ["NetworkServer"]

#: Messages the worker coalesces per pipe read (keeps the per-message
#: overhead amortized without starving control traffic).
_WORKER_COALESCE = 64


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_attach(manifests: dict):
    """Attach every published release; returns (registry, attachments)."""
    registry = ReleaseRegistry()
    attachments: dict = {}
    for name in sorted(manifests):
        attachment = attach_result_from_shm(manifests[name])
        attachments[name] = attachment
        registry.register(name, attachment.result)
    return registry, attachments


def _worker_answer(server: ReleaseServer, payload):
    """Start answering one wire payload; a Future or an error dict."""
    request_id = payload.get("id") if isinstance(payload, dict) else None
    try:
        op = payload.get("op", "query") if isinstance(payload, dict) else "query"
        if op == "query_batch":
            request = QueryBatchRequest.from_dict(payload)
        else:
            request = QueryRequest.from_dict(payload)
        return request_id, server.submit(request)
    except Exception as exc:  # noqa: BLE001 - wire gets structured errors
        return request_id, ErrorResponse.from_exception(exc, request_id).to_dict()


def _worker_main(conn, manifests: dict, options: dict) -> None:
    """The worker process body: attach, serve the pipe, exit on stop.

    Parameters
    ----------
    conn:
        The child end of the worker's duplex pipe.
    manifests:
        ``name -> shm manifest`` for every published release.
    options:
        :class:`~repro.serving.server.ReleaseServer` keyword arguments
        (``max_batch``, ``max_linger_seconds``, ``profile_cache_entries``,
        ``representation``, ``sa_names``, ``latency_window``).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        registry, attachments = _worker_attach(manifests)
        server = ReleaseServer(registry, watch_streams=False, **options)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"kind": "failed", "error": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass
        return
    try:
        conn.send({"kind": "ready", "pid": os.getpid()})
    except OSError:
        server.close()
        return
    running = True
    try:
        while running:
            try:
                batch = [conn.recv()]
                while len(batch) < _WORKER_COALESCE and conn.poll(0):
                    batch.append(conn.recv())
            except (EOFError, OSError):
                break
            replies = []
            for message in batch:
                kind = message.get("kind")
                token = message.get("token")
                if kind == "stop":
                    running = False
                elif kind == "request":
                    request_id, item = _worker_answer(server, message["payload"])
                    replies.append((token, request_id, item))
                elif kind == "stats":
                    snapshot = dataclasses.asdict(server.stats())
                    snapshot["latency_samples"] = server.latency_samples()
                    snapshot["pid"] = os.getpid()
                    replies.append((token, None, {"stats": snapshot}))
                elif kind == "refresh":
                    name = message["name"]
                    try:
                        attachment = attach_result_from_shm(message["manifest"])
                        if name in registry:
                            server.replace(name, attachment.result)
                        else:
                            server.register(name, attachment.result)
                        attachments[name] = attachment
                        replies.append((token, None, {"ok": True}))
                    except Exception as exc:  # noqa: BLE001
                        replies.append(
                            (token, None, {"ok": False, "error": str(exc)})
                        )
            # All requests were submitted above, so the micro-batcher
            # coalesces the whole pipe batch; now resolve in order.
            for token, request_id, item in replies:
                if hasattr(item, "result"):
                    try:
                        response = item.result().to_dict()
                    except Exception as exc:  # noqa: BLE001
                        response = ErrorResponse.from_exception(
                            exc, request_id
                        ).to_dict()
                else:
                    response = item
                try:
                    conn.send({"token": token, "response": response})
                except (BrokenPipeError, OSError):
                    running = False
                    break
    finally:
        server.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent-side worker handle
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle on one worker process (loop-thread state)."""

    __slots__ = (
        "slot",
        "process",
        "conn",
        "pid",
        "alive",
        "pending",
        "semaphore",
        "send_queue",
        "sender_thread",
        "reader_thread",
    )

    def __init__(self, slot: int, process, conn, pid: int, max_pending: int):
        self.slot = slot
        self.process = process
        self.conn = conn
        self.pid = pid
        self.alive = True
        self.pending: dict = {}
        self.semaphore = asyncio.Semaphore(max_pending)
        self.send_queue: _queue_module.SimpleQueue = _queue_module.SimpleQueue()
        self.sender_thread = None
        self.reader_thread = None


class NetworkServer:
    """A TCP serving fleet: asyncio front door, N shared-memory workers.

    Register releases (archives or in-process results) **before**
    :meth:`start`; starting publishes every release's arrays to shared
    memory once, spawns the workers (which attach read-only), and binds
    the listening socket.  The server then answers the same
    newline-delimited JSON protocol as ``python -m repro serve`` —
    ``query`` / ``query_batch`` / ``stats`` / ``list`` — with per-fleet
    ``stats`` aggregation (counters summed across workers, percentiles
    pooled; see :func:`~repro.serving.stats.merge_worker_stats`).

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        Port to bind (``0`` picks a free one; :meth:`start` returns the
        resolved address).
    workers:
        Worker processes to run.
    max_batch, max_linger_seconds, profile_cache_entries, representation, sa_names, planner:
        Forwarded to each worker's per-process
        :class:`~repro.serving.server.ReleaseServer` (``planner=False``
        disables per-plan batch planning in every worker).
    max_pending_per_worker:
        Outstanding requests allowed per worker before the acceptor
        stops reading frames (back-pressure bound).
    max_frame_bytes:
        Longest accepted request line; an oversized frame closes the
        offending connection with a structured error.
    start_method:
        ``multiprocessing`` start method; default prefers
        ``forkserver`` (fast, thread-safe respawns) and falls back to
        ``spawn``.
    watch_streams:
        When True, a background task stat-probes stream-backed archives
        and republishes their segments when the publisher appends an
        epoch — workers re-attach without dropping a single query.
    stream_poll_seconds:
        The stat-probe interval for ``watch_streams``.
    shm_prefix:
        Segment-name prefix (also what the startup stale sweep scans).
    drain_timeout:
        Longest :meth:`close` waits for owed responses to flush.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        max_batch: int = 256,
        max_linger_seconds: float = 0.002,
        profile_cache_entries: int = 4096,
        representation: str | None = None,
        sa_names=None,
        planner: bool = True,
        max_pending_per_worker: int = 64,
        max_frame_bytes: int = 1 << 20,
        start_method: str | None = None,
        watch_streams: bool = True,
        stream_poll_seconds: float = 0.25,
        shm_prefix: str = DEFAULT_PREFIX,
        drain_timeout: float = 10.0,
    ):
        if workers < 1:
            raise ServingError(f"need at least one worker, got {workers}")
        self._host = host
        self._port = int(port)
        self._num_workers = int(workers)
        self._worker_options = {
            "max_batch": int(max_batch),
            "max_linger_seconds": float(max_linger_seconds),
            "profile_cache_entries": int(profile_cache_entries),
            "representation": representation,
            "sa_names": tuple(sa_names) if sa_names is not None else None,
            "planner": bool(planner),
        }
        self._max_pending = int(max_pending_per_worker)
        self._max_frame_bytes = int(max_frame_bytes)
        self._start_method = start_method
        self._watch_streams = bool(watch_streams)
        self._stream_poll_seconds = float(stream_poll_seconds)
        self._shm_prefix = str(shm_prefix)
        self._drain_timeout = float(drain_timeout)
        # Pre-start registrations: ("archive", name, path) / ("memory", name, result)
        self._sources: list = []
        self._names: set = set()
        # Populated by start().
        self._publications: dict = {}
        self._manifests: dict = {}
        self._describe: dict = {}
        self._archive_paths: dict = {}
        self._archive_stats: dict = {}
        self._context = None
        self._workers: list = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._tcp_server = None
        self._address: tuple | None = None
        self._connections: set = set()
        self._respawn_queue: asyncio.Queue | None = None
        self._respawn_task = None
        self._watch_task = None
        self._worker_available: asyncio.Event | None = None
        self._next_token = 0
        self._closing = False
        self._closed = False
        self._started = False
        self._latency = LatencyRecorder()
        self._frames = 0
        self._responses = 0
        self._connections_total = 0
        self._respawns = 0

    # ------------------------------------------------------------------
    # Registration (pre-start)
    # ------------------------------------------------------------------
    def register(self, name: str, result) -> str:
        """Register an in-process result to publish at :meth:`start`.

        Parameters
        ----------
        name:
            Unique release name requests will address.
        result:
            The :class:`~repro.core.framework.PublishResult` to serve.

        Returns
        -------
        str
            The registered name.
        """
        self._check_new_name(name)
        self._sources.append(("memory", name, result))
        return name

    def register_archive(self, path, *, name: str | None = None) -> str:
        """Register an archive to publish at :meth:`start`.

        Parameters
        ----------
        path:
            A ``.npz`` archive written by :func:`repro.io.save_result`.
        name:
            Release name; defaults to the file stem.

        Returns
        -------
        str
            The registered name.
        """
        path = os.path.abspath(os.fspath(path))
        if name is None:
            name = os.path.splitext(os.path.basename(path))[0]
        self._check_new_name(name)
        self._sources.append(("archive", name, path))
        return name

    def _check_new_name(self, name: str) -> None:
        if self._started:
            raise ServingError("register releases before start()")
        if not isinstance(name, str) or not name:
            raise ServingError(
                f"release name must be a non-empty string, got {name!r}"
            )
        if name in self._names:
            raise ServingError(f"release {name!r} is already registered")
        self._names.add(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple | None:
        """The bound ``(host, port)`` once started."""
        return self._address

    @property
    def names(self) -> tuple:
        """Registered release names, sorted."""
        return tuple(sorted(self._names))

    @property
    def worker_pids(self) -> tuple:
        """Pids of the currently live workers."""
        return tuple(w.pid for w in self._workers if w is not None and w.alive)

    @property
    def workers_alive(self) -> int:
        """How many workers are currently live."""
        return len(self.worker_pids)

    @property
    def respawns(self) -> int:
        """Workers respawned after dying (0 in a healthy fleet)."""
        return self._respawns

    def start(self) -> tuple:
        """Publish, spawn the workers, bind the socket.

        Returns
        -------
        tuple
            The resolved ``(host, port)`` the fleet is listening on.
        """
        if self._started:
            raise ServingError("server already started")
        if not self._sources:
            raise ServingError("no releases registered")
        self._started = True
        sweep_stale_segments(prefix=self._shm_prefix)
        try:
            self._publish_all()
            self._context = self._make_context()
            self._workers = [
                self._spawn_worker(slot) for slot in range(self._num_workers)
            ]
            self._start_loop()
            for worker in self._workers:
                self._activate(worker)
        except BaseException:
            self._closing = True
            self._teardown_processes()
            self._teardown_loop()
            self._teardown_shm()
            raise
        return self._address

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the fleet down (idempotent).

        Parameters
        ----------
        drain:
            When True (the SIGTERM path), stop accepting and reading,
            then flush every response already owed to connected clients
            before the workers stop.  When False, abandon them.
        timeout:
            Overrides the construction-time ``drain_timeout``.
        """
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        self._closing = True
        budget = self._drain_timeout if timeout is None else float(timeout)
        if self._loop is not None and self._loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._aclose(drain), self._loop
                ).result(timeout=budget + 5.0)
            except Exception:  # noqa: BLE001 - close must not raise
                pass
        self._teardown_processes()
        self._teardown_loop()
        self._teardown_shm()

    def __enter__(self) -> "NetworkServer":
        """Context-manager entry: starts the fleet, returns self."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drains and closes the fleet."""
        self.close()

    def __repr__(self) -> str:
        state = (
            f"listening on {self._address}" if self._address else "not started"
        )
        return (
            f"NetworkServer(releases={list(self.names)}, "
            f"workers={self._num_workers}, {state})"
        )

    # ------------------------------------------------------------------
    # Stats / refresh (public, any thread)
    # ------------------------------------------------------------------
    def stats(self, *, timeout: float = 10.0) -> dict:
        """Fleet-wide stats: per-worker snapshots merged + front-end counters.

        Parameters
        ----------
        timeout:
            Seconds to wait for every worker's snapshot.

        Returns
        -------
        dict
            The merged :func:`~repro.serving.stats.merge_worker_stats`
            view plus a ``frontend`` section (connections, frames,
            respawns, acceptor-side latency percentiles).
        """
        self._require_running()
        return asyncio.run_coroutine_threadsafe(
            self._collect_stats(), self._loop
        ).result(timeout=timeout)

    def refresh(self, name: str, result=None, *, timeout: float = 60.0) -> None:
        """Republished segments for ``name``; workers re-attach live.

        Queries keep flowing throughout: old segments stay mapped until
        every worker has acknowledged the new manifest, then the parent
        unlinks them (existing mappings remain valid to the last
        in-flight engine).

        Parameters
        ----------
        name:
            A registered release name.
        result:
            Replacement result for an in-memory registration; archive
            registrations reload their file when this is ``None``.
        timeout:
            Seconds to wait for reload + republish + worker acks.
        """
        self._require_running()
        asyncio.run_coroutine_threadsafe(
            self._refresh(name, result), self._loop
        ).result(timeout=timeout)

    def _require_running(self) -> None:
        if not self._started or self._closed or self._loop is None:
            raise ServingError("server is not running", code="closed")

    # ------------------------------------------------------------------
    # Start internals (main thread)
    # ------------------------------------------------------------------
    def _publish_all(self) -> None:
        for kind, name, source in self._sources:
            if kind == "archive":
                result = load_result(source)
                self._archive_paths[name] = source
                self._archive_stats[name] = self._stat_of(source)
            else:
                result = source
            publication = publish_result_to_shm(result, prefix=self._shm_prefix)
            self._publications[name] = publication
            self._manifests[name] = publication.manifest
            self._describe[name] = {
                "name": name,
                "source": source if kind == "archive" else "memory",
                "loaded": True,
                "epsilon": result.epsilon,
                "representation": result.representation,
                "shape": list(result.release.schema.shape),
            }

    @staticmethod
    def _stat_of(path) -> tuple | None:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _make_context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        try:
            context = multiprocessing.get_context("forkserver")
            # Preloading the serving stack makes every later fork of the
            # forkserver (i.e. every respawn) skip the import cost.
            context.set_forkserver_preload(["repro.serving.network"])
            return context
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context("spawn")

    def _spawn_worker(self, slot: int) -> _Worker:
        """Start one worker process and wait for its ready handshake."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._manifests, self._worker_options),
            name=f"repro-net-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(60.0):
                raise ServingError(f"worker {slot} did not come up in 60s")
            greeting = parent_conn.recv()
        except (EOFError, OSError) as exc:
            parent_conn.close()
            process.join(timeout=1.0)
            raise ServingError(f"worker {slot} died during startup") from exc
        if greeting.get("kind") != "ready":
            parent_conn.close()
            process.join(timeout=1.0)
            raise ServingError(
                f"worker {slot} failed to attach: "
                f"{greeting.get('error', greeting)!r}"
            )
        return _Worker(slot, process, parent_conn, greeting["pid"], self._max_pending)

    def _activate(self, worker: _Worker) -> None:
        """Start the worker's sender/reader threads (loop must exist)."""
        worker.sender_thread = threading.Thread(
            target=self._sender_body,
            args=(worker,),
            name=f"repro-net-sender-{worker.slot}",
            daemon=True,
        )
        worker.reader_thread = threading.Thread(
            target=self._reader_body,
            args=(worker,),
            name=f"repro-net-reader-{worker.slot}",
            daemon=True,
        )
        worker.sender_thread.start()
        worker.reader_thread.start()

    def _start_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._tcp_server = self._loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection,
                        self._host,
                        self._port,
                        limit=self._max_frame_bytes,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - surfaced to start()
                failure.append(exc)
                ready.set()
                return
            socket_name = self._tcp_server.sockets[0].getsockname()
            self._address = (socket_name[0], socket_name[1])
            self._respawn_queue = asyncio.Queue()
            self._worker_available = asyncio.Event()
            self._worker_available.set()
            self._respawn_task = self._loop.create_task(self._respawn_loop())
            if self._watch_streams and any(
                self._describe[n]["representation"] == "stream"
                for n in self._archive_paths
            ):
                self._watch_task = self._loop.create_task(self._watch_loop())
            ready.set()
            try:
                self._loop.run_forever()
            finally:
                tasks = asyncio.all_tasks(self._loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    self._loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
                self._loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-net-loop", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=30.0)
        if failure:
            raise ServingError(f"could not bind {self._host}:{self._port}: {failure[0]}")
        if self._address is None:
            raise ServingError("event loop failed to start")

    # ------------------------------------------------------------------
    # Worker pipe threads
    # ------------------------------------------------------------------
    def _sender_body(self, worker: _Worker) -> None:
        while True:
            message = worker.send_queue.get()
            if message is None:
                return
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                return

    def _reader_body(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                break
            # Delivery hops to the loop thread so all worker state
            # (pending maps, semaphores) is single-threaded there.
            self._call_on_loop(self._deliver, worker, message)
        self._call_on_loop(self._worker_lost, worker)

    def _call_on_loop(self, fn, *args) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:  # loop already closed during shutdown
            pass

    # ------------------------------------------------------------------
    # Loop-thread worker state
    # ------------------------------------------------------------------
    def _deliver(self, worker: _Worker, message: dict) -> None:
        entry = worker.pending.pop(message.get("token"), None)
        if entry is None:
            return
        future, _ = entry
        if not future.done():
            future.set_result(message.get("response"))

    def _worker_lost(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        worker.alive = False
        pending, worker.pending = worker.pending, {}
        for future, request_id in pending.values():
            if not future.done():
                future.set_result(
                    ErrorResponse(
                        "worker-lost",
                        f"worker pid {worker.pid} died mid-request; "
                        "it is being respawned",
                        request_id,
                    ).to_dict()
                )
        if not self._closing and self._respawn_queue is not None:
            if not any(w is not None and w.alive for w in self._workers):
                self._worker_available.clear()
            self._respawn_queue.put_nowait(worker.slot)

    async def _respawn_loop(self) -> None:
        while True:
            slot = await self._respawn_queue.get()
            if self._closing:
                continue
            old = self._workers[slot]
            if old is not None:
                await self._loop.run_in_executor(None, self._reap, old)
            failures = 0
            while not self._closing:
                try:
                    worker = await self._loop.run_in_executor(
                        None, self._spawn_worker, slot
                    )
                except ServingError:
                    failures += 1
                    if failures >= 5:
                        self._workers[slot] = None
                        break
                    await asyncio.sleep(0.2 * failures)
                    continue
                self._activate(worker)
                self._workers[slot] = worker
                self._respawns += 1
                self._worker_available.set()
                break

    def _reap(self, worker: _Worker) -> None:
        worker.send_queue.put(None)
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.kill()
            worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Dispatch (loop thread)
    # ------------------------------------------------------------------
    async def _dispatch(self, payload, request_id):
        """Assign one wire payload to the least-loaded live worker.

        Returns the asyncio future its response will resolve; raises
        ``unavailable`` only if no worker comes back within 10s.
        """
        deadline = self._loop.time() + 10.0
        while True:
            alive = [w for w in self._workers if w is not None and w.alive]
            if alive:
                worker = min(alive, key=lambda w: len(w.pending))
                await worker.semaphore.acquire()
                if worker.alive:
                    break
                worker.semaphore.release()
                continue
            remaining = deadline - self._loop.time()
            if remaining <= 0 or self._closing:
                raise ServingError(
                    "no live worker available", code="unavailable"
                )
            try:
                await asyncio.wait_for(
                    self._worker_available.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                raise ServingError(
                    "no live worker available", code="unavailable"
                ) from None
        token = self._next_token
        self._next_token += 1
        future = self._loop.create_future()
        worker.pending[token] = (future, request_id)
        start = self._loop.time()

        def on_done(_f, worker=worker, start=start):
            worker.semaphore.release()
            self._latency.record_latency(self._loop.time() - start)

        future.add_done_callback(on_done)
        worker.send_queue.put(
            {"kind": "request", "token": token, "payload": payload}
        )
        return future

    async def _control(self, worker: _Worker, message: dict, timeout: float = 10.0):
        """Send one control message; await the worker's reply dict."""
        token = self._next_token
        self._next_token += 1
        future = self._loop.create_future()
        worker.pending[token] = (future, None)
        worker.send_queue.put(dict(message, token=token))
        return await asyncio.wait_for(future, timeout=timeout)

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        if self._closing:
            writer.close()
            return
        conn = _Connection()
        self._connections.add(conn)
        self._connections_total += 1
        try:
            conn.reader_task = asyncio.ensure_future(
                self._read_frames(reader, conn)
            )
            conn.writer_task = asyncio.ensure_future(
                self._write_frames(writer, conn)
            )
            await asyncio.gather(
                conn.reader_task, conn.writer_task, return_exceptions=True
            )
        finally:
            self._connections.discard(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_frames(self, reader, conn) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized frame: answer once, close this connection.
                    conn.queue.put_nowait(
                        ErrorResponse(
                            "bad-request",
                            f"frame exceeds {self._max_frame_bytes} bytes",
                        ).to_dict()
                    )
                    return
                if not line:
                    return  # clean EOF
                if not line.endswith(b"\n"):
                    return  # truncated final frame: drop it, close
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    conn.queue.put_nowait(
                        ErrorResponse(
                            "bad-request", f"malformed JSON request: {exc}"
                        ).to_dict()
                    )
                    return  # malformed frame: close only this connection
                self._frames += 1
                await self._route(payload, conn)
        except (ConnectionError, OSError):
            return
        finally:
            conn.queue.put_nowait(None)

    async def _route(self, payload, conn) -> None:
        request_id = payload.get("id") if isinstance(payload, dict) else None
        op = payload.get("op", "query") if isinstance(payload, dict) else "query"
        if op == "stats":
            conn.queue.put_nowait(
                asyncio.ensure_future(self._stats_response(request_id))
            )
        elif op == "list":
            conn.queue.put_nowait(
                {
                    "ok": True,
                    "id": request_id,
                    "releases": [
                        dict(self._describe[name]) for name in sorted(self._describe)
                    ],
                }
            )
        elif op not in ("query", "query_batch"):
            conn.queue.put_nowait(
                ErrorResponse(
                    "bad-request", f"unknown op {op!r}", request_id
                ).to_dict()
            )
        else:
            try:
                future = await self._dispatch(payload, request_id)
            except ServingError as exc:
                conn.queue.put_nowait(
                    ErrorResponse.from_exception(exc, request_id).to_dict()
                )
            else:
                conn.queue.put_nowait(future)

    async def _write_frames(self, writer, conn) -> None:
        while True:
            item = await conn.queue.get()
            if item is None:
                return
            if asyncio.isfuture(item):
                payload = await item
            else:
                payload = item
            try:
                writer.write(json.dumps(payload).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                # Client went away mid-batch: stop reading its frames.
                # In-flight futures still resolve in their workers and
                # release their back-pressure slots via done-callbacks.
                if conn.reader_task is not None:
                    conn.reader_task.cancel()
                return
            self._responses += 1

    async def _stats_response(self, request_id) -> dict:
        try:
            return {
                "ok": True,
                "id": request_id,
                "stats": await self._collect_stats(),
            }
        except Exception as exc:  # noqa: BLE001 - wire gets structured errors
            return ErrorResponse.from_exception(exc, request_id).to_dict()

    async def _collect_stats(self) -> dict:
        alive = [w for w in self._workers if w is not None and w.alive]
        replies = await asyncio.gather(
            *(self._control(w, {"kind": "stats"}) for w in alive),
            return_exceptions=True,
        )
        snapshots = [
            r["stats"]
            for r in replies
            if isinstance(r, dict) and "stats" in r
        ]
        merged = merge_worker_stats(snapshots)
        p50, p99 = self._latency.percentiles()
        merged["frontend"] = {
            "connections_open": len(self._connections),
            "connections_total": self._connections_total,
            "frames": self._frames,
            "responses": self._responses,
            "workers_alive": len(alive),
            "worker_respawns": self._respawns,
            "p50_latency_seconds": p50,
            "p99_latency_seconds": p99,
        }
        return merged

    # ------------------------------------------------------------------
    # Refresh / stream watching (loop thread)
    # ------------------------------------------------------------------
    async def _refresh(self, name: str, result=None) -> None:
        if name not in self._manifests:
            raise ServingError(
                f"unknown release {name!r}", code="unknown-release"
            )
        if result is None:
            path = self._archive_paths.get(name)
            if path is None:
                raise ServingError(
                    f"release {name!r} is in-memory; pass the replacement "
                    "result to refresh()"
                )
            self._archive_stats[name] = self._stat_of(path)
            result = await self._loop.run_in_executor(None, load_result, path)
        publication = await self._loop.run_in_executor(
            None, lambda: publish_result_to_shm(result, prefix=self._shm_prefix)
        )
        old = self._publications[name]
        self._publications[name] = publication
        self._manifests[name] = publication.manifest
        self._describe[name].update(
            epsilon=result.epsilon,
            representation=result.representation,
            shape=list(result.release.schema.shape),
        )
        alive = [w for w in self._workers if w is not None and w.alive]
        acks = await asyncio.gather(
            *(
                self._control(
                    w,
                    {
                        "kind": "refresh",
                        "name": name,
                        "manifest": publication.manifest,
                    },
                    timeout=30.0,
                )
                for w in alive
            ),
            return_exceptions=True,
        )
        # Old segments: names go away now; mappings workers still hold
        # (engines mid-request) stay valid until they drop them.
        old.close()
        old.unlink()
        problems = [
            ack
            for ack in acks
            if not (isinstance(ack, dict) and ack.get("ok"))
        ]
        if problems:
            raise ServingError(
                f"refresh of {name!r} failed on {len(problems)} worker(s): "
                f"{problems[0]!r}"
            )

    async def _watch_loop(self) -> None:
        while True:
            await asyncio.sleep(self._stream_poll_seconds)
            if self._closing:
                return
            for name, path in list(self._archive_paths.items()):
                if self._describe[name]["representation"] != "stream":
                    continue
                stat = self._stat_of(path)
                if stat is None or stat == self._archive_stats.get(name):
                    continue
                try:
                    await self._refresh(name)
                except Exception:  # noqa: BLE001 - retried next poll
                    pass

    # ------------------------------------------------------------------
    # Shutdown internals
    # ------------------------------------------------------------------
    async def _aclose(self, drain: bool) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in (self._respawn_task, self._watch_task):
            if task is not None:
                task.cancel()
        connections = list(self._connections)
        for conn in connections:
            if conn.reader_task is not None:
                conn.reader_task.cancel()
        writers = [
            conn.writer_task
            for conn in connections
            if conn.writer_task is not None
        ]
        if drain and writers:
            # Every frame already read gets its response written before
            # the workers go away.
            await asyncio.wait(writers, timeout=self._drain_timeout)
        else:
            for task in writers:
                task.cancel()

    def _teardown_processes(self) -> None:
        for worker in self._workers:
            if worker is None:
                continue
            worker.send_queue.put({"kind": "stop"})
            worker.send_queue.put(None)
        for worker in self._workers:
            if worker is None:
                continue
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def _teardown_loop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None

    def _teardown_shm(self) -> None:
        for publication in self._publications.values():
            publication.close()
            publication.unlink()
        self._publications = {}


class _Connection:
    """Per-connection loop-thread state: ordered response queue + tasks."""

    __slots__ = ("queue", "reader_task", "writer_task")

    def __init__(self):
        self.queue: asyncio.Queue = asyncio.Queue()
        self.reader_task = None
        self.writer_task = None
