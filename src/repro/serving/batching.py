"""Adaptive micro-batching: coalesce concurrent requests into one call.

The batch query engine answers 256 queries for barely more than it
answers one (one vectorized gather, one compiled variance pass), so a
server under concurrent traffic should never answer queries one at a
time.  :class:`MicroBatcher` is the piece that turns *concurrency* into
*batches*: callers submit single items and get futures; one drain thread
collects everything that arrives within a short linger window (up to
``max_batch``) and hands the whole batch to the handler at once.

The linger is **adaptive**, the same idea as NIC interrupt coalescing:
after a batch of one, the window halves (a lone client should not pay
latency for coalescing that is not happening); after any batch that
actually coalesced (two or more items) it doubles, up to
``max_linger_seconds`` — coalescing at all proves concurrent traffic is
present, and a longer window only makes the batches better.  Under a
steady load the window settles where batching pays and solo traffic
degrades to pass-through.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

from repro.errors import ServingError
from repro.utils.validation import ensure_positive_int

__all__ = ["MicroBatcher"]

_SHUTDOWN = object()
#: Linger floor used when growing from a zero window.
_MIN_GROW_SECONDS = 1e-4


class MicroBatcher:
    """Coalesce concurrently submitted items into handler batches.

    Parameters
    ----------
    handler:
        Callable receiving a non-empty list of submitted items and
        returning an equal-length list of results.  A result that is an
        :class:`Exception` instance is set as that item's future
        exception (per-item failure isolation); a raised exception fails
        the whole batch.
    max_batch:
        Most items handed to one handler call.
    max_linger_seconds:
        Upper bound on how long the drain thread waits after the first
        item of a batch for more to arrive.
    min_linger_seconds:
        Lower bound the adaptive window can shrink to (0 = pass-through
        when traffic is solo).
    name:
        Thread name, for debuggability of multi-server processes.
    """

    def __init__(
        self,
        handler,
        *,
        max_batch: int = 256,
        max_linger_seconds: float = 0.002,
        min_linger_seconds: float = 0.0,
        name: str = "repro-microbatcher",
    ):
        self._handler = handler
        self._max_batch = ensure_positive_int(max_batch, "max_batch")
        if not 0.0 <= min_linger_seconds <= max_linger_seconds:
            raise ServingError(
                f"need 0 <= min_linger_seconds <= max_linger_seconds, got "
                f"{min_linger_seconds} and {max_linger_seconds}"
            )
        self._min_linger = float(min_linger_seconds)
        self._max_linger = float(max_linger_seconds)
        self._linger = self._max_linger
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        # Serializes submit vs close: the closed check and the enqueue
        # must be atomic, or a submit racing close could land its item
        # after the shutdown marker drains and never resolve its future.
        self._lifecycle_lock = threading.Lock()
        #: Handler invocations so far.
        self.batches = 0
        #: Weighted units drained into batches so far (a columnar item
        #: submitted with ``weight=n`` counts n).
        self.items = 0
        #: Largest weighted batch handed to the handler so far.
        self.largest_batch = 0
        self._thread = threading.Thread(
            target=self._drain_loop, name=name, daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def linger_seconds(self) -> float:
        """The current adaptive linger window (diagnostics)."""
        return self._linger

    @property
    def mean_batch_size(self) -> float:
        """Average items per handler call so far."""
        return self.items / self.batches if self.batches else 0.0

    def submit(self, item, *, weight: int = 1) -> Future:
        """Enqueue one item; returns the future of its handler result.

        Parameters
        ----------
        item:
            Any payload the handler understands.
        weight:
            How many logical units this item counts toward
            ``max_batch`` — a columnar batch of *n* rows submits with
            ``weight=n`` so coalescing stays bounded by total rows, not
            by wire-item count.  The handler still receives the item as
            one list entry.

        Returns
        -------
        concurrent.futures.Future
            Resolves to the handler's result for this item, or raises
            the per-item / per-batch exception.
        """
        weight = ensure_positive_int(weight, "weight")
        future: Future = Future()
        with self._lifecycle_lock:
            if self._closed:
                raise ServingError("batcher is closed", code="closed")
            self._queue.put((item, future, weight))
        return future

    def close(self, *, timeout: float = 5.0) -> bool:
        """Stop the drain thread; fail still-queued items with ``closed``.

        Idempotent.  Items already handed to the handler complete
        normally; the join waits at most ``timeout`` seconds.

        Parameters
        ----------
        timeout:
            Seconds to wait for the drain thread to exit.

        Returns
        -------
        bool
            True once the drain thread has exited — every accepted
            future is resolved.  False if the join timed out (e.g. a
            handler is still running): outstanding futures may never
            resolve, so callers who block on them should check this.
        """
        with self._lifecycle_lock:
            if not self._closed:
                self._closed = True
                # Under the lock, so every accepted item precedes the
                # shutdown marker in the FIFO and gets handled or failed.
                self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "MicroBatcher":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: closes the batcher."""
        self.close()

    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        shutdown = False
        while not shutdown:
            entry = self._queue.get()
            if entry is _SHUTDOWN:
                break
            batch = [entry]
            weight = entry[2]
            deadline = time.monotonic() + self._linger
            while weight < self._max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(entry)
                weight += entry[2]
            self._dispatch(batch, weight)
            self._adapt(len(batch))
        self._fail_pending()

    def _dispatch(self, batch, weight: int) -> None:
        self.batches += 1
        self.items += weight
        self.largest_batch = max(self.largest_batch, weight)
        futures = [future for _, future, _ in batch]
        try:
            results = self._handler([item for item, _, _ in batch])
            if len(results) != len(batch):
                raise ServingError(
                    f"handler returned {len(results)} results for a batch "
                    f"of {len(batch)}"
                )
        except Exception as exc:  # noqa: BLE001 - forwarded to futures
            for future in futures:
                future.set_exception(exc)
            return
        for future, result in zip(futures, results):
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    def _adapt(self, batch_size: int) -> None:
        # Grow on *any* coalesced batch (>= 2), not only near-full ones:
        # a quiet period ratchets the window toward zero, and medium
        # steady traffic (batches of 8-64) would otherwise never rebuild
        # it — batching collapsed exactly when it paid most.
        if batch_size <= 1:
            self._linger = max(self._min_linger, self._linger / 2.0)
        else:
            self._linger = min(
                self._max_linger, max(self._linger * 2.0, _MIN_GROW_SECONDS)
            )

    def _fail_pending(self) -> None:
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return
            if entry is not _SHUTDOWN:
                entry[1].set_exception(
                    ServingError("batcher is closed", code="closed")
                )
