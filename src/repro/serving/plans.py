"""Compiled plans: per-shape serving state reused across columnar batches.

Decoding a columnar batch is O(ndarray), but *binding* it still needs
per-shape work: resolve the release name to an engine (dict lookups
under locks), map attribute names to schema axes, and build the
full-domain default bounds for the unnamed axes.  None of that depends
on the batch's actual lo/hi values — only on its **shape**:
``(release, attribute set, time_range)``.  :class:`PlanCache` memoizes
exactly that state as a :class:`CompiledPlan`, so a hot dashboard
workload (the same widgets re-asking the same release/attribute shape
all day) pays the resolution once and every later batch goes straight
from wire arrays to :meth:`~repro.queries.engine.QueryEngine.
answer_columnar`.

The plan also pins the engine it compiled against, which is what makes
the per-axis profile state compound across batches: every batch bound
through one plan hits the same engine's
:class:`~repro.analysis.exact.AxisProfileCache` (the serving layer's
bounded LRU subclass), the same memoized adjoint profiles the
:class:`~repro.analysis.exact.CompiledWorkload` analysis path
deduplicates per axis — recompilation is skipped entirely, not merely
made cheaper.

A plan may also carry a per-shape
:class:`~repro.planner.QueryPlanner` (the server installs one
unless planning is disabled).  The planner is plan-scoped on purpose:
its materialized marginal views are post-processing of one release
snapshot, so dropping the plan — eviction, invalidation, or a stream
refresh — drops the views with it and the next batch re-plans against
the fresh engine.  Nothing stale can ever be served.  The planner's
monotone counters survive that churn: :class:`PlanCache` folds a
retiring plan's counters into a retired tally so
:meth:`PlanCache.planner_stats` never goes backwards.

Plans are **invalidated, never refreshed in place**: when a stream
archive grows and the server swaps the release, every plan touching
that release is dropped and the next batch recompiles against the new
engine (an evicted or invalidated plan recompiles *identically* — the
plan holds no per-batch state).  The cache is LRU-bounded so arbitrary
shape churn cannot grow server memory without limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = ["CompiledPlan", "PlanCache"]


@dataclass(frozen=True, eq=False)
class CompiledPlan:
    """One batch shape, compiled: engine + axis map + domain template.

    Built by :class:`PlanCache`; holds everything shape-dependent so a
    batch binds with two vectorized scatters and one bounds check.

    Parameters
    ----------
    key:
        The ``(release, attribute names, time_range)`` shape this plan
        serves.
    engine:
        The resolved :class:`~repro.queries.engine.QueryEngine` (its
        profile caches are the cross-batch axis-profile state).
    axes:
        Schema axis index per named attribute, aligned with the key's
        name tuple.
    planner:
        Optional per-shape :class:`~repro.planner.QueryPlanner`
        batches are answered through; ``None`` sends batches straight
        to the engine.
    """

    key: tuple
    engine: object
    axes: tuple = field(default_factory=tuple)
    planner: object | None = None

    @property
    def schema(self):
        """The bound engine's schema."""
        return self.engine.schema

    def bind(self, request) -> tuple[np.ndarray, np.ndarray]:
        """Full ``(n, d)`` bound arrays for ``request`` under this plan.

        Delegates to :meth:`~repro.serving.requests.QueryBatchRequest.
        bind` with the cached axis map — no name resolution per batch.
        """
        return request.bind(self.engine.schema, axes=self.axes)

    def answer(self, request):
        """Answer one columnar ``request`` end to end (bind + engine).

        Returns
        -------
        repro.queries.engine.BatchQueryAnswers
            Arrays aligned with the request's rows.
        """
        lows, highs = self.bind(request)
        return self.answer_columnar(lows, highs, request.confidence)

    def answer_columnar(self, lows, highs, confidence: float):
        """Answer bound arrays through the planner when one is attached.

        The planner's answers are bit-for-bit the engine's (see
        :mod:`repro.planner`), so which path a plan takes is
        invisible in the responses — only in the work done.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` bound arrays over the plan's schema.
        confidence:
            Two-sided coverage level in ``(0, 1)``.

        Returns
        -------
        repro.queries.engine.BatchQueryAnswers
            Arrays aligned with the rows.
        """
        target = self.planner if self.planner is not None else self.engine
        return target.answer_columnar(lows, highs, confidence)


class PlanCache:
    """LRU-bounded ``plan_key -> CompiledPlan`` store for a server.

    Parameters
    ----------
    resolve_engine:
        Callable ``(release_name, time_range) -> QueryEngine`` — the
        server's engine accessor, called only on a cache miss.
    max_plans:
        Most compiled plans kept; the least recently used plan beyond
        that is evicted (eviction loses no answers — an evicted shape
        recompiles identically on its next batch, and the underlying
        engine profile caches are owned by the engines, not the plan).
    planner_factory:
        Optional callable ``engine -> QueryPlanner`` run on every plan
        compile; the planner is attached to the plan and dropped with
        it (so its materialized views never outlive the plan's engine).
        ``None`` compiles plain engine-only plans.

    Thread-safety: lookups and inserts are lock-guarded so direct
    callers may share the cache with the batcher's drain thread.
    """

    #: Monotone planner counters folded when a plan retires.
    _PLANNER_COUNTERS = ("rows_planned", "rows_deduped", "view_rows", "views_built")

    def __init__(self, resolve_engine, *, max_plans: int = 256, planner_factory=None):
        self._resolve = resolve_engine
        self._max_plans = ensure_positive_int(max_plans, "max_plans")
        self._planner_factory = planner_factory
        self._plans: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._retired = dict.fromkeys(self._PLANNER_COUNTERS, 0)
        #: Batches that found their shape compiled.
        self.hits = 0
        #: Batches that had to compile their shape.
        self.misses = 0
        #: Plans dropped to respect the bound (monotone counter).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def max_plans(self) -> int:
        """The configured plan bound."""
        return self._max_plans

    @property
    def hit_rate(self) -> float:
        """Fraction of plan lookups served without compiling."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def plan(self, key: tuple) -> CompiledPlan:
        """The compiled plan for ``key``, compiling on first touch.

        Parameters
        ----------
        key:
            A :attr:`~repro.serving.requests.QueryBatchRequest.plan_key`
            triple ``(release, names, time_range)``.

        Returns
        -------
        CompiledPlan
            Ready to bind batches of that shape.  Resolution errors
            (unknown release, unknown attribute, bad window) propagate
            to the caller uncached — a failing shape never poisons the
            cache.
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan
        release_name, names, time_range = key
        engine = self._resolve(release_name, time_range)
        axes = engine.schema.axes_of(names)
        planner = (
            self._planner_factory(engine) if self._planner_factory is not None else None
        )
        plan = CompiledPlan(key=key, engine=engine, axes=axes, planner=planner)
        with self._lock:
            self.misses += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._max_plans:
                _, evicted = self._plans.popitem(last=False)
                self._fold_retired(evicted)
                self.evictions += 1
        return plan

    def _fold_retired(self, plan: CompiledPlan) -> None:
        """Fold a retiring plan's planner counters (call under the lock)."""
        if plan.planner is None:
            return
        for name in self._PLANNER_COUNTERS:
            self._retired[name] += int(getattr(plan.planner, name, 0))

    def planner_stats(self) -> dict:
        """Aggregate planner counters across live and retired plans.

        Returns
        -------
        dict
            ``rows_planned`` / ``rows_deduped`` / ``view_rows`` /
            ``views_built`` summed over every planner this cache ever
            compiled (monotone — retiring a plan folds its tally in)
            plus ``views`` (currently materialized cubes, live plans
            only).
        """
        with self._lock:
            totals = dict(self._retired)
            views = 0
            for plan in self._plans.values():
                if plan.planner is None:
                    continue
                for name in self._PLANNER_COUNTERS:
                    totals[name] += int(getattr(plan.planner, name, 0))
                views += plan.planner.num_views
            totals["views"] = views
        return totals

    def invalidate(self, release_name: str) -> int:
        """Drop every plan compiled against ``release_name``.

        Called by the server whenever it swaps a release (stream
        refresh); the next batch of each dropped shape recompiles
        against the fresh engine.

        Returns
        -------
        int
            How many plans were dropped.
        """
        with self._lock:
            stale = [key for key in self._plans if key[0] == release_name]
            for key in stale:
                self._fold_retired(self._plans.pop(key))
        return len(stale)

    def clear(self) -> None:
        """Drop every plan (counters are preserved)."""
        with self._lock:
            for plan in self._plans.values():
                self._fold_retired(plan)
            self._plans.clear()

    def __repr__(self) -> str:
        return (
            f"PlanCache(plans={len(self._plans)}, max={self._max_plans}, "
            f"hits={self.hits}, misses={self.misses})"
        )
