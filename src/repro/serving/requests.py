"""Wire types of the serving layer: requests and responses.

A :class:`QueryRequest` names a registered release and carries one
range-count query as per-attribute half-open ranges — the serving-layer
analogue of :class:`~repro.queries.query.RangeCountQuery`, except it is
*unbound*: it references attributes by name and is only compiled against
a schema (:meth:`QueryRequest.to_query`) once the server has resolved
the release.  Responses are plain dataclasses with a stable JSON form,
so the ``python -m repro serve`` JSONL loop and in-process callers see
the same shapes.

Wire format (one JSON object per line)::

    {"id": 7, "release": "brazil", "ranges": {"Age": [18, 65]},
     "confidence": 0.95}

    {"id": 8, "release": "events", "ranges": {"Age": [18, 65]},
     "time_range": [3, 11]}

    {"ok": true, "id": 7, "release": "brazil", "estimate": 1234.5,
     "noise_std": 21.9, "lower": 1191.6, "upper": 1277.4,
     "confidence": 0.95}

    {"ok": false, "id": 7, "code": "unknown-release",
     "error": "unknown release 'brazil'; registered: ('us',)"}

Failures never surface as tracebacks on the wire: every error becomes an
:class:`ErrorResponse` whose ``code`` is machine-readable
(``bad-request``, ``unknown-release``, ``closed``, ``internal``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError, ServingError
from repro.queries.predicate import Predicate
from repro.queries.query import RangeCountQuery

__all__ = ["QueryRequest", "QueryResponse", "ErrorResponse", "parse_request_line"]


@dataclass(frozen=True)
class QueryRequest:
    """One range-count query addressed to a named release.

    Parameters
    ----------
    release:
        Name of the target release in the server's registry.
    ranges:
        Per-attribute half-open ranges — a mapping ``{name: (lo, hi)}``
        or an iterable of ``(name, lo, hi)`` triples.  Attributes not
        named default to their full domain, exactly like a
        :class:`~repro.queries.query.RangeCountQuery` with missing
        predicates.  Normalized to a sorted tuple of triples so equal
        requests hash and compare equal (which is what makes
        dashboard-style traffic cache-friendly).
    confidence:
        Two-sided confidence level for the interval, in ``(0, 1)``.
    time_range:
        Optional half-open epoch window ``(lo, hi)`` for stream-backed
        releases; ``hi`` may be ``None`` for "through the newest closed
        epoch".  Addressing a non-stream release with a time range is a
        ``bad-request``.
    request_id:
        Opaque caller token echoed back on the response (any JSON-able
        value).
    """

    release: str
    ranges: tuple = field(default_factory=tuple)
    confidence: float = 0.95
    time_range: tuple | None = None
    request_id: object = None

    def __post_init__(self):
        if not isinstance(self.release, str) or not self.release:
            raise ServingError(
                f"request needs a non-empty release name, got {self.release!r}"
            )
        try:
            confidence = float(self.confidence)
        except (TypeError, ValueError):
            raise ServingError(
                f"confidence must be a number, got {self.confidence!r}"
            ) from None
        if not 0.0 < confidence < 1.0:
            raise ServingError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        object.__setattr__(self, "confidence", confidence)
        items = (
            self.ranges.items()
            if isinstance(self.ranges, dict)
            else self.ranges
        )
        normalized = []
        for item in items:
            try:
                if isinstance(self.ranges, dict):
                    name, (lo, hi) = item
                else:
                    name, lo, hi = item
                normalized.append((str(name), int(lo), int(hi)))
            except (TypeError, ValueError):
                raise ServingError(
                    f"each range must be (attribute, lo, hi), got {item!r}"
                ) from None
        object.__setattr__(self, "ranges", tuple(sorted(normalized)))
        if self.time_range is not None:
            window = tuple(self.time_range)
            if len(window) != 2:
                raise ServingError(
                    f"time_range must be [lo, hi], got {self.time_range!r}"
                )
            lo, hi = window
            try:
                lo = int(lo)
                hi = None if hi is None else int(hi)
            except (TypeError, ValueError):
                raise ServingError(
                    f"time_range bounds must be integers (hi may be null), "
                    f"got {self.time_range!r}"
                ) from None
            if lo < 0 or (hi is not None and hi < lo):
                raise ServingError(f"invalid time_range [{lo}, {hi})")
            object.__setattr__(self, "time_range", (lo, hi))

    @classmethod
    def from_dict(cls, payload) -> "QueryRequest":
        """Build a request from a decoded wire payload.

        Parameters
        ----------
        payload:
            A JSON object with ``release`` (required), ``ranges``
            (optional mapping ``{name: [lo, hi]}``), ``confidence``
            (optional), ``time_range`` (optional ``[lo, hi]`` epoch
            window for stream releases, ``hi`` may be ``null``), and
            ``id`` (optional).

        Returns
        -------
        QueryRequest
            The validated request.  Raises
            :class:`~repro.errors.ServingError` on any malformed field.
        """
        if not isinstance(payload, dict):
            raise ServingError(f"request must be a JSON object, got {payload!r}")
        unknown = set(payload) - {
            "release", "ranges", "confidence", "time_range", "id", "op",
        }
        if unknown:
            raise ServingError(f"unknown request fields: {sorted(unknown)}")
        if "release" not in payload:
            raise ServingError("request lacks the required 'release' field")
        ranges = payload.get("ranges", {})
        if not isinstance(ranges, dict):
            raise ServingError(
                f"'ranges' must be an object of {{attribute: [lo, hi]}}, "
                f"got {ranges!r}"
            )
        time_range = payload.get("time_range")
        if time_range is not None and not isinstance(time_range, (list, tuple)):
            raise ServingError(
                f"'time_range' must be [lo, hi], got {time_range!r}"
            )
        return cls(
            release=payload["release"],
            ranges=ranges,
            confidence=payload.get("confidence", 0.95),
            time_range=time_range,
            request_id=payload.get("id"),
        )

    def to_dict(self) -> dict:
        """The wire form of this request (inverse of :meth:`from_dict`)."""
        payload = {
            "release": self.release,
            "ranges": {name: [lo, hi] for name, lo, hi in self.ranges},
            "confidence": self.confidence,
        }
        if self.time_range is not None:
            payload["time_range"] = list(self.time_range)
        if self.request_id is not None:
            payload["id"] = self.request_id
        return payload

    def to_query(self, schema) -> RangeCountQuery:
        """Bind this request to a schema as a range-count query.

        Parameters
        ----------
        schema:
            The resolved release's :class:`~repro.data.schema.Schema`.

        Returns
        -------
        RangeCountQuery
            Query with one predicate per named range.  Unknown attribute
            names or out-of-bounds ranges raise
            :class:`~repro.errors.QueryError` (mapped to a
            ``bad-request`` response by the server).
        """
        predicates = tuple(
            Predicate(name, lo, hi) for name, lo, hi in self.ranges
        )
        return RangeCountQuery(schema, predicates)


@dataclass(frozen=True)
class QueryResponse:
    """A served answer: estimate, exact noise std, and interval."""

    release: str
    estimate: float
    noise_std: float
    lower: float
    upper: float
    confidence: float
    request_id: object = None

    def to_dict(self) -> dict:
        """The JSONL wire form (``ok: true``)."""
        return {
            "ok": True,
            "id": self.request_id,
            "release": self.release,
            "estimate": self.estimate,
            "noise_std": self.noise_std,
            "lower": self.lower,
            "upper": self.upper,
            "confidence": self.confidence,
        }


@dataclass(frozen=True)
class ErrorResponse:
    """A structured failure: machine-readable code plus a message."""

    code: str
    error: str
    request_id: object = None

    @classmethod
    def from_exception(cls, exc: Exception, request_id=None) -> "ErrorResponse":
        """Map an exception to its wire form.

        :class:`~repro.errors.ServingError` keeps its own ``code``;
        every other library error is a ``bad-request``; anything else is
        ``internal`` (and still never a traceback on the wire).
        """
        if isinstance(exc, ServingError):
            code = exc.code
        elif isinstance(exc, ReproError):
            code = "bad-request"
        else:
            code = "internal"
        return cls(code=code, error=str(exc), request_id=request_id)

    def to_dict(self) -> dict:
        """The JSONL wire form (``ok: false``)."""
        return {
            "ok": False,
            "id": self.request_id,
            "code": self.code,
            "error": self.error,
        }


def parse_request_line(line: str) -> QueryRequest:
    """Decode one JSONL request line into a :class:`QueryRequest`.

    Parameters
    ----------
    line:
        One line of the ``serve`` loop's stdin.

    Returns
    -------
    QueryRequest
        The parsed request; malformed JSON raises
        :class:`~repro.errors.ServingError` so the loop can answer with
        a ``bad-request`` :class:`ErrorResponse` instead of crashing.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServingError(f"malformed JSON request: {exc}") from exc
    return QueryRequest.from_dict(payload)
