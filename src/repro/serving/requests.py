"""Wire types of the serving layer: requests and responses.

A :class:`QueryRequest` names a registered release and carries one
range-count query as per-attribute half-open ranges — the serving-layer
analogue of :class:`~repro.queries.query.RangeCountQuery`, except it is
*unbound*: it references attributes by name and is only compiled against
a schema (:meth:`QueryRequest.to_query`) once the server has resolved
the release.  Responses are plain dataclasses with a stable JSON form,
so the ``python -m repro serve`` JSONL loop and in-process callers see
the same shapes.

Wire format (one JSON object per line)::

    {"id": 7, "release": "brazil", "ranges": {"Age": [18, 65]},
     "confidence": 0.95}

    {"id": 8, "release": "events", "ranges": {"Age": [18, 65]},
     "time_range": [3, 11]}

    {"ok": true, "id": 7, "release": "brazil", "estimate": 1234.5,
     "noise_std": 21.9, "lower": 1191.6, "upper": 1277.4,
     "confidence": 0.95}

    {"ok": false, "id": 7, "code": "unknown-release",
     "error": "unknown release 'brazil'; registered: ('us',)"}

A :class:`QueryBatchRequest` is the **columnar** form of the same
protocol: many queries against one release in a single wire object,
with the per-attribute bounds as parallel ``lo``/``hi`` integer arrays
(structure-of-arrays) instead of one object per query::

    {"op": "query_batch", "id": 9, "release": "brazil",
     "ranges": {"Age": {"lo": [18, 30, 0], "hi": [65, 40, 101]}}}

    {"ok": true, "id": 9, "release": "brazil", "count": 3,
     "confidence": 0.95, "estimates": [...], "noise_stds": [...],
     "lowers": [...], "uppers": [...]}

The arrays decode straight into ndarrays and are validated in one
vectorized pass, so a batch of thousands of queries costs O(ndarray)
Python work, not O(queries); the batch answer comes back as a single
:class:`BatchQueryResponse` (arrays out, one ``json.dumps`` per batch).

Failures never surface as tracebacks on the wire: every error becomes an
:class:`ErrorResponse` whose ``code`` is machine-readable
(``bad-request``, ``unknown-release``, ``closed``, ``internal``).
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, ServingError
from repro.queries.predicate import Predicate
from repro.queries.query import RangeCountQuery

__all__ = [
    "QueryRequest",
    "QueryBatchRequest",
    "QueryResponse",
    "BatchQueryResponse",
    "ErrorResponse",
    "parse_request_line",
]


def _exact_int(value, what: str) -> int:
    """``value`` as an exact integer, or a ``bad-request`` ServingError.

    Truncating (``int(3.7) == 3``) would silently turn a malformed bound
    into a *different* query with a plausible answer, so only integral
    numbers pass: Python ints, numpy integers, and whole-valued floats
    (JSON clients may well send ``18.0``).  Everything else — ``3.7``,
    strings, booleans, None — is rejected.
    """
    if isinstance(value, bool):
        raise ServingError(f"{what} must be an integer, got {value!r}")
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real) and float(value).is_integer():
        return int(value)
    raise ServingError(f"{what} must be an integer, got {value!r}")


@dataclass(frozen=True)
class QueryRequest:
    """One range-count query addressed to a named release.

    Parameters
    ----------
    release:
        Name of the target release in the server's registry.
    ranges:
        Per-attribute half-open ranges — a mapping ``{name: (lo, hi)}``
        or an iterable of ``(name, lo, hi)`` triples.  Attributes not
        named default to their full domain, exactly like a
        :class:`~repro.queries.query.RangeCountQuery` with missing
        predicates.  Normalized to a sorted tuple of triples so equal
        requests hash and compare equal (which is what makes
        dashboard-style traffic cache-friendly).
    confidence:
        Two-sided confidence level for the interval, in ``(0, 1)``.
    time_range:
        Optional half-open epoch window ``(lo, hi)`` for stream-backed
        releases; ``hi`` may be ``None`` for "through the newest closed
        epoch".  Addressing a non-stream release with a time range is a
        ``bad-request``.
    request_id:
        Opaque caller token echoed back on the response (any JSON-able
        value).
    """

    release: str
    ranges: tuple = field(default_factory=tuple)
    confidence: float = 0.95
    time_range: tuple | None = None
    request_id: object = None

    def __post_init__(self):
        if not isinstance(self.release, str) or not self.release:
            raise ServingError(
                f"request needs a non-empty release name, got {self.release!r}"
            )
        try:
            confidence = float(self.confidence)
        except (TypeError, ValueError):
            raise ServingError(
                f"confidence must be a number, got {self.confidence!r}"
            ) from None
        if not 0.0 < confidence < 1.0:
            raise ServingError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        object.__setattr__(self, "confidence", confidence)
        items = (
            self.ranges.items()
            if isinstance(self.ranges, dict)
            else self.ranges
        )
        normalized = []
        for item in items:
            try:
                if isinstance(self.ranges, dict):
                    name, (lo, hi) = item
                else:
                    name, lo, hi = item
            except (TypeError, ValueError):
                raise ServingError(
                    f"each range must be (attribute, lo, hi), got {item!r}"
                ) from None
            bounds = f"range bound on {name!r}"
            normalized.append(
                (str(name), _exact_int(lo, bounds), _exact_int(hi, bounds))
            )
        object.__setattr__(self, "ranges", tuple(sorted(normalized)))
        if self.time_range is not None:
            window = tuple(self.time_range)
            if len(window) != 2:
                raise ServingError(
                    f"time_range must be [lo, hi], got {self.time_range!r}"
                )
            lo, hi = window
            lo = _exact_int(lo, "time_range bound")
            hi = None if hi is None else _exact_int(hi, "time_range bound")
            if lo < 0 or (hi is not None and hi < lo):
                raise ServingError(f"invalid time_range [{lo}, {hi})")
            object.__setattr__(self, "time_range", (lo, hi))

    @classmethod
    def from_dict(cls, payload) -> "QueryRequest":
        """Build a request from a decoded wire payload.

        Parameters
        ----------
        payload:
            A JSON object with ``release`` (required), ``ranges``
            (optional mapping ``{name: [lo, hi]}``), ``confidence``
            (optional), ``time_range`` (optional ``[lo, hi]`` epoch
            window for stream releases, ``hi`` may be ``null``), and
            ``id`` (optional).

        Returns
        -------
        QueryRequest
            The validated request.  Raises
            :class:`~repro.errors.ServingError` on any malformed field.
        """
        if not isinstance(payload, dict):
            raise ServingError(f"request must be a JSON object, got {payload!r}")
        unknown = set(payload) - {
            "release", "ranges", "confidence", "time_range", "id", "op",
        }
        if unknown:
            raise ServingError(f"unknown request fields: {sorted(unknown)}")
        if "release" not in payload:
            raise ServingError("request lacks the required 'release' field")
        ranges = payload.get("ranges", {})
        if not isinstance(ranges, dict):
            raise ServingError(
                f"'ranges' must be an object of {{attribute: [lo, hi]}}, "
                f"got {ranges!r}"
            )
        time_range = payload.get("time_range")
        if time_range is not None and not isinstance(time_range, (list, tuple)):
            raise ServingError(
                f"'time_range' must be [lo, hi], got {time_range!r}"
            )
        return cls(
            release=payload["release"],
            ranges=ranges,
            confidence=payload.get("confidence", 0.95),
            time_range=time_range,
            request_id=payload.get("id"),
        )

    def to_dict(self) -> dict:
        """The wire form of this request (inverse of :meth:`from_dict`)."""
        payload = {
            "release": self.release,
            "ranges": {name: [lo, hi] for name, lo, hi in self.ranges},
            "confidence": self.confidence,
        }
        if self.time_range is not None:
            payload["time_range"] = list(self.time_range)
        if self.request_id is not None:
            payload["id"] = self.request_id
        return payload

    def to_query(self, schema) -> RangeCountQuery:
        """Bind this request to a schema as a range-count query.

        Parameters
        ----------
        schema:
            The resolved release's :class:`~repro.data.schema.Schema`.

        Returns
        -------
        RangeCountQuery
            Query with one predicate per named range.  Unknown attribute
            names or out-of-bounds ranges raise
            :class:`~repro.errors.QueryError` (mapped to a
            ``bad-request`` response by the server).
        """
        predicates = tuple(
            Predicate(name, lo, hi) for name, lo, hi in self.ranges
        )
        return RangeCountQuery(schema, predicates)


def _column_pair(name, spec):
    """One attribute's ``(lo, hi)`` arrays from its wire spec.

    Accepts the wire form ``{"lo": [...], "hi": [...]}`` or an
    in-process pair ``(lo_array, hi_array)``.
    """
    if isinstance(spec, dict):
        unknown = set(spec) - {"lo", "hi"}
        if unknown or set(spec) != {"lo", "hi"}:
            raise ServingError(
                f"columnar range for {name!r} must be "
                f'{{"lo": [...], "hi": [...]}}, got keys {sorted(spec)}'
            )
        return spec["lo"], spec["hi"]
    try:
        lo, hi = spec
    except (TypeError, ValueError):
        raise ServingError(
            f"columnar range for {name!r} must be "
            f'{{"lo": [...], "hi": [...]}} or a (lo, hi) array pair, '
            f"got {spec!r}"
        ) from None
    return lo, hi


def _bound_column(name, side: str, values) -> np.ndarray:
    """One bound array as exact int64, or a ``bad-request`` error.

    The whole column is checked in one vectorized pass: numeric dtype
    only (no strings/objects/bools), and float columns must be whole-
    valued — the array analogue of :func:`_exact_int`, for the same
    reason (truncation would answer a *different* query).
    """
    column = np.asarray(values)
    if column.ndim != 1:
        raise ServingError(
            f"columnar {side} bounds for {name!r} must be a flat array, "
            f"got shape {column.shape}"
        )
    if column.dtype.kind == "f":
        if not np.all(np.isfinite(column)) or not np.array_equal(
            column, np.trunc(column)
        ):
            raise ServingError(
                f"columnar {side} bounds for {name!r} must be integers "
                f"(found a non-integral value)"
            )
        return column.astype(np.int64)
    if column.dtype.kind in "iu":
        return column.astype(np.int64)
    raise ServingError(
        f"columnar {side} bounds for {name!r} must be integers, "
        f"got dtype {column.dtype}"
    )


class QueryBatchRequest:
    """Many range-count queries against one release, structure-of-arrays.

    The columnar twin of :class:`QueryRequest`: instead of one object
    per query, the batch carries parallel ``lo``/``hi`` integer arrays
    per named attribute — query ``i`` is the box formed by row ``i`` of
    every array, with unnamed attributes defaulting to their full
    domain.  Decoding a wire batch therefore costs one ndarray
    conversion and one vectorized validation pass per attribute, not
    O(queries) Python.

    Parameters
    ----------
    release:
        Name of the target release in the server's registry.
    ranges:
        Mapping ``{name: {"lo": [...], "hi": [...]}}`` (the wire form)
        or ``{name: (lo_array, hi_array)}``; all arrays must share one
        length ``n >= 1``.  At least one attribute is required — it is
        what defines the batch length.  Bounds must be integral
        (vectorized check; ``lo >= 0`` and ``lo <= hi`` are enforced
        here, the upper domain bound when the batch is bound to the
        release's schema).  ``lo == hi`` rows are *empty* boxes and
        answer an exact ``0.0`` with zero noise.
    confidence:
        Two-sided confidence level for every interval, in ``(0, 1)``.
    time_range:
        Optional half-open epoch window for stream-backed releases,
        exactly as on :class:`QueryRequest`.
    request_id:
        Opaque caller token echoed back on the batch response.
    """

    __slots__ = (
        "release", "names", "lows", "highs", "confidence", "time_range",
        "request_id",
    )

    def __init__(
        self,
        release: str,
        ranges,
        confidence: float = 0.95,
        time_range=None,
        request_id=None,
    ):
        if not isinstance(release, str) or not release:
            raise ServingError(
                f"request needs a non-empty release name, got {release!r}"
            )
        try:
            confidence = float(confidence)
        except (TypeError, ValueError):
            raise ServingError(
                f"confidence must be a number, got {confidence!r}"
            ) from None
        if not 0.0 < confidence < 1.0:
            raise ServingError(f"confidence must be in (0, 1), got {confidence}")
        if not isinstance(ranges, dict) or not ranges:
            raise ServingError(
                "a columnar batch needs a non-empty 'ranges' object of "
                '{attribute: {"lo": [...], "hi": [...]}} — the arrays are '
                "what define the batch length"
            )
        names = tuple(sorted(str(name) for name in ranges))
        columns_lo, columns_hi = [], []
        count = None
        for name in names:
            lo_values, hi_values = _column_pair(name, ranges[name])
            lo = _bound_column(name, "lo", lo_values)
            hi = _bound_column(name, "hi", hi_values)
            if lo.shape != hi.shape:
                raise ServingError(
                    f"columnar lo/hi arrays for {name!r} differ in length: "
                    f"{lo.shape[0]} vs {hi.shape[0]}"
                )
            if count is None:
                count = lo.shape[0]
            elif lo.shape[0] != count:
                raise ServingError(
                    f"columnar arrays must share one length; {name!r} has "
                    f"{lo.shape[0]} rows, earlier attributes {count}"
                )
            columns_lo.append(lo)
            columns_hi.append(hi)
        if count == 0:
            raise ServingError("a columnar batch needs at least one query row")
        lows = np.stack(columns_lo, axis=1)
        highs = np.stack(columns_hi, axis=1)
        # One vectorized pass over the whole batch; the upper domain
        # bound is schema-dependent and checked at bind time.
        if lows.min() < 0 or np.any(lows > highs):
            bad = np.argwhere((lows < 0) | (lows > highs))[0]
            raise ServingError(
                f"invalid range [{lows[bad[0], bad[1]]}, "
                f"{highs[bad[0], bad[1]]}) on {names[bad[1]]!r} "
                f"(row {bad[0]}): need 0 <= lo <= hi"
            )
        lows.setflags(write=False)
        highs.setflags(write=False)
        self.release = release
        self.names = names
        self.lows = lows
        self.highs = highs
        self.confidence = confidence
        self.time_range = None
        self.request_id = request_id
        if time_range is not None:
            # Reuse the scalar request's time-range validation verbatim.
            probe = QueryRequest(release, time_range=time_range)
            self.time_range = probe.time_range

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of queries in the batch."""
        return self.lows.shape[0]

    @property
    def plan_key(self) -> tuple:
        """The compiled-plan cache key: (release, attribute set, window).

        Everything that determines how the batch binds to an engine —
        and nothing that varies per query — so hot dashboard shapes
        (same release, same attribute columns, same window) share one
        compiled plan across batches.
        """
        return (self.release, self.names, self.time_range)

    def bind(self, schema, axes=None) -> tuple[np.ndarray, np.ndarray]:
        """Full ``(n, d)`` box-bound arrays against ``schema``.

        Unnamed attributes take their full domain; named columns are
        scattered into schema axis order, and the schema's upper domain
        bounds are enforced in one vectorized pass.

        Parameters
        ----------
        schema:
            The resolved release's :class:`~repro.data.schema.Schema`.
        axes:
            Optional precomputed ``schema.axes_of(self.names)`` (a
            compiled plan passes its cached copy).

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(lows, highs)`` int64 arrays ready for
            :meth:`~repro.queries.engine.QueryEngine.answer_columnar`.
        """
        if axes is None:
            axes = schema.axes_of(self.names)
        sizes = np.asarray(schema.shape, dtype=np.int64)
        named_sizes = sizes[list(axes)]
        if np.any(self.highs > named_sizes):
            bad = np.argwhere(self.highs > named_sizes)[0]
            raise ServingError(
                f"range [{self.lows[bad[0], bad[1]]}, "
                f"{self.highs[bad[0], bad[1]]}) on {self.names[bad[1]]!r} "
                f"(row {bad[0]}) exceeds the domain size "
                f"{named_sizes[bad[1]]}"
            )
        count = len(self)
        lows = np.zeros((count, len(sizes)), dtype=np.int64)
        highs = np.broadcast_to(sizes, (count, len(sizes))).copy()
        lows[:, list(axes)] = self.lows
        highs[:, list(axes)] = self.highs
        return lows, highs

    @classmethod
    def from_dict(cls, payload) -> "QueryBatchRequest":
        """Build a columnar batch from a decoded wire payload.

        Parameters
        ----------
        payload:
            A JSON object with ``release`` (required), ``ranges``
            (required, ``{name: {"lo": [...], "hi": [...]}}``),
            ``confidence``, ``time_range``, ``id``, and an optional
            ``op`` (must be ``"query_batch"`` when present).

        Returns
        -------
        QueryBatchRequest
            The validated batch; any malformed field raises
            :class:`~repro.errors.ServingError`.
        """
        if not isinstance(payload, dict):
            raise ServingError(f"request must be a JSON object, got {payload!r}")
        unknown = set(payload) - {
            "release", "ranges", "confidence", "time_range", "id", "op",
        }
        if unknown:
            raise ServingError(f"unknown request fields: {sorted(unknown)}")
        if payload.get("op", "query_batch") != "query_batch":
            raise ServingError(
                f"expected op 'query_batch', got {payload.get('op')!r}"
            )
        if "release" not in payload:
            raise ServingError("request lacks the required 'release' field")
        if "ranges" not in payload:
            raise ServingError(
                "a columnar batch lacks the required 'ranges' field"
            )
        return cls(
            release=payload["release"],
            ranges=payload["ranges"],
            confidence=payload.get("confidence", 0.95),
            time_range=payload.get("time_range"),
            request_id=payload.get("id"),
        )

    def to_dict(self) -> dict:
        """The wire form of this batch (inverse of :meth:`from_dict`)."""
        payload = {
            "op": "query_batch",
            "release": self.release,
            "ranges": {
                name: {
                    "lo": self.lows[:, column].tolist(),
                    "hi": self.highs[:, column].tolist(),
                }
                for column, name in enumerate(self.names)
            },
            "confidence": self.confidence,
        }
        if self.time_range is not None:
            payload["time_range"] = list(self.time_range)
        if self.request_id is not None:
            payload["id"] = self.request_id
        return payload

    def __repr__(self) -> str:
        return (
            f"QueryBatchRequest(release={self.release!r}, "
            f"queries={len(self)}, attributes={list(self.names)})"
        )


@dataclass(frozen=True)
class QueryResponse:
    """A served answer: estimate, exact noise std, and interval."""

    release: str
    estimate: float
    noise_std: float
    lower: float
    upper: float
    confidence: float
    request_id: object = None

    def to_dict(self) -> dict:
        """The JSONL wire form (``ok: true``)."""
        return {
            "ok": True,
            "id": self.request_id,
            "release": self.release,
            "estimate": self.estimate,
            "noise_std": self.noise_std,
            "lower": self.lower,
            "upper": self.upper,
            "confidence": self.confidence,
        }


class BatchQueryResponse:
    """A served columnar batch: aligned answer/std/interval arrays.

    The structure-of-arrays twin of :class:`QueryResponse` — one
    response object (and one wire line) per *batch*, with all the
    per-query numbers as parallel arrays.  Encoding is vectorized:
    :meth:`to_json` is one ``ndarray.round``-free ``json.dumps`` over
    four ``tolist()`` columns, never N dict round-trips.  Indexing
    yields per-query :class:`QueryResponse` views for callers that want
    the scalar shape (the parity tests compare exactly these).

    Parameters
    ----------
    release:
        The release name the batch was answered against.
    estimates, noise_stds, lowers, uppers:
        Equal-length float arrays, aligned by query row.
    confidence:
        The two-sided coverage level of every interval.
    request_id:
        The caller token echoed from the request.
    """

    __slots__ = (
        "release", "estimates", "noise_stds", "lowers", "uppers",
        "confidence", "request_id",
    )

    def __init__(
        self,
        release: str,
        estimates,
        noise_stds,
        lowers,
        uppers,
        confidence: float,
        request_id=None,
    ):
        self.release = release
        self.estimates = np.asarray(estimates, dtype=np.float64)
        self.noise_stds = np.asarray(noise_stds, dtype=np.float64)
        self.lowers = np.asarray(lowers, dtype=np.float64)
        self.uppers = np.asarray(uppers, dtype=np.float64)
        self.confidence = float(confidence)
        self.request_id = request_id

    @classmethod
    def from_answers(
        cls, release: str, answers, request_id=None
    ) -> "BatchQueryResponse":
        """Wrap a :class:`~repro.queries.engine.BatchQueryAnswers`.

        The engine's arrays are adopted as-is (views, no copies) — this
        is the zero-copy half of the engine → wire handoff.
        """
        return cls(
            release=release,
            estimates=answers.estimates,
            noise_stds=answers.noise_stds,
            lowers=answers.lowers,
            uppers=answers.uppers,
            confidence=answers.confidence,
            request_id=request_id,
        )

    def __len__(self) -> int:
        return len(self.estimates)

    def __getitem__(self, index: int) -> QueryResponse:
        """Row ``index`` in the scalar response shape."""
        return QueryResponse(
            release=self.release,
            estimate=float(self.estimates[index]),
            noise_std=float(self.noise_stds[index]),
            lower=float(self.lowers[index]),
            upper=float(self.uppers[index]),
            confidence=self.confidence,
            request_id=self.request_id,
        )

    def __iter__(self):
        return (self[index] for index in range(len(self)))

    def to_dict(self) -> dict:
        """The JSONL wire form (``ok: true``, arrays by column)."""
        return {
            "ok": True,
            "id": self.request_id,
            "release": self.release,
            "count": len(self),
            "confidence": self.confidence,
            "estimates": self.estimates.tolist(),
            "noise_stds": self.noise_stds.tolist(),
            "lowers": self.lowers.tolist(),
            "uppers": self.uppers.tolist(),
        }

    def to_json(self) -> str:
        """One wire line for the whole batch (a single ``json.dumps``)."""
        return json.dumps(self.to_dict())

    def __repr__(self) -> str:
        return (
            f"BatchQueryResponse(release={self.release!r}, count={len(self)})"
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A structured failure: machine-readable code plus a message."""

    code: str
    error: str
    request_id: object = None

    @classmethod
    def from_exception(cls, exc: Exception, request_id=None) -> "ErrorResponse":
        """Map an exception to its wire form.

        :class:`~repro.errors.ServingError` keeps its own ``code``;
        every other library error is a ``bad-request``; anything else is
        ``internal`` (and still never a traceback on the wire).
        """
        if isinstance(exc, ServingError):
            code = exc.code
        elif isinstance(exc, ReproError):
            code = "bad-request"
        else:
            code = "internal"
        return cls(code=code, error=str(exc), request_id=request_id)

    def to_dict(self) -> dict:
        """The JSONL wire form (``ok: false``)."""
        return {
            "ok": False,
            "id": self.request_id,
            "code": self.code,
            "error": self.error,
        }


def parse_request_line(line: str):
    """Decode one JSONL request line into its request object.

    Parameters
    ----------
    line:
        One line of the ``serve`` loop's stdin.

    Returns
    -------
    QueryRequest | QueryBatchRequest
        A scalar request, or — when the payload carries
        ``"op": "query_batch"`` — a columnar batch.  Malformed JSON
        raises :class:`~repro.errors.ServingError` so the loop can
        answer with a ``bad-request`` :class:`ErrorResponse` instead of
        crashing.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServingError(f"malformed JSON request: {exc}") from exc
    if isinstance(payload, dict) and payload.get("op") == "query_batch":
        return QueryBatchRequest.from_dict(payload)
    return QueryRequest.from_dict(payload)
