"""Bounded profile caching for long-lived servers.

A query engine memoizes per-axis adjoint profiles forever — the right
call for one workload in one process, but a server that lives for weeks
under arbitrary traffic needs a *bounded* memo.  :class:`LRUProfileCache`
keeps the :class:`~repro.analysis.exact.AxisProfileCache` batch-fill
machinery (each distinct uncached range still costs one vectorized
transform call) and adds a per-axis least-recently-used bound, so
dashboard-style traffic — the same axis ranges re-asked all day — stays
warm while one-off scans cannot grow the cache without limit.

The cache key is the axis range ``(lo, hi)`` itself, which is why reuse
is so high in practice: a dashboard re-rendering 50 widgets re-asks the
same 50 boxes, and every axis range of every box hits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.analysis.exact import AxisProfileCache
from repro.utils.validation import ensure_positive_int

__all__ = ["LRUProfileCache"]


class LRUProfileCache(AxisProfileCache):
    """An :class:`AxisProfileCache` with a per-axis LRU entry bound.

    Parameters
    ----------
    transforms:
        Per-axis transform sequence, as for the base class.
    max_entries_per_axis:
        Most profiles kept per axis; the least recently *used* entry is
        evicted first.  Memory is bounded by ``d * max_entries_per_axis``
        floats regardless of traffic.
    """

    def __init__(self, transforms, *, max_entries_per_axis: int = 4096):
        super().__init__(transforms)
        self._max_entries = ensure_positive_int(
            max_entries_per_axis, "max_entries_per_axis"
        )
        self._caches = [OrderedDict() for _ in self._transforms]
        #: Entries dropped to respect the bound (monotone counter).
        self.evictions = 0

    @property
    def max_entries_per_axis(self) -> int:
        """The configured per-axis bound."""
        return self._max_entries

    def _get(self, axis: int, key: tuple[int, int]) -> float | None:
        """Bounded lookup: a hit refreshes the entry's recency."""
        cache = self._caches[axis]
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value

    def _put(self, axis: int, key: tuple[int, int], value: float) -> None:
        """Bounded insert: evicts the least recently used entry on overflow."""
        cache = self._caches[axis]
        cache[key] = value
        cache.move_to_end(key)
        if len(cache) > self._max_entries:
            cache.popitem(last=False)
            self.evictions += 1
