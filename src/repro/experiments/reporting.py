"""Text rendering of experiment results, shaped like the paper's figures.

The benchmark harness prints these tables (and EXPERIMENTS.md records
them) so a reader can compare rows directly against Figures 6–11.
"""

from __future__ import annotations

from repro.experiments.charts import ascii_chart
from repro.experiments.runner import AccuracyRun
from repro.experiments.figures import TimingRun

__all__ = ["format_accuracy_run", "format_timing_run"]


def _sci(value: float) -> str:
    return f"{value:11.3e}"


def format_accuracy_run(run: AccuracyRun, *, title: str = "", chart: bool = False) -> str:
    """Render one accuracy figure: a block per ε, one row per mechanism.

    Columns are the quintile buckets (their average coverage/selectivity
    on the header row), matching the X axes of Figures 6–9.  With
    ``chart=True``, a log-log ASCII plot of the first ε panel is appended
    so the curve shapes are visible at a glance.
    """
    lines = []
    header = title or f"{run.dataset}: average {run.metric} error vs {run.measure}"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append(f"queries={run.num_queries}  tuples={run.num_tuples}")

    epsilons = sorted({series.epsilon for series in run.series})
    mechanisms = []
    for series in run.series:
        if series.mechanism not in mechanisms:
            mechanisms.append(series.mechanism)

    for epsilon in epsilons:
        lines.append("")
        lines.append(f"epsilon = {epsilon:g}")
        any_series = next(s for s in run.series if s.epsilon == epsilon)
        centers = "  ".join(_sci(c) for c in any_series.bucket_centers)
        lines.append(f"  {run.measure:>24}: {centers}")
        for mechanism in mechanisms:
            series = run.series_for(mechanism, epsilon)
            errors = "  ".join(_sci(e) for e in series.bucket_errors)
            lines.append(f"  {mechanism:>24}: {errors}")

    if chart and epsilons:
        first = epsilons[0]
        reference = next(s for s in run.series if s.epsilon == first)
        try:
            rendered = ascii_chart(
                reference.bucket_centers,
                {
                    mechanism: run.series_for(mechanism, first).bucket_errors
                    for mechanism in mechanisms
                },
                x_label=run.measure,
                y_label=f"avg {run.metric} error",
            )
        except ValueError:
            rendered = None  # zero buckets cannot go on a log scale
        if rendered:
            lines.append("")
            lines.append(f"shape at epsilon = {first:g}:")
            lines.append(rendered)
    return "\n".join(lines)


def format_timing_run(run: TimingRun, *, title: str = "") -> str:
    """Render one timing figure: one row per sweep point."""
    other = "m" if run.sweep == "n" else "n"
    lines = []
    header = title or f"computation time vs {run.sweep} ({other} = {run.fixed})"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append(f"{run.sweep:>12}  {'Basic (s)':>12}  {'Privelet+ (s)':>13}  {'ratio':>7}")
    for point in run.points:
        ratio = point.privelet_seconds / point.basic_seconds if point.basic_seconds else float("nan")
        lines.append(
            f"{point.x:>12}  {point.basic_seconds:>12.3f}  "
            f"{point.privelet_seconds:>13.3f}  {ratio:>7.2f}"
        )
    return "\n".join(lines)
