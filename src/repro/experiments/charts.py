"""ASCII charts for experiment results.

The paper's figures are log-log scatter plots; the benchmark harness is
text-only, so this module renders series as fixed-width ASCII charts
good enough to eyeball the shapes (linear growth, flat curves,
crossovers) directly in the terminal or in ``results/*.txt``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@"


def _log_positions(values, low, high, width):
    values = np.asarray(values, dtype=np.float64)
    span = math.log10(high) - math.log10(low)
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    fractions = (np.log10(values) - math.log10(low)) / span
    return np.clip(np.rint(fractions * (width - 1)).astype(int), 0, width - 1)


def ascii_chart(
    x_values,
    series: dict,
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named series on a log-log grid.

    Parameters
    ----------
    x_values:
        Common positive x coordinates.
    series:
        Mapping from series name to a sequence of positive y values
        (same length as ``x_values``).  Up to six series get distinct
        markers; later markers cycle.
    """
    x_values = np.asarray(x_values, dtype=np.float64)
    if x_values.ndim != 1 or len(x_values) == 0:
        raise ValueError("x_values must be a non-empty 1-D sequence")
    if np.any(x_values <= 0):
        raise ValueError("log-log chart needs positive x values")
    for name, ys in series.items():
        ys = np.asarray(ys, dtype=np.float64)
        if ys.shape != x_values.shape:
            raise ValueError(f"series {name!r} length does not match x_values")
        if np.any(ys <= 0):
            raise ValueError(f"series {name!r} has non-positive values (log scale)")

    all_y = np.concatenate([np.asarray(ys, dtype=float) for ys in series.values()])
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if y_high == y_low:
        y_high = y_low * 10.0
    x_low, x_high = float(x_values.min()), float(x_values.max())
    if x_high == x_low:
        x_high = x_low * 10.0

    grid = [[" "] * width for _ in range(height)]
    columns = _log_positions(x_values, x_low, x_high, width)
    legend = []
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        rows = _log_positions(ys, y_low, y_high, height)
        for column, row in zip(columns, rows):
            grid[height - 1 - row][column] = marker

    lines = [f"{y_label} (log scale, {y_low:.2e} .. {y_high:.2e})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (log scale, {x_low:.3g} .. {x_high:.3g})")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)
