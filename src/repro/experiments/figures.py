"""Top-level drivers, one per reproducible figure of the paper.

Each function regenerates the data behind one figure and returns a
structured result; :mod:`repro.experiments.reporting` renders them as the
text tables the benchmark harness prints.  See DESIGN.md §4 for the
figure-to-module index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.basic import BasicMechanism
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.data.census import BRAZIL, CensusSpec, generate_census_table
from repro.data.synthetic import generate_uniform_table
from repro.experiments.config import AccuracyConfig, TimingConfig
from repro.experiments.runner import AccuracyRun, run_accuracy, time_mechanism
from repro.queries.workload import Workload, generate_workload

__all__ = [
    "prepare_census_experiment",
    "run_square_error_vs_coverage",
    "run_relative_error_vs_selectivity",
    "TimingPoint",
    "TimingRun",
    "run_time_vs_n",
    "run_time_vs_m",
    "PAPER_SA",
]

#: §VII-A: Privelet+ uses SA = {Age, Gender} on the census data (both
#: satisfy |A| <= P(A)^2 H(A)).
PAPER_SA = ("Age", "Gender")


def default_mechanisms() -> list:
    """Basic vs Privelet+(SA={Age, Gender}) — the Figures 6–9 contenders."""
    return [BasicMechanism(), PriveletPlusMechanism(sa_names=PAPER_SA)]


def prepare_census_experiment(spec: CensusSpec, config: AccuracyConfig):
    """Generate a census table, its frequency matrix, and a bound workload.

    Shared by the Figure 6/7 and Figure 8/9 drivers so that a pair of
    figures over the same dataset reuses one dataset and workload (as the
    paper does).
    """
    scaled = spec.scaled(config.scale)
    table = generate_census_table(scaled, config.num_rows, seed=config.seed)
    matrix = table.frequency_matrix()
    queries = generate_workload(
        table.schema, config.num_queries, max_predicates=4, seed=config.seed + 1
    )
    workload = Workload.evaluate(queries, matrix)
    return table, matrix, workload


def run_square_error_vs_coverage(
    spec: CensusSpec = BRAZIL,
    config: AccuracyConfig | None = None,
    *,
    prepared=None,
    representation: str = "dense",
) -> AccuracyRun:
    """Figure 6 (Brazil) / Figure 7 (US): average square error vs coverage."""
    config = config or AccuracyConfig.for_environment()
    table, matrix, workload = prepared or prepare_census_experiment(spec, config)
    return run_accuracy(
        spec.name,
        matrix,
        workload,
        default_mechanisms(),
        config.epsilons,
        metric="square",
        measure="coverage",
        num_buckets=config.num_buckets,
        num_tuples=table.num_rows,
        seed=config.seed + 2,
        representation=representation,
    )


def run_relative_error_vs_selectivity(
    spec: CensusSpec = BRAZIL,
    config: AccuracyConfig | None = None,
    *,
    prepared=None,
    representation: str = "dense",
) -> AccuracyRun:
    """Figure 8 (Brazil) / Figure 9 (US): average relative error vs selectivity."""
    config = config or AccuracyConfig.for_environment()
    table, matrix, workload = prepared or prepare_census_experiment(spec, config)
    return run_accuracy(
        spec.name,
        matrix,
        workload,
        default_mechanisms(),
        config.epsilons,
        metric="relative",
        measure="selectivity",
        num_buckets=config.num_buckets,
        num_tuples=table.num_rows,
        seed=config.seed + 3,
        representation=representation,
    )


# ----------------------------------------------------------------------
# Figures 10 and 11: computation time
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimingPoint:
    """One x-position of Figure 10/11: both mechanisms' times."""

    x: int  # n for Figure 10, m for Figure 11
    basic_seconds: float
    privelet_seconds: float


@dataclass(frozen=True)
class TimingRun:
    """A full timing sweep (one figure)."""

    sweep: str  # "n" or "m"
    fixed: int  # the fixed other parameter
    points: tuple[TimingPoint, ...]


def _timing_mechanisms() -> tuple:
    # §VII-B: Privelet+ is run with SA = {} (the slowest configuration,
    # transforming every dimension).
    return BasicMechanism(), PriveletPlusMechanism(sa_names=())


def run_time_vs_n(config: TimingConfig | None = None) -> TimingRun:
    """Figure 10: computation time as a function of the tuple count n."""
    config = config or TimingConfig.for_environment()
    basic, privelet = _timing_mechanisms()
    points = []
    for i, n in enumerate(config.n_values):
        table = generate_uniform_table(n, config.fixed_m, seed=config.seed + i)
        points.append(
            TimingPoint(
                x=int(n),
                basic_seconds=time_mechanism(basic, table, 1.0, repeats=config.repeats),
                privelet_seconds=time_mechanism(privelet, table, 1.0, repeats=config.repeats),
            )
        )
    return TimingRun(sweep="n", fixed=int(config.fixed_m), points=tuple(points))


def run_time_vs_m(config: TimingConfig | None = None) -> TimingRun:
    """Figure 11: computation time as a function of the cell count m."""
    config = config or TimingConfig.for_environment()
    basic, privelet = _timing_mechanisms()
    points = []
    for i, m in enumerate(config.m_values):
        table = generate_uniform_table(config.fixed_n, m, seed=config.seed + 100 + i)
        points.append(
            TimingPoint(
                x=int(m),
                basic_seconds=time_mechanism(basic, table, 1.0, repeats=config.repeats),
                privelet_seconds=time_mechanism(privelet, table, 1.0, repeats=config.repeats),
            )
        )
    return TimingRun(sweep="m", fixed=int(config.fixed_n), points=tuple(points))
