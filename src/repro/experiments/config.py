"""Experiment configuration shared by the figure runners and benchmarks.

The paper's experiments run at scales that need tens of gigabytes
(census matrices with ``m > 10^8`` cells; timing sweeps to ``m = 2^26``
and ``n = 5M``).  The default configuration here is laptop-sized but
preserves every structural property the figures depend on; setting the
environment variable ``REPRO_FULL=1`` (or building a config with
``full=True``) switches to the paper's exact sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["AccuracyConfig", "TimingConfig", "full_scale_requested"]

#: ε grid of Figures 6–9.
PAPER_EPSILONS = (0.5, 0.75, 1.0, 1.25)


def full_scale_requested() -> bool:
    """True when the ``REPRO_FULL`` environment variable asks for paper scale."""
    return os.environ.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}


@dataclass(frozen=True)
class AccuracyConfig:
    """Configuration for the Figures 6–9 accuracy experiments."""

    #: Dataset scale factor applied to the census spec (1.0 = Table III).
    scale: float = 0.25
    #: Number of tuples to generate (paper: 10M Brazil / 8M US).
    num_rows: int = 200_000
    #: Number of random range-count queries (paper: 40 000).
    num_queries: int = 40_000
    #: ε values (paper: 0.5, 0.75, 1, 1.25).
    epsilons: tuple[float, ...] = PAPER_EPSILONS
    #: Quintile bucket count for coverage/selectivity grouping.
    num_buckets: int = 5
    #: Master seed for data, workload, and noise.
    seed: int = 20100301

    @classmethod
    def for_environment(cls) -> "AccuracyConfig":
        """Paper scale when ``REPRO_FULL=1``, laptop scale otherwise."""
        if full_scale_requested():
            return cls(scale=1.0, num_rows=10_000_000, num_queries=40_000)
        return cls()


@dataclass(frozen=True)
class TimingConfig:
    """Configuration for the Figures 10–11 scalability experiments."""

    #: Tuple counts for the n-sweep (paper: 1M..5M, m fixed at 2^24).
    #: Laptop default keeps the paper's n/m balance — n large enough that
    #: the O(n) table-scan term is visible next to the O(m) transform.
    n_values: tuple[int, ...] = (500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000)
    #: Fixed m for the n-sweep (paper: 2^24).
    fixed_m: int = 2**16
    #: Cell counts for the m-sweep (paper: 2^22..2^26, n fixed at 5M).
    m_values: tuple[int, ...] = (2**16, 2**17, 2**18, 2**19, 2**20)
    #: Fixed n for the m-sweep (paper: 5 * 10^6).
    fixed_n: int = 200_000
    #: Repetitions per point (timings use the minimum across repeats).
    repeats: int = 1
    seed: int = 20100302

    @classmethod
    def for_environment(cls) -> "TimingConfig":
        if full_scale_requested():
            return cls(
                n_values=(1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000),
                fixed_m=2**24,
                m_values=(2**22, 2**23, 2**24, 2**25, 2**26),
                fixed_n=5_000_000,
            )
        return cls()
