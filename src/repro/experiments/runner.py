"""Run mechanisms against datasets and workloads; collect bucketed errors.

This is the measurement core behind Figures 6–9: publish a noisy matrix
per (mechanism, ε), answer the whole workload on it through the batch
query API (one vectorized prefix-sum gather), and average an error
metric inside coverage- or selectivity-quintile buckets.

When a mechanism's result carries enough configuration to rebuild its
transform (Basic / Privelet / Privelet+), the workload is answered
through a :class:`~repro.queries.engine.QueryEngine` and each series
additionally records the workload's mean *predicted* exact noise
variance — the designer-side number Figures 6–7 can be checked against.
Baselines without that metadata fall back to a plain oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import CompiledWorkload
from repro.core.framework import PublishingMechanism, PublishResult
from repro.data.frequency import FrequencyMatrix
from repro.errors import QueryError
from repro.queries.engine import QueryEngine
from repro.queries.error import relative_error, sanity_bound, square_error
from repro.queries.oracle import RangeSumOracle
from repro.queries.workload import Workload, quintile_buckets
from repro.utils.rng import spawn_generators

__all__ = ["BucketedSeries", "AccuracyRun", "run_accuracy", "time_mechanism"]


@dataclass(frozen=True)
class BucketedSeries:
    """One curve of a Figure 6–9 panel: a mechanism at one ε."""

    mechanism: str
    epsilon: float
    #: Average of the bucketing measure (coverage or selectivity) per bucket.
    bucket_centers: np.ndarray
    #: Average error per bucket.
    bucket_errors: np.ndarray
    #: Error over the whole workload (unbucketed mean).
    overall_error: float
    #: Mean *predicted* exact noise variance over the workload, when the
    #: mechanism's configuration is recoverable from its result (None for
    #: baselines that do not expose one).
    predicted_variance: float | None = None


@dataclass(frozen=True)
class AccuracyRun:
    """All series for one dataset: the contents of one paper figure."""

    dataset: str
    metric: str  # "square" or "relative"
    measure: str  # "coverage" or "selectivity"
    series: tuple[BucketedSeries, ...]
    num_queries: int
    num_tuples: int

    def series_for(self, mechanism: str, epsilon: float) -> BucketedSeries:
        """Look up one mechanism's curve at one epsilon."""
        for series in self.series:
            if series.mechanism == mechanism and series.epsilon == epsilon:
                return series
        raise KeyError(f"no series for {mechanism!r} at epsilon={epsilon}")


def _bucket_series(
    mechanism_name: str,
    epsilon: float,
    errors: np.ndarray,
    measure_values: np.ndarray,
    buckets: list[np.ndarray],
    predicted_variance: float | None = None,
) -> BucketedSeries:
    centers = np.asarray([measure_values[b].mean() for b in buckets])
    bucket_errors = np.asarray([errors[b].mean() for b in buckets])
    return BucketedSeries(
        mechanism=mechanism_name,
        epsilon=epsilon,
        bucket_centers=centers,
        bucket_errors=bucket_errors,
        overall_error=float(errors.mean()),
        predicted_variance=predicted_variance,
    )


def _engine_for(result: PublishResult) -> QueryEngine | None:
    """A query engine when the result's configuration is recoverable."""
    try:
        return QueryEngine(result)
    except QueryError:
        return None


def run_accuracy(
    dataset_name: str,
    exact_matrix: FrequencyMatrix,
    workload: Workload,
    mechanisms: list[PublishingMechanism],
    epsilons,
    *,
    metric: str = "square",
    measure: str = "coverage",
    num_buckets: int = 5,
    num_tuples: int | None = None,
    seed=None,
    representation: str = "dense",
) -> AccuracyRun:
    """Measure bucketed average errors for every (mechanism, ε) pair.

    Parameters mirror §VII-A: ``metric="square"`` with
    ``measure="coverage"`` reproduces Figures 6–7;
    ``metric="relative"`` with ``measure="selectivity"`` reproduces
    Figures 8–9 (the relative metric applies the 0.1%·n sanity bound).

    ``representation="coefficients"`` publishes and serves without
    materializing ``M*`` for every mechanism that supports it (the noise
    draws — hence the measured errors — are identical under the same
    seed); mechanisms that do not support it fall back to dense.
    """
    if metric not in {"square", "relative"}:
        raise ValueError(f"unknown metric {metric!r}")
    if measure not in {"coverage", "selectivity"}:
        raise ValueError(f"unknown measure {measure!r}")
    if representation not in {"dense", "coefficients"}:
        raise ValueError(f"unknown representation {representation!r}")

    measure_values = (
        workload.coverages if measure == "coverage" else workload.selectivities
    )
    buckets = quintile_buckets(measure_values, num_buckets)
    num_tuples = int(num_tuples if num_tuples is not None else round(exact_matrix.total))
    sanity = sanity_bound(num_tuples) if metric == "relative" else None

    epsilons = tuple(float(e) for e in epsilons)
    rngs = spawn_generators(seed, len(mechanisms) * len(epsilons))

    all_series = []
    stream = iter(rngs)
    # Compiled once (lazily) and shared across every (mechanism, epsilon):
    # the per-axis profiles are epsilon-independent and the compiled
    # cache serves identity and wavelet axes alike.
    compiled: CompiledWorkload | None = None
    for mechanism in mechanisms:
        for epsilon in epsilons:
            if (
                representation == "coefficients"
                and mechanism.supports_coefficient_release
            ):
                result = mechanism.publish_matrix(
                    exact_matrix, epsilon, seed=next(stream), materialize=False
                )
            else:
                result = mechanism.publish_matrix(
                    exact_matrix, epsilon, seed=next(stream)
                )
            engine = _engine_for(result)
            predicted = None
            if engine is not None:
                answers = engine.answer_all(workload.queries)
                if compiled is None:
                    compiled = CompiledWorkload(exact_matrix.schema, workload.queries)
                predicted = compiled.average_variance(
                    engine.transform, result.noise_magnitude
                )
            else:
                answers = RangeSumOracle(result.matrix).answer_all(workload.queries)
            if metric == "square":
                errors = square_error(answers, workload.exact_answers)
            else:
                errors = relative_error(answers, workload.exact_answers, sanity)
            all_series.append(
                _bucket_series(
                    mechanism.name, epsilon, errors, measure_values, buckets, predicted
                )
            )

    return AccuracyRun(
        dataset=dataset_name,
        metric=metric,
        measure=measure,
        series=tuple(all_series),
        num_queries=len(workload),
        num_tuples=num_tuples,
    )


def time_mechanism(
    mechanism: PublishingMechanism,
    table,
    epsilon: float,
    *,
    repeats: int = 1,
    seed=None,
    materialize: bool = True,
) -> float:
    """Wall-clock seconds for one end-to-end publish (min over repeats).

    Includes the table -> frequency-matrix step, matching the paper's
    "computation time" which covers the whole publishing pipeline.
    ``materialize=False`` times the coefficient-space publish (no inverse
    transform).
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        mechanism.publish(table, epsilon, seed=seed, materialize=materialize)
        best = min(best, time.perf_counter() - start)
    return best
