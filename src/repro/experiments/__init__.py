"""Experiment harness: configs, runners, and per-figure drivers."""

from repro.experiments.config import AccuracyConfig, TimingConfig, full_scale_requested
from repro.experiments.figures import (
    PAPER_SA,
    TimingPoint,
    TimingRun,
    prepare_census_experiment,
    run_relative_error_vs_selectivity,
    run_square_error_vs_coverage,
    run_time_vs_m,
    run_time_vs_n,
)
from repro.experiments.reporting import format_accuracy_run, format_timing_run
from repro.experiments.runner import AccuracyRun, BucketedSeries, run_accuracy, time_mechanism

__all__ = [
    "AccuracyConfig",
    "TimingConfig",
    "full_scale_requested",
    "PAPER_SA",
    "prepare_census_experiment",
    "run_square_error_vs_coverage",
    "run_relative_error_vs_selectivity",
    "run_time_vs_n",
    "run_time_vs_m",
    "TimingPoint",
    "TimingRun",
    "AccuracyRun",
    "BucketedSeries",
    "run_accuracy",
    "time_mechanism",
    "format_accuracy_run",
    "format_timing_run",
]
