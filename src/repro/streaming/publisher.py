"""Streaming ingestion: timestamped rows in, temporal releases out.

:class:`StreamingPublisher` turns the one-shot publish pipeline into a
continuously running one.  Time is cut into fixed-length **epochs**;
rows buffer in their epoch until it closes, and closing an epoch
publishes exactly that epoch's frequency matrix through the configured
mechanism at the **full** ε — sound because epochs are disjoint in rows
(each row has one timestamp), which is the hypothesis of DP parallel
composition, the same argument :mod:`repro.core.sharding` makes along an
ordinal attribute.

After each close, completed sibling nodes merge up the dyadic tree
(:func:`repro.streaming.tree.merge_path`): a level-``k`` node covering
epochs ``[i * 2**k, (i+1) * 2**k)`` is the element-wise *sum* of its
children's payloads — post-processing of already-published releases, so
the merge draws no noise and spends no budget, yet any window query then
needs only the ``O(log T)`` nodes of its canonical cover.  (Contrast
with the binary-tree mechanism for continual observation, which draws
fresh noise per node at a split budget; here the per-epoch ε is fixed
and the tree buys *compute*, not accuracy — a window answer's variance
equals the sum of its epochs' variances either way.)

Reproducibility follows the sharding convention: epoch ``e``'s noise is
a pure function of ``(seed, e)``, so re-running — or resuming a stream
archive with :meth:`StreamingPublisher.open` — reproduces the exact
releases.  When an ``archive_path`` is configured, every epoch close
appends the new node payloads and a fresh manifest to the v4 archive
(:mod:`repro.io`), which is what a live
:class:`~repro.serving.server.ReleaseServer` re-resolves on.  The
archive stores the base seed when one was given (the library's usual
explicit-reproducibility trade-off; omit the seed for production use).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.core.basic import BasicMechanism
from repro.core.framework import PublishResult
from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.release import infer_sa_names
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import StreamingError
from repro.streaming.release import (
    StreamNode,
    StreamRelease,
    _wrap_stream_result,
    merge_results,
)
from repro.streaming.tree import merge_path
from repro.utils.validation import ensure_epsilon, ensure_positive_int

__all__ = ["StreamingPublisher", "epoch_seed"]


def epoch_seed(seed, epoch: int):
    """The independent, reproducible seed for one epoch's publish.

    Parameters
    ----------
    seed:
        The stream's base seed; ``None`` means every epoch draws fresh
        entropy.
    epoch:
        The epoch index; the draw is a pure function of ``(seed,
        epoch)``, mirroring :func:`repro.core.sharding.shard_seeds`.
    """
    epoch = int(epoch)
    if epoch < 0:
        raise StreamingError(f"invalid epoch index {epoch}")
    if seed is None:
        return None
    return np.random.SeedSequence(entropy=seed, spawn_key=(epoch,))


def _mechanism_spec(mechanism, schema: Schema) -> dict:
    """A JSON description from which :meth:`StreamingPublisher.open` can
    rebuild the mechanism (standard mechanisms only)."""
    if isinstance(mechanism, BasicMechanism):
        return {"kind": "basic"}
    if isinstance(mechanism, PriveletPlusMechanism):
        # Privelet is Privelet+ with SA = {}; resolving the (schema-
        # deterministic) "auto" rule now keeps resumed streams on the
        # exact SA set the first epoch used.
        return {"kind": "privelet+", "sa": list(mechanism.sa_for(schema))}
    return {"kind": mechanism.name}


def _mechanism_from_spec(spec: dict):
    """Rebuild a standard mechanism from :func:`_mechanism_spec` output."""
    kind = spec.get("kind")
    if kind == "basic":
        return BasicMechanism()
    if kind == "privelet+":
        return PriveletPlusMechanism(sa_names=tuple(spec.get("sa", ())))
    raise StreamingError(
        f"cannot rebuild mechanism {kind!r} from the archive header; "
        "pass the mechanism explicitly to StreamingPublisher.open"
    )


class StreamingPublisher:
    """Ingest timestamped row batches; publish each epoch into a dyadic tree.

    Parameters
    ----------
    schema:
        The stream's released schema (time is not an attribute; rows
        are bucketed by their timestamps instead).
    mechanism:
        Any :class:`~repro.core.framework.PublishingMechanism`; applied
        once per epoch close.  Its SA choice must be deterministic per
        schema (all standard mechanisms are), because tree merges
        require every epoch to share one coefficient space.
    epsilon:
        The privacy budget — every epoch gets all of it (parallel
        composition over disjoint epochs).
    epoch_length:
        Timestamp units per epoch; row timestamp ``t`` lands in epoch
        ``t // epoch_length``.
    seed:
        Base seed; epoch ``e``'s noise is a pure function of ``(seed,
        e)`` (see :func:`epoch_seed`).
    materialize:
        Per-epoch representation: the default ``False`` keeps every
        node in coefficient space, which is also what makes merges an
        ``O(m)`` tensor add with no inverse transform.
    archive_path:
        Optional path of a v4 stream archive to create now and append
        each epoch close to.  Must not already exist — resume an
        existing archive with :meth:`open` instead.
    """

    def __init__(
        self,
        schema: Schema,
        mechanism,
        epsilon: float,
        *,
        epoch_length: int = 1,
        seed=None,
        materialize: bool = False,
        archive_path=None,
    ):
        if not isinstance(schema, Schema):
            raise StreamingError("schema must be a Schema instance")
        self._schema = schema
        self._mechanism = mechanism
        self._epsilon = ensure_epsilon(epsilon)
        self._epoch_length = ensure_positive_int(epoch_length, "epoch_length")
        self._seed = seed
        self._materialize = bool(materialize)
        self._epoch = 0
        self._buffers: dict[int, list[np.ndarray]] = {}
        self._nodes: dict[tuple[int, int], StreamNode] = {}
        self._entries: list[dict] = []
        self._sa: tuple[str, ...] | None = None
        self._archive_path = None
        if archive_path is not None:
            # Imported here: repro.io imports repro.streaming.release.
            from repro.io import create_stream_archive

            self._archive_path = str(archive_path)
            create_stream_archive(
                self._archive_path,
                schema,
                epsilon=self._epsilon,
                epoch_length=self._epoch_length,
                mechanism=_mechanism_spec(mechanism, schema),
                mechanism_name=mechanism.name,
                seed=seed,
                representation="dense" if self._materialize else "coefficients",
            )

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path, *, mechanism=None) -> "StreamingPublisher":
        """Resume publishing onto an existing v4 stream archive.

        The publishing configuration (schema, ε, epoch length, mechanism,
        base seed) is read back from the archive header, the tree from
        its newest manifest (nodes stay lazy — resuming loads no
        payload), and the next :meth:`advance_epoch` continues the
        stream exactly where it stopped, with the same per-epoch noise
        stream when a base seed was recorded.

        Parameters
        ----------
        path:
            A v4 archive created by a publisher with ``archive_path``
            (or by :func:`repro.io.save_result` on a stream result).
        mechanism:
            Override for the mechanism; required when the archive was
            produced by a non-standard mechanism the header cannot
            describe.

        Returns
        -------
        StreamingPublisher
            Positioned at the first unclosed epoch.
        """
        from repro.io import (
            read_stream_header,
            read_stream_manifest,
            schema_from_dict,
            stream_nodes_from_manifest,
        )

        header = read_stream_header(path)
        manifest = read_stream_manifest(path)
        schema = schema_from_dict(header["schema"])
        if mechanism is None:
            mechanism = _mechanism_from_spec(header.get("mechanism", {}))
        publisher = cls(
            schema,
            mechanism,
            float(header["epsilon"]),
            epoch_length=int(header.get("epoch_length", 1)),
            seed=header.get("seed"),
            materialize=header.get("node_representation") == "dense",
        )
        publisher._archive_path = str(path)
        publisher._epoch = int(manifest["epochs"])
        publisher._entries = [dict(entry) for entry in manifest["nodes"]]
        publisher._nodes = stream_nodes_from_manifest(path, schema, manifest)
        if publisher._entries:
            publisher._sa = tuple(publisher._entries[0]["sa"])
        return publisher

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The stream's released schema."""
        return self._schema

    @property
    def epsilon(self) -> float:
        """The per-epoch (and overall) privacy budget."""
        return self._epsilon

    @property
    def epoch_length(self) -> int:
        """Timestamp units per epoch."""
        return self._epoch_length

    @property
    def current_epoch(self) -> int:
        """The open (not yet published) epoch's index."""
        return self._epoch

    @property
    def closed_epochs(self) -> int:
        """How many epochs have been published (``T``)."""
        return self._epoch

    @property
    def pending_rows(self) -> int:
        """Rows buffered across the open and future epochs."""
        return sum(
            batch.shape[0] for batches in self._buffers.values() for batch in batches
        )

    @property
    def archive_path(self) -> str | None:
        """The v4 archive this publisher appends to, if any."""
        return self._archive_path

    # ------------------------------------------------------------------
    def ingest(self, table: Table, timestamps=None) -> int:
        """Buffer one batch of rows into their epochs.

        Parameters
        ----------
        table:
            Rows over the stream's schema (names and shape must match).
        timestamps:
            Per-row integer timestamps; row ``i`` lands in epoch
            ``timestamps[i] // epoch_length``.  ``None`` buffers the
            whole batch into the open epoch.  Timestamps inside an
            already-published epoch raise
            :class:`~repro.errors.StreamingError` — a released epoch is
            immutable, late arrivals must be handled upstream.

        Returns
        -------
        int
            How many rows were buffered.
        """
        if not isinstance(table, Table):
            raise StreamingError(f"ingest needs a Table, got {type(table).__name__}")
        if (
            table.schema.names != self._schema.names
            or table.schema.shape != self._schema.shape
        ):
            raise StreamingError(
                f"table schema {table.schema!r} does not match the stream's "
                f"{self._schema!r}"
            )
        rows = table.rows
        if timestamps is None:
            if rows.shape[0]:
                self._buffers.setdefault(self._epoch, []).append(rows)
            return int(rows.shape[0])
        timestamps = np.asarray(timestamps, dtype=np.int64)
        if timestamps.shape != (rows.shape[0],):
            raise StreamingError(
                f"timestamps must have shape ({rows.shape[0]},), "
                f"got {timestamps.shape}"
            )
        if timestamps.size == 0:
            return 0
        if timestamps.min() < 0:
            raise StreamingError("timestamps must be non-negative")
        epochs = timestamps // self._epoch_length
        if epochs.min() < self._epoch:
            raise StreamingError(
                f"rows timestamped for epoch {int(epochs.min())} arrived "
                f"after that epoch was published (current epoch is "
                f"{self._epoch})"
            )
        for epoch in np.unique(epochs):
            self._buffers.setdefault(int(epoch), []).append(rows[epochs == epoch])
        return int(rows.shape[0])

    def advance_epoch(self) -> PublishResult:
        """Close the open epoch: publish it and merge completed nodes.

        The epoch's buffered rows (possibly none — empty epochs publish
        noise-only releases, so the row count itself is protected)
        become one frequency matrix, published at the full ε with the
        epoch's derived seed.  Every tree node completed by this close
        (:func:`repro.streaming.tree.merge_path`) is then materialized
        by summing its children's payloads, and — when an archive is
        attached — the new nodes plus a fresh manifest are appended.

        Returns
        -------
        PublishResult
            The closed epoch's own (leaf) release.
        """
        epoch = self._epoch
        batches = self._buffers.pop(epoch, [])
        rows = (
            np.concatenate(batches, axis=0)
            if batches
            else np.empty((0, self._schema.dimensions), dtype=np.int64)
        )
        leaf = self._mechanism.publish(
            Table(self._schema, rows),
            self._epsilon,
            seed=epoch_seed(self._seed, epoch),
            materialize=self._materialize,
        )
        sa = tuple(infer_sa_names(leaf))
        if self._sa is None:
            self._sa = sa
        elif sa != self._sa:
            raise StreamingError(
                f"mechanism changed its SA set mid-stream ({self._sa} -> "
                f"{sa}); tree merges need one shared coefficient space"
            )
        fresh = {(0, epoch): leaf}
        for level, index in merge_path(epoch)[1:]:
            left = self._node_result(level - 1, 2 * index, fresh)
            right = self._node_result(level - 1, 2 * index + 1, fresh)
            fresh[(level, index)] = merge_results(left, right)
        for (level, index), result in fresh.items():
            self._nodes[(level, index)] = StreamNode.from_result(level, index, result)
            self._entries.append(self._node_entry(level, index, result))
        self._epoch = epoch + 1
        if self._archive_path is not None:
            from repro.io import append_stream_nodes

            append_stream_nodes(
                self._archive_path,
                {key: result.release for key, result in fresh.items()},
                {"epochs": self._epoch, "nodes": self._entries},
            )
        return leaf

    def advance_to(self, epoch: int) -> int:
        """Close epochs until ``epoch`` is the open one.

        Parameters
        ----------
        epoch:
            The target open-epoch index; epochs without buffered rows
            publish as noise-only empties along the way.

        Returns
        -------
        int
            How many epochs were closed.
        """
        epoch = int(epoch)
        if epoch < self._epoch:
            raise StreamingError(
                f"cannot rewind to epoch {epoch}; epoch {self._epoch - 1} "
                "is already published"
            )
        closed = 0
        while self._epoch < epoch:
            self.advance_epoch()
            closed += 1
        return closed

    # ------------------------------------------------------------------
    def release(self, lo: int = 0, hi: int | None = None) -> StreamRelease:
        """The stream's answer backend over epochs ``[lo, hi)``.

        Parameters
        ----------
        lo:
            First epoch of the window (default 0).
        hi:
            One past the last epoch; ``None`` means every closed epoch.

        Returns
        -------
        StreamRelease
            A snapshot view: it shares node payloads with the publisher
            but its epoch count is fixed at call time (live serving
            re-resolves through the archive instead).
        """
        if hi is None:
            hi = self._epoch
        return StreamRelease(
            self._schema, self._sa_hint(), self._epoch, self._nodes, window=(lo, hi)
        )

    def result(self) -> PublishResult:
        """The stream wrapped as a :class:`PublishResult` over ``[0, T)``.

        Accounting aggregates the leaves without loading any payload
        (manifest entries carry the numbers): ε is shared, λ and ρ are
        per-leaf maxima, and the variance bound is the per-leaf sum.
        """
        leaves = [
            SimpleNamespace(
                epsilon=entry["epsilon"],
                noise_magnitude=entry["noise_magnitude"],
                generalized_sensitivity=entry["generalized_sensitivity"],
                variance_bound=entry["variance_bound"],
            )
            for entry in self._entries
            if entry["level"] == 0
        ]
        return _wrap_stream_result(
            self.release(),
            leaves,
            epsilon=self._epsilon,
            mechanism=self._mechanism.name,
            epoch_length=self._epoch_length,
        )

    # ------------------------------------------------------------------
    def _node_result(self, level, index, fresh) -> PublishResult:
        key = (level, index)
        if key in fresh:
            return fresh[key]
        try:
            return self._nodes[key].result()
        except KeyError:
            raise StreamingError(f"stream is missing tree node {key}") from None

    def _node_entry(self, level: int, index: int, result: PublishResult) -> dict:
        return {
            "level": level,
            "index": index,
            "representation": result.representation,
            "epsilon": result.epsilon,
            "noise_magnitude": result.noise_magnitude,
            "generalized_sensitivity": result.generalized_sensitivity,
            "variance_bound": result.variance_bound,
            "sa": list(self._sa or ()),
        }

    def _sa_hint(self) -> tuple[str, ...]:
        if self._sa is not None:
            return self._sa
        if isinstance(self._mechanism, PriveletPlusMechanism):
            return self._mechanism.sa_for(self._schema)
        if isinstance(self._mechanism, BasicMechanism):
            return tuple(self._schema.names)
        return ()

    def __repr__(self) -> str:
        return (
            f"StreamingPublisher(epochs={self._epoch}, "
            f"pending_rows={self.pending_rows}, "
            f"nodes={len(self._nodes)}, "
            f"archive={self._archive_path!r})"
        )
