"""Dyadic time-hierarchy math for streaming releases.

A stream is a sequence of **epochs** — disjoint time buckets, each
published once as its own release.  Because the buckets are disjoint in
rows, DP parallel composition lets every epoch spend the full ε; and
because the wavelet pipeline is linear, the coefficient tensors of two
published epochs can be *added* to obtain a release covering both — pure
post-processing, no fresh noise, no extra privacy cost.

Doing that addition along a dyadic tree gives every aligned power-of-two
span of epochs its own pre-merged node:

* a **node** ``(level, index)`` covers epochs
  ``[index * 2**level, (index + 1) * 2**level)``;
* closing epoch ``e`` completes the leaf ``(0, e)`` plus one internal
  node per trailing set bit of ``e + 1`` (:func:`merge_path`);
* any window ``[lo, hi)`` over closed epochs decomposes into the
  **canonical cover** (:func:`dyadic_cover`) of at most
  ``2 * ceil(log2(hi - lo))`` maximal nodes (:func:`cover_bound`) —
  which is what keeps window queries at ``O(log T)`` release touches
  instead of ``O(T)``.

All functions here are pure integer math; the releases that hang off
the nodes live in :mod:`repro.streaming.release`.
"""

from __future__ import annotations

from repro.errors import StreamingError

__all__ = [
    "node_span",
    "merge_path",
    "dyadic_cover",
    "cover_bound",
]


def _check_window(lo: int, hi: int) -> tuple[int, int]:
    """Validate a half-open epoch window (empty windows are legal)."""
    lo, hi = int(lo), int(hi)
    if lo < 0 or hi < lo:
        raise StreamingError(f"invalid epoch window [{lo}, {hi})")
    return lo, hi


def node_span(level: int, index: int) -> tuple[int, int]:
    """The half-open epoch interval a tree node covers.

    Parameters
    ----------
    level:
        Tree level; a level-``k`` node spans ``2**k`` epochs.
    index:
        Position among the level's nodes, left to right.

    Returns
    -------
    tuple[int, int]
        ``(index * 2**level, (index + 1) * 2**level)``.
    """
    level, index = int(level), int(index)
    if level < 0 or index < 0:
        raise StreamingError(f"invalid tree node ({level}, {index})")
    return index << level, (index + 1) << level


def merge_path(epoch: int) -> list[tuple[int, int]]:
    """Every tree node completed by closing ``epoch``, leaf first.

    The leaf ``(0, epoch)`` always completes; an internal node at level
    ``k >= 1`` completes exactly when its span ends at ``epoch + 1``,
    i.e. when ``2**k`` divides ``epoch + 1`` — one node per trailing set
    bit of ``epoch + 1``.

    Parameters
    ----------
    epoch:
        The epoch index being closed (0-based).

    Returns
    -------
    list[tuple[int, int]]
        ``(level, index)`` pairs in merge order: the leaf, then each
        newly completed internal node bottom-up.
    """
    epoch = int(epoch)
    if epoch < 0:
        raise StreamingError(f"invalid epoch index {epoch}")
    nodes = [(0, epoch)]
    boundary = epoch + 1
    level = 1
    while boundary % (1 << level) == 0:
        nodes.append((level, (boundary >> level) - 1))
        level += 1
    return nodes


def dyadic_cover(lo: int, hi: int) -> list[tuple[int, int]]:
    """The canonical cover of ``[lo, hi)`` by maximal dyadic nodes.

    Greedily takes the largest node that starts at the running position,
    is aligned to its own size, and fits inside the window — the classic
    segment-tree decomposition.  The nodes are disjoint, sorted, cover
    the window exactly, and number at most :func:`cover_bound` of the
    window length.  Every returned node is *available* in any stream
    whose closed prefix contains the window: a node's span ends inside
    ``[0, hi)``, so it completed no later than epoch ``hi - 1``.

    Parameters
    ----------
    lo, hi:
        Half-open epoch window; ``lo == hi`` yields an empty cover.

    Returns
    -------
    list[tuple[int, int]]
        ``(level, index)`` pairs, ascending in time.
    """
    lo, hi = _check_window(lo, hi)
    nodes = []
    position = lo
    while position < hi:
        # Largest level both aligned at `position` and fitting in the
        # remaining window.
        alignment = (
            (position & -position).bit_length() - 1
            if position
            else (hi - position).bit_length()
        )
        level = min(alignment, (hi - position).bit_length() - 1)
        nodes.append((level, position >> level))
        position += 1 << level
    return nodes


def cover_bound(length: int) -> int:
    """Upper bound on the canonical cover size of a window of ``length``.

    ``2 * ceil(log2(length))`` for ``length >= 2`` (one ascending and
    one descending run of node sizes), 1 for a single epoch, 0 for an
    empty window.  Tests assert :func:`dyadic_cover` stays within it.

    Parameters
    ----------
    length:
        The window length in epochs.
    """
    length = int(length)
    if length < 0:
        raise StreamingError(f"invalid window length {length}")
    if length <= 1:
        return length
    return 2 * (length - 1).bit_length()
