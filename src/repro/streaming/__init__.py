"""Streaming ingestion: temporal releases over a logarithmic time hierarchy.

One-shot publishing answers "what does the table look like today"; this
package answers it continuously.  The pieces (each documented in its own
module):

* :mod:`repro.streaming.tree` — the dyadic epoch-tree math: node spans,
  the merge path an epoch close completes, and the canonical
  ``O(log T)`` window cover;
* :class:`~repro.streaming.release.StreamRelease` — the composed answer
  backend: a time window routed to its cover nodes, answers summed,
  exact variances aggregated (the temporal sibling of
  :class:`~repro.core.sharding.ShardedRelease`);
* :class:`~repro.streaming.publisher.StreamingPublisher` — ingests
  timestamped row batches, closes epochs (publish once per epoch at the
  full ε, DP parallel composition over disjoint time buckets), merges
  completed nodes, and appends to a v4 stream archive a live
  :class:`~repro.serving.server.ReleaseServer` re-resolves on.

See ``docs/ARCHITECTURE.md`` for the epoch lifecycle and the v4 format.
"""

from repro.streaming.publisher import StreamingPublisher, epoch_seed
from repro.streaming.release import (
    StreamNode,
    StreamRelease,
    merge_results,
    stream_result,
)
from repro.streaming.tree import cover_bound, dyadic_cover, merge_path, node_span

__all__ = [
    "StreamNode",
    "StreamRelease",
    "StreamingPublisher",
    "cover_bound",
    "dyadic_cover",
    "epoch_seed",
    "merge_path",
    "merge_results",
    "node_span",
    "stream_result",
]
