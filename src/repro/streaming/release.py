"""Temporal releases: one answer backend over a dyadic tree of epochs.

A :class:`StreamRelease` is the streaming analogue of
:class:`~repro.core.sharding.ShardedRelease`: many independently
published releases composed behind the one
:class:`~repro.core.release.Release` protocol.  Where a sharded release
routes a box to the shards its partition-axis range intersects, a stream
release routes a **time window** to the canonical dyadic cover of its
epoch range (:func:`repro.streaming.tree.dyadic_cover`) — at most
``2 * ceil(log2 T)`` pre-merged node releases, each answering the *same*
box over the *same* schema, their answers summed.

Exact uncertainty composes the same way, and more cheaply than for
shards: every node shares one schema and one SA set, so the per-axis
variance profiles are identical across nodes and the window variance is
just ``2 * (sum over cover nodes of lambda_eff**2) * prod_i profile_i``
— one profile computation regardless of how many nodes the cover
touches.  A level-``k`` node's ``lambda_eff`` is ``lambda * 2**(k/2)``:
its coefficients are the *sum* of ``2**k`` independently noised epoch
tensors (post-processing, no fresh noise), so its per-coefficient noise
variance is ``2**k`` times one epoch's and the usual
``2 lambda_eff**2 * prod profile`` formula stays exact.

Since the composition-algebra refactor, all of that lives in
:class:`~repro.core.compose.TimeTree` — the time combinator of
:mod:`repro.core.compose` — and :class:`StreamRelease` is a thin
constructor over it.  Nodes load lazily (archive-backed streams
decompress a node member on its first routed query), and
:meth:`~repro.core.compose.TimeTree.window` produces constant-size
views sharing the node table — the object a server builds per
``time_range`` request group.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.core.compose import TimeTree
from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, DenseRelease, Release
from repro.data.frequency import FrequencyMatrix
from repro.errors import StreamingError
from repro.streaming.tree import node_span

__all__ = ["StreamNode", "StreamRelease", "merge_results", "stream_result"]


class StreamNode:
    """One tree node's release: accounting now, payload on first touch.

    The accounting (``noise_magnitude`` as the node's effective λ plus
    the shared SA set) is all a :class:`StreamRelease` needs for exact
    variances, so an archive-backed stream registers and profiles
    queries without decompressing any node; ``load`` runs once,
    thread-safely, on the first query whose cover touches the node.
    Satisfies the part protocol of
    :class:`~repro.core.compose.ComposedRelease`.

    Parameters
    ----------
    level, index:
        The node's tree coordinates (see
        :func:`repro.streaming.tree.node_span`).
    noise_magnitude:
        The node's effective Laplace parameter: ``lambda * 2**(level/2)``
        for a node merged from ``2**level`` epochs published at λ each.
    load:
        Zero-argument callable returning the node's
        :class:`~repro.core.framework.PublishResult`.
    representation:
        The payload's representation when known without loading
        (``"dense"``/``"coefficients"``), else ``None``.
    """

    def __init__(
        self, level: int, index: int, noise_magnitude: float, load,
        representation: str | None = None,
    ):
        self.level = int(level)
        self.index = int(index)
        self.noise_magnitude = float(noise_magnitude)
        self.representation = representation
        self._loader = load
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @classmethod
    def from_result(cls, level: int, index: int, result: PublishResult) -> "StreamNode":
        """Wrap an in-memory node ``result`` (already loaded).

        Parameters
        ----------
        level, index:
            The node's tree coordinates.
        result:
            The node's published result.
        """
        node = cls(
            level,
            index,
            result.noise_magnitude,
            lambda: result,
            result.representation,
        )
        node._result = result
        return node

    @property
    def span(self) -> tuple[int, int]:
        """The half-open epoch interval this node covers."""
        return node_span(self.level, self.index)

    @property
    def loaded(self) -> bool:
        """True once the payload has been materialized."""
        return self._result is not None

    def result(self) -> PublishResult:
        """The node's full result, loading it on first touch."""
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = self._loader()
        return self._result


def merge_results(left: PublishResult, right: PublishResult) -> PublishResult:
    """Merge two published sibling nodes into their parent's release.

    The wavelet pipeline is linear, so the parent's payload is the
    element-wise **sum** of the children's (coefficient tensors for
    coefficient releases, ``M*`` for dense ones) — pure post-processing
    of already-published data, costing no privacy budget and drawing no
    fresh noise.  The accounting composes exactly: independent noise
    means variances add, so the parent's effective λ is
    ``sqrt(left_lambda**2 + right_lambda**2)``.

    Parameters
    ----------
    left, right:
        The sibling nodes' results, published over the same schema at
        the same ε; coefficient releases must share one SA set.

    Returns
    -------
    PublishResult
        The parent node's result, in the children's representation.
    """
    left_release, right_release = left.release, right.release
    if left_release.schema.shape != right_release.schema.shape:
        raise StreamingError(
            f"cannot merge releases of shapes {left_release.schema.shape} "
            f"and {right_release.schema.shape}"
        )
    if isinstance(left_release, CoefficientRelease) and isinstance(
        right_release, CoefficientRelease
    ):
        if left_release.sa_names != right_release.sa_names:
            raise StreamingError(
                f"cannot merge coefficient releases with SA sets "
                f"{left_release.sa_names} and {right_release.sa_names}"
            )
        merged: Release = CoefficientRelease(
            left_release.schema,
            left_release.sa_names,
            left_release.coefficients + right_release.coefficients,
        )
    elif isinstance(left_release, DenseRelease) and isinstance(
        right_release, DenseRelease
    ):
        merged = DenseRelease(
            FrequencyMatrix(
                left_release.schema,
                left_release.to_matrix().values + right_release.to_matrix().values,
            )
        )
    else:
        raise StreamingError(
            "can only merge two coefficient or two dense releases, got "
            f"{left_release.representation!r} and {right_release.representation!r}"
        )
    return PublishResult(
        release=merged,
        epsilon=float(left.epsilon),
        noise_magnitude=float(
            np.hypot(left.noise_magnitude, right.noise_magnitude)
        ),
        generalized_sensitivity=max(
            left.generalized_sensitivity, right.generalized_sensitivity
        ),
        variance_bound=left.variance_bound + right.variance_bound,
        details=dict(left.details),
    )


class StreamRelease(TimeTree):
    """A window over a stream's dyadic node tree, behind one backend.

    A thin constructor over the algebra's
    :class:`~repro.core.compose.TimeTree` combinator, kept for its
    established name and accessors (``epochs``, ``cover``, ``nodes``,
    ``window``).  All routing, answer accumulation, and the
    single-profile exact variance pass are inherited: a box query is
    answered by every node in the window's canonical dyadic cover (the
    same box each, summed); independent per-epoch noise means the exact
    variances sum too.

    Parameters
    ----------
    schema:
        The released schema (time is *not* an axis; it is addressed by
        epoch windows).
    sa_names:
        The SA set every node was published under.
    epochs:
        How many epochs of the stream are closed (``T``); the node
        table must contain every dyadic node inside ``[0, T)``.
    nodes:
        Mapping ``(level, index) -> StreamNode``, shared (not copied)
        between a stream and its ``window`` views.
    window:
        Optional ``(lo, hi)`` epoch window; ``None`` means ``[0, T)``.
    """


def _wrap_stream_result(
    release: StreamRelease, leaf_results=None, *, epsilon: float = 0.0, **details
) -> PublishResult:
    """Wrap a :class:`StreamRelease` in a :class:`PublishResult`.

    The accounting mirrors :func:`repro.core.sharding.publish_sharded`:
    ε is shared (parallel composition over disjoint epochs),
    ``noise_magnitude`` / ``generalized_sensitivity`` are the per-leaf
    maxima, and ``variance_bound`` is the per-leaf sum — a window query
    may span every epoch.

    Parameters
    ----------
    release:
        The stream release to wrap.
    leaf_results:
        The leaf (level-0) results to aggregate accounting from; when
        ``None`` they are read off the release's node table (loading
        nothing — only accounting fields are touched for in-memory
        nodes; archive-backed callers pass manifest-derived values
        instead via :mod:`repro.io`).
    epsilon:
        The stream's ε when no leaf exists yet to read it from (a
        zero-epoch stream).
    details:
        Extra ``details`` entries recorded on the result.
    """
    if leaf_results is None:
        leaf_results = [
            release.node_result(0, epoch) for epoch in range(release.epochs)
        ]
    leaves = list(leaf_results)
    payload = {"stream": True, "epochs": release.epochs}
    payload.update(details)
    if not leaves:
        return PublishResult(
            release=release,
            epsilon=float(epsilon),
            noise_magnitude=0.0,
            generalized_sensitivity=0.0,
            variance_bound=0.0,
            details=payload,
        )
    return PublishResult(
        release=release,
        epsilon=float(leaves[0].epsilon),
        noise_magnitude=max(leaf.noise_magnitude for leaf in leaves),
        generalized_sensitivity=max(
            leaf.generalized_sensitivity for leaf in leaves
        ),
        variance_bound=sum(leaf.variance_bound for leaf in leaves),
        details=payload,
    )


def stream_result(
    release: StreamRelease, leaf_results=None, *, epsilon: float = 0.0, **details
) -> PublishResult:
    """Deprecated alias wrapping a stream release in a result.

    Kept for released callers; ``release``, ``leaf_results``,
    ``epsilon``, and extra details forward unchanged.  Prefer
    ``repro.publish(table, epsilon, stream=timestamps)`` (which
    publishes and wraps in one step) or
    :meth:`~repro.streaming.publisher.StreamingPublisher.result`.
    """
    warnings.warn(
        "stream_result is deprecated; use repro.publish(..., stream=...) or "
        "StreamingPublisher.result() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _wrap_stream_result(
        release, leaf_results, epsilon=epsilon, **details
    )
