"""Temporal releases: one answer backend over a dyadic tree of epochs.

A :class:`StreamRelease` is the streaming analogue of
:class:`~repro.core.sharding.ShardedRelease`: many independently
published releases composed behind the one
:class:`~repro.core.release.Release` protocol.  Where a sharded release
routes a box to the shards its partition-axis range intersects, a stream
release routes a **time window** to the canonical dyadic cover of its
epoch range (:func:`repro.streaming.tree.dyadic_cover`) — at most
``2 * ceil(log2 T)`` pre-merged node releases, each answering the *same*
box over the *same* schema, their answers summed.

Exact uncertainty composes the same way, and more cheaply than for
shards: every node shares one schema and one SA set, so the per-axis
variance profiles are identical across nodes and the window variance is
just ``2 * (sum over cover nodes of lambda_eff**2) * prod_i profile_i``
— one profile computation regardless of how many nodes the cover
touches.  A level-``k`` node's ``lambda_eff`` is ``lambda * 2**(k/2)``:
its coefficients are the *sum* of ``2**k`` independently noised epoch
tensors (post-processing, no fresh noise), so its per-coefficient noise
variance is ``2**k`` times one epoch's and the usual
``2 lambda_eff**2 * prod profile`` formula stays exact.

Nodes load lazily (archive-backed streams decompress a node member on
its first routed query), and :meth:`StreamRelease.window` produces
constant-size views sharing the node table — the object a server builds
per ``time_range`` request group.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.exact import AxisProfileCache
from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, DenseRelease, Release
from repro.core.sharding import ShardProfileCaches
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import StreamingError
from repro.streaming.tree import dyadic_cover, node_span
from repro.transforms.multidim import HNTransform

__all__ = ["StreamNode", "StreamRelease", "merge_results", "stream_result"]


class StreamNode:
    """One tree node's release: accounting now, payload on first touch.

    The accounting (``noise_magnitude`` as the node's effective λ plus
    the shared SA set) is all a :class:`StreamRelease` needs for exact
    variances, so an archive-backed stream registers and profiles
    queries without decompressing any node; ``load`` runs once,
    thread-safely, on the first query whose cover touches the node.

    Parameters
    ----------
    level, index:
        The node's tree coordinates (see
        :func:`repro.streaming.tree.node_span`).
    noise_magnitude:
        The node's effective Laplace parameter: ``lambda * 2**(level/2)``
        for a node merged from ``2**level`` epochs published at λ each.
    load:
        Zero-argument callable returning the node's
        :class:`~repro.core.framework.PublishResult`.
    representation:
        The payload's representation when known without loading
        (``"dense"``/``"coefficients"``), else ``None``.
    """

    def __init__(
        self, level: int, index: int, noise_magnitude: float, load,
        representation: str | None = None,
    ):
        self.level = int(level)
        self.index = int(index)
        self.noise_magnitude = float(noise_magnitude)
        self.representation = representation
        self._loader = load
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @classmethod
    def from_result(cls, level: int, index: int, result: PublishResult) -> "StreamNode":
        """Wrap an in-memory node ``result`` (already loaded).

        Parameters
        ----------
        level, index:
            The node's tree coordinates.
        result:
            The node's published result.
        """
        node = cls(
            level,
            index,
            result.noise_magnitude,
            lambda: result,
            result.representation,
        )
        node._result = result
        return node

    @property
    def span(self) -> tuple[int, int]:
        """The half-open epoch interval this node covers."""
        return node_span(self.level, self.index)

    @property
    def loaded(self) -> bool:
        """True once the payload has been materialized."""
        return self._result is not None

    def result(self) -> PublishResult:
        """The node's full result, loading it on first touch."""
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = self._loader()
        return self._result


def merge_results(left: PublishResult, right: PublishResult) -> PublishResult:
    """Merge two published sibling nodes into their parent's release.

    The wavelet pipeline is linear, so the parent's payload is the
    element-wise **sum** of the children's (coefficient tensors for
    coefficient releases, ``M*`` for dense ones) — pure post-processing
    of already-published data, costing no privacy budget and drawing no
    fresh noise.  The accounting composes exactly: independent noise
    means variances add, so the parent's effective λ is
    ``sqrt(left_lambda**2 + right_lambda**2)``.

    Parameters
    ----------
    left, right:
        The sibling nodes' results, published over the same schema at
        the same ε; coefficient releases must share one SA set.

    Returns
    -------
    PublishResult
        The parent node's result, in the children's representation.
    """
    left_release, right_release = left.release, right.release
    if left_release.schema.shape != right_release.schema.shape:
        raise StreamingError(
            f"cannot merge releases of shapes {left_release.schema.shape} "
            f"and {right_release.schema.shape}"
        )
    if isinstance(left_release, CoefficientRelease) and isinstance(
        right_release, CoefficientRelease
    ):
        if left_release.sa_names != right_release.sa_names:
            raise StreamingError(
                f"cannot merge coefficient releases with SA sets "
                f"{left_release.sa_names} and {right_release.sa_names}"
            )
        merged: Release = CoefficientRelease(
            left_release.schema,
            left_release.sa_names,
            left_release.coefficients + right_release.coefficients,
        )
    elif isinstance(left_release, DenseRelease) and isinstance(
        right_release, DenseRelease
    ):
        merged = DenseRelease(
            FrequencyMatrix(
                left_release.schema,
                left_release.to_matrix().values + right_release.to_matrix().values,
            )
        )
    else:
        raise StreamingError(
            "can only merge two coefficient or two dense releases, got "
            f"{left_release.representation!r} and {right_release.representation!r}"
        )
    return PublishResult(
        release=merged,
        epsilon=float(left.epsilon),
        noise_magnitude=float(
            np.hypot(left.noise_magnitude, right.noise_magnitude)
        ),
        generalized_sensitivity=max(
            left.generalized_sensitivity, right.generalized_sensitivity
        ),
        variance_bound=left.variance_bound + right.variance_bound,
        details=dict(left.details),
    )


class StreamRelease(Release):
    """A window over a stream's dyadic node tree, behind one backend.

    Implements the full :class:`~repro.core.release.Release` protocol
    plus :meth:`noise_variances_boxes` — the composed-release hook the
    query engine delegates exact uncertainty to, exactly as it does for
    :class:`~repro.core.sharding.ShardedRelease`.  A box query is
    answered by every node in the window's canonical dyadic cover (the
    same box each, summed); independent per-epoch noise means the exact
    variances sum too, and because all nodes share one transform the
    variance pass computes a single profile product per query.

    Parameters
    ----------
    schema:
        The released schema (time is *not* an axis; it is addressed by
        epoch windows).
    sa_names:
        The SA set every node was published under.
    epochs:
        How many epochs of the stream are closed (``T``); the node
        table must contain every dyadic node inside ``[0, T)``.
    nodes:
        Mapping ``(level, index) -> StreamNode``, shared (not copied)
        between a stream and its :meth:`window` views.
    window:
        Optional ``(lo, hi)`` epoch window; ``None`` means ``[0, T)``.
    """

    representation = "stream"

    def __init__(self, schema: Schema, sa_names, epochs: int, nodes, *, window=None):
        self._schema = schema
        self._transform = HNTransform(schema, tuple(sa_names))
        self._sa_names = tuple(
            name for name in schema.names if name in self._transform.sa_names
        )
        self._epochs = int(epochs)
        if self._epochs < 0:
            raise StreamingError(f"invalid epoch count {self._epochs}")
        self._nodes = nodes
        if window is None:
            window = (0, self._epochs)
        lo, hi = int(window[0]), int(window[1])
        if not 0 <= lo <= hi <= self._epochs:
            raise StreamingError(
                f"window [{lo}, {hi}) outside the closed prefix "
                f"[0, {self._epochs})"
            )
        self._window = (lo, hi)
        self._cover = dyadic_cover(lo, hi)
        missing = [key for key in self._cover if key not in self._nodes]
        if missing:
            raise StreamingError(f"stream is missing tree nodes {missing}")
        self._caches = None
        self._caches_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def sa_names(self) -> tuple[str, ...]:
        """The SA set shared by every node, in schema order."""
        return self._sa_names

    @property
    def transform(self) -> HNTransform:
        """The HN transform every node's coefficients live in."""
        return self._transform

    @property
    def epochs(self) -> int:
        """How many epochs of the stream are closed."""
        return self._epochs

    @property
    def window_bounds(self) -> tuple[int, int]:
        """The half-open epoch window this release answers over."""
        return self._window

    @property
    def cover(self) -> tuple[tuple[int, int], ...]:
        """The window's canonical dyadic cover, as ``(level, index)`` pairs."""
        return tuple(self._cover)

    @property
    def nodes_touched(self) -> int:
        """How many node releases a query on this window consults."""
        return len(self._cover)

    @property
    def num_nodes(self) -> int:
        """Total tree nodes in the stream's node table."""
        return len(self._nodes)

    @property
    def nodes(self) -> dict:
        """The ``(level, index) -> StreamNode`` table (treat as read-only)."""
        return self._nodes

    @property
    def nodes_loaded(self) -> int:
        """How many node payloads have been materialized so far."""
        return sum(node.loaded for node in self._nodes.values())

    def node_result(self, level: int, index: int) -> PublishResult:
        """Tree node ``(level, index)``'s result (loads it if lazy).

        Parameters
        ----------
        level, index:
            The node's tree coordinates.
        """
        try:
            node = self._nodes[(int(level), int(index))]
        except KeyError:
            raise StreamingError(f"no tree node ({level}, {index})") from None
        return node.result()

    def window(self, lo: int, hi: int | None = None) -> "StreamRelease":
        """A view answering only over epochs ``[lo, hi)``.

        The view shares the node table (and therefore every lazily
        loaded payload) with this release; building it costs the
        ``O(log T)`` cover computation only.

        Parameters
        ----------
        lo:
            First epoch of the window.
        hi:
            One past the last epoch; ``None`` means the newest closed
            epoch.

        Returns
        -------
        StreamRelease
            The windowed view (``lo == hi`` gives an empty window that
            answers exact zeros with zero variance).
        """
        if hi is None:
            hi = self._epochs
        return StreamRelease(
            self._schema,
            self._sa_names,
            self._epochs,
            self._nodes,
            window=(lo, hi),
        )

    # ------------------------------------------------------------------
    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Batch box answers: every cover node answers the box, summed.

        Only the ``<= 2 * ceil(log2 T)`` nodes of the window's canonical
        cover are consulted (lazy nodes load on their first touch);
        an empty window returns exact zeros.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` private counts aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        answers = np.zeros(lows.shape[0], dtype=np.float64)
        for key in self._cover:
            answers += self._nodes[key].result().release.answer_boxes(lows, highs)
        return answers

    def build_profile_caches(self, factory=None) -> ShardProfileCaches:
        """A fresh profile-cache set for one consumer (e.g. an engine).

        All nodes share one transform, so the set holds a single
        per-axis cache; it is wrapped in the same
        :class:`~repro.core.sharding.ShardProfileCaches` aggregate the
        sharded backend uses, so serving-layer stats read hit/miss
        counters identically for both.

        Parameters
        ----------
        factory:
            Optional callable mapping the per-axis transform sequence to
            its cache; the serving layer passes a bounded LRU subclass.
            The default is the unbounded cache.
        """
        build = factory if factory is not None else AxisProfileCache
        return ShardProfileCaches([build(self._transform.transforms)])

    def _default_caches(self) -> ShardProfileCaches:
        if self._caches is None:
            with self._caches_lock:
                if self._caches is None:
                    self._caches = self.build_profile_caches()
        return self._caches

    def noise_variances_boxes(self, lows, highs, *, caches=None) -> np.ndarray:
        """Exact noise variance of each box's answer over the window.

        One profile product per query (all nodes share the transform)
        times ``2 * sum over cover nodes of lambda_eff**2`` — needing no
        node payload, because the profiles depend only on the shared
        transform configuration and each node's effective λ is recorded
        in the manifest.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` arrays of half-open box bounds, one row per query.
        caches:
            A :class:`~repro.core.sharding.ShardProfileCaches` to
            memoize profiles in (an engine passes its own); defaults to
            the release's internal unbounded set.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` exact variances aligned with the rows.
        """
        lows, highs = self._check_boxes(lows, highs)
        if caches is None:
            caches = self._default_caches()
        factor = 2.0 * sum(
            self._nodes[key].noise_magnitude ** 2 for key in self._cover
        )
        if factor == 0.0:
            return np.zeros(lows.shape[0], dtype=np.float64)
        products = caches.caches[0].box_profile_products(lows, highs)
        return factor * products

    def to_matrix(self) -> FrequencyMatrix:
        """Materialize the window's ``M*`` by summing cover-node matrices.

        Loads (and densifies) every cover node — the thing the tree
        exists to avoid on the serving path — so the result is not
        cached.
        """
        values = np.zeros(self._schema.shape, dtype=np.float64)
        for key in self._cover:
            values += self._nodes[key].result().release.to_matrix().values
        return FrequencyMatrix(self._schema, values)

    def nbytes(self) -> int:
        """Bytes held by the *loaded* nodes' serving state."""
        return sum(
            node.result().release.nbytes()
            for node in self._nodes.values()
            if node.loaded
        )

    def convert(self, representation: str) -> "StreamRelease":
        """Re-represent every node (``dense``/``coefficients``).

        When every node is already known (without loading) to carry
        ``representation``, returns ``self`` — so a server's
        representation override on a stream archive stored that way
        keeps its node-laziness.  Otherwise all nodes load and convert;
        the tree structure and window are preserved either way.

        Parameters
        ----------
        representation:
            The target per-node representation.

        Returns
        -------
        StreamRelease
            ``self`` when already uniform, else a new release whose
            nodes all carry ``representation``.
        """
        from repro.core.release import convert_result

        if all(
            node.representation == representation for node in self._nodes.values()
        ):
            return self
        converted = {
            key: StreamNode.from_result(
                key[0], key[1], convert_result(node.result(), representation)
            )
            for key, node in self._nodes.items()
        }
        return StreamRelease(
            self._schema,
            self._sa_names,
            self._epochs,
            converted,
            window=self._window,
        )

    def __repr__(self) -> str:
        lo, hi = self._window
        return (
            f"StreamRelease(shape={self._schema.shape}, epochs={self._epochs}, "
            f"window=[{lo}, {hi}), cover={len(self._cover)} nodes)"
        )


def stream_result(
    release: StreamRelease, leaf_results=None, *, epsilon: float = 0.0, **details
) -> PublishResult:
    """Wrap a :class:`StreamRelease` in a :class:`PublishResult`.

    The accounting mirrors :func:`repro.core.sharding.publish_sharded`:
    ε is shared (parallel composition over disjoint epochs),
    ``noise_magnitude`` / ``generalized_sensitivity`` are the per-leaf
    maxima, and ``variance_bound`` is the per-leaf sum — a window query
    may span every epoch.

    Parameters
    ----------
    release:
        The stream release to wrap.
    leaf_results:
        The leaf (level-0) results to aggregate accounting from; when
        ``None`` they are read off the release's node table (loading
        nothing — only accounting fields are touched for in-memory
        nodes; archive-backed callers pass manifest-derived values
        instead via :mod:`repro.io`).
    epsilon:
        The stream's ε when no leaf exists yet to read it from (a
        zero-epoch stream).
    details:
        Extra ``details`` entries recorded on the result.
    """
    if leaf_results is None:
        leaf_results = [
            release.node_result(0, epoch) for epoch in range(release.epochs)
        ]
    leaves = list(leaf_results)
    payload = {"stream": True, "epochs": release.epochs}
    payload.update(details)
    if not leaves:
        return PublishResult(
            release=release,
            epsilon=float(epsilon),
            noise_magnitude=0.0,
            generalized_sensitivity=0.0,
            variance_bound=0.0,
            details=payload,
        )
    return PublishResult(
        release=release,
        epsilon=float(leaves[0].epsilon),
        noise_magnitude=max(leaf.noise_magnitude for leaf in leaves),
        generalized_sensitivity=max(
            leaf.generalized_sensitivity for leaf in leaves
        ),
        variance_bound=sum(leaf.variance_bound for leaf in leaves),
        details=payload,
    )
