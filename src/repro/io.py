"""Persistence for published results.

A data publisher runs the mechanism once and distributes the noisy
frequency matrix; consumers need to reload it with its schema and privacy
accounting intact.  This module stores a
:class:`~repro.core.framework.PublishResult` as a single ``.npz`` archive:
the matrix as an array, the schema as a JSON description (attribute
kinds, domain sizes, hierarchy structure), and the accounting scalars.

Hierarchies are serialized by their parent arrays + labels, which is
enough to rebuild an identical :class:`~repro.data.hierarchy.Hierarchy`
(level-order ids and DFS leaf order are deterministic functions of the
tree shape).
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.framework import PublishResult
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import Hierarchy, Node
from repro.data.schema import Schema
from repro.errors import ReproError

__all__ = ["save_result", "load_result", "schema_to_dict", "schema_from_dict"]

_FORMAT_VERSION = 1


def _hierarchy_to_dict(hierarchy: Hierarchy) -> dict:
    return {
        "labels": [hierarchy.node_label(i) for i in range(hierarchy.num_nodes)],
        "parents": hierarchy.parent_array.tolist(),
    }


def _hierarchy_from_dict(payload: dict) -> Hierarchy:
    labels = payload["labels"]
    parents = payload["parents"]
    if len(labels) != len(parents):
        raise ReproError("corrupt hierarchy payload: labels/parents length mismatch")
    nodes = [Node(label) for label in labels]
    for node_id, parent in enumerate(parents):
        if parent == -1:
            continue
        nodes[parent].children.append(nodes[node_id])
    return Hierarchy(nodes[0])


def schema_to_dict(schema: Schema) -> dict:
    """JSON-serializable description of a schema."""
    attributes = []
    for attr in schema:
        if isinstance(attr, OrdinalAttribute):
            attributes.append(
                {"kind": "ordinal", "name": attr.name, "size": attr.size}
            )
        elif isinstance(attr, NominalAttribute):
            attributes.append(
                {
                    "kind": "nominal",
                    "name": attr.name,
                    "hierarchy": _hierarchy_to_dict(attr.hierarchy),
                }
            )
        else:  # pragma: no cover - no other kinds exist
            raise ReproError(f"unsupported attribute type {type(attr).__name__}")
    return {"version": _FORMAT_VERSION, "attributes": attributes}


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported schema format version {payload.get('version')!r}")
    attributes = []
    for entry in payload["attributes"]:
        if entry["kind"] == "ordinal":
            attributes.append(OrdinalAttribute(entry["name"], entry["size"]))
        elif entry["kind"] == "nominal":
            attributes.append(
                NominalAttribute(entry["name"], _hierarchy_from_dict(entry["hierarchy"]))
            )
        else:
            raise ReproError(f"unknown attribute kind {entry['kind']!r}")
    return Schema(attributes)


def save_result(path, result: PublishResult) -> None:
    """Write a published result to ``path`` (``.npz`` archive)."""
    header = {
        "schema": schema_to_dict(result.matrix.schema),
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
    }
    np.savez_compressed(
        path,
        values=result.matrix.values,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    )


def load_result(path) -> PublishResult:
    """Reload a result written by :func:`save_result`."""
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            values = archive["values"]
        except KeyError as exc:
            raise ReproError(f"not a repro result archive: missing {exc}") from exc
    schema = schema_from_dict(header["schema"])
    return PublishResult(
        matrix=FrequencyMatrix(schema, values),
        epsilon=float(header["epsilon"]),
        noise_magnitude=float(header["noise_magnitude"]),
        generalized_sensitivity=float(header["generalized_sensitivity"]),
        variance_bound=float(header["variance_bound"]),
        details=header.get("details", {}),
    )


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
