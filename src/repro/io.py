"""Persistence for published results.

A data publisher runs the mechanism once and distributes the release;
consumers need to reload it with its schema and privacy accounting
intact.  This module stores a
:class:`~repro.core.framework.PublishResult` as a single ``.npz`` archive
in one of two **formats**:

* **v1** (``format: 1``, the original layout): the dense noisy matrix
  under ``values`` plus a JSON header (schema description, accounting
  scalars, details).  Archives written before the format field existed
  carry no ``format`` key and are treated as v1.
* **v2** (``format: 2``): a coefficient-space release — the raw noisy
  coefficient tensor under ``coefficients`` plus the same header
  extended with ``representation`` and the ordered ``sa`` set.  A v2
  archive of a 1-D domain with ``m = 2**24`` is served directly from its
  coefficients; the dense ``M*`` is never stored nor rebuilt.

The format is chosen by the result's representation: dense releases save
as v1 (so older readers keep working), coefficient releases as v2.  Both
load back to a :class:`PublishResult` that answers any workload
identically to the saved one.

Hierarchies are serialized by their parent arrays + labels, which is
enough to rebuild an identical :class:`~repro.data.hierarchy.Hierarchy`
(level-order ids and DFS leaf order are deterministic functions of the
tree shape).

For serving fleets, :func:`open_result` returns a :class:`ResultHandle`
that reads only the JSON header up front (schema, representation,
accounting) and maps the array payload on first :meth:`ResultHandle.
load` — a server registered over dozens of archives pays for each
payload only when its first request arrives.
"""

from __future__ import annotations

import json
import threading
import zipfile

import numpy as np

from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, DenseRelease
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import Hierarchy, Node
from repro.data.schema import Schema
from repro.errors import ReproError

__all__ = [
    "save_result",
    "load_result",
    "open_result",
    "ResultHandle",
    "schema_to_dict",
    "schema_from_dict",
]

_FORMAT_VERSION = 1
#: Archive format for coefficient-space releases.
_COEFFICIENT_FORMAT_VERSION = 2


def _hierarchy_to_dict(hierarchy: Hierarchy) -> dict:
    return {
        "labels": [hierarchy.node_label(i) for i in range(hierarchy.num_nodes)],
        "parents": hierarchy.parent_array.tolist(),
    }


def _hierarchy_from_dict(payload: dict) -> Hierarchy:
    labels = payload["labels"]
    parents = payload["parents"]
    if len(labels) != len(parents):
        raise ReproError("corrupt hierarchy payload: labels/parents length mismatch")
    nodes = [Node(label) for label in labels]
    for node_id, parent in enumerate(parents):
        if parent == -1:
            continue
        nodes[parent].children.append(nodes[node_id])
    return Hierarchy(nodes[0])


def schema_to_dict(schema: Schema) -> dict:
    """JSON-serializable description of a schema."""
    attributes = []
    for attr in schema:
        if isinstance(attr, OrdinalAttribute):
            attributes.append(
                {"kind": "ordinal", "name": attr.name, "size": attr.size}
            )
        elif isinstance(attr, NominalAttribute):
            attributes.append(
                {
                    "kind": "nominal",
                    "name": attr.name,
                    "hierarchy": _hierarchy_to_dict(attr.hierarchy),
                }
            )
        else:  # pragma: no cover - no other kinds exist
            raise ReproError(f"unsupported attribute type {type(attr).__name__}")
    return {"version": _FORMAT_VERSION, "attributes": attributes}


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported schema format version {payload.get('version')!r}")
    attributes = []
    for entry in payload["attributes"]:
        if entry["kind"] == "ordinal":
            attributes.append(OrdinalAttribute(entry["name"], entry["size"]))
        elif entry["kind"] == "nominal":
            attributes.append(
                NominalAttribute(entry["name"], _hierarchy_from_dict(entry["hierarchy"]))
            )
        else:
            raise ReproError(f"unknown attribute kind {entry['kind']!r}")
    return Schema(attributes)


def save_result(path, result: PublishResult) -> None:
    """Write a published result to ``path`` (``.npz`` archive).

    Dense releases write the v1 layout; coefficient releases the v2
    layout (coefficients + SA set, no dense matrix).
    """
    header = {
        "schema": schema_to_dict(result.release.schema),
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
    }
    release = result.release
    if isinstance(release, CoefficientRelease):
        header["format"] = _COEFFICIENT_FORMAT_VERSION
        header["representation"] = "coefficients"
        header["sa"] = list(release.sa_names)
        arrays = {"coefficients": release.coefficients}
    else:
        header["format"] = _FORMAT_VERSION
        header["representation"] = "dense"
        arrays = {"values": release.to_matrix().values}
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def _decode_header(archive) -> dict:
    """Parse the JSON header array of an open ``.npz`` archive."""
    try:
        return json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
    except KeyError as exc:
        raise ReproError(f"not a repro result archive: missing {exc}") from exc


def load_result(path) -> PublishResult:
    """Reload a result written by :func:`save_result` (either format)."""
    with np.load(path) as archive:
        header = _decode_header(archive)
        format_version = header.get("format", _FORMAT_VERSION)
        try:
            if format_version == _FORMAT_VERSION:
                payload = archive["values"]
            elif format_version == _COEFFICIENT_FORMAT_VERSION:
                payload = archive["coefficients"]
            else:
                raise ReproError(
                    f"unsupported result archive format {format_version!r}"
                )
        except KeyError as exc:
            raise ReproError(f"not a repro result archive: missing {exc}") from exc
    schema = schema_from_dict(header["schema"])
    if format_version == _COEFFICIENT_FORMAT_VERSION:
        try:
            sa_names = tuple(header["sa"])
        except KeyError as exc:
            raise ReproError("coefficient archive lacks its SA set") from exc
        release = CoefficientRelease(schema, sa_names, payload)
    else:
        release = DenseRelease(FrequencyMatrix(schema, payload))
    return PublishResult(
        release=release,
        epsilon=float(header["epsilon"]),
        noise_magnitude=float(header["noise_magnitude"]),
        generalized_sensitivity=float(header["generalized_sensitivity"]),
        variance_bound=float(header["variance_bound"]),
        details=header.get("details", {}),
    )


class ResultHandle:
    """A lazy handle on a result archive: header now, payload on touch.

    ``.npz`` archives are zip files, so the JSON header can be read and
    decompressed without touching the (much larger) matrix or
    coefficient payload.  A server registered over dozens of archives
    therefore learns every release's schema, representation, and privacy
    accounting at registration time, and maps each payload only when the
    first request for that release arrives (:meth:`load` is cached and
    thread-safe).

    Parameters
    ----------
    path:
        An archive written by :func:`save_result` (either format).
    """

    def __init__(self, path):
        self._path = str(path)
        self._header: dict | None = None
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        """The archive path this handle reads from."""
        return self._path

    @property
    def loaded(self) -> bool:
        """True once :meth:`load` has materialized the full result."""
        return self._result is not None

    @property
    def header(self) -> dict:
        """The archive's JSON header (read without the array payload)."""
        if self._header is None:
            with self._lock:
                if self._header is None:
                    with np.load(self._path) as archive:
                        self._header = _decode_header(archive)
        return self._header

    @property
    def representation(self) -> str:
        """The stored release representation (``dense``/``coefficients``)."""
        return self.header.get("representation", "dense")

    @property
    def epsilon(self) -> float:
        """The archive's ε without loading the payload."""
        return float(self.header["epsilon"])

    def schema(self) -> Schema:
        """The released schema, rebuilt from the header alone."""
        return schema_from_dict(self.header["schema"])

    def load(self) -> PublishResult:
        """The full :class:`PublishResult`, loaded once and cached.

        Returns
        -------
        PublishResult
            Identical to :func:`load_result` on the same path; repeated
            calls return the same object.
        """
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = load_result(self._path)
        return self._result

    def __repr__(self) -> str:
        state = "loaded" if self.loaded else "lazy"
        return f"ResultHandle({self._path!r}, {state})"


def open_result(path) -> ResultHandle:
    """Open an archive lazily — header metadata now, payload on demand.

    Parameters
    ----------
    path:
        An archive written by :func:`save_result`.

    Returns
    -------
    ResultHandle
        Raises :class:`~repro.errors.ReproError` immediately if the file
        is missing or is not a result archive (the header is validated
        eagerly so registration fails fast).
    """
    handle = ResultHandle(path)
    try:
        handle.header
    except FileNotFoundError as exc:
        raise ReproError(f"no such archive: {path}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # BadZipFile subclasses Exception directly, so it must be named:
        # a truncated download starts with zip magic yet fails to parse.
        raise ReproError(f"not a repro result archive: {path} ({exc})") from exc
    return handle


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
