"""Persistence for published results.

A data publisher runs the mechanism once and distributes the release;
consumers need to reload it with its schema and privacy accounting
intact.  This module stores a
:class:`~repro.core.framework.PublishResult` as a single ``.npz`` archive
in one of two **formats**:

* **v1** (``format: 1``, the original layout): the dense noisy matrix
  under ``values`` plus a JSON header (schema description, accounting
  scalars, details).  Archives written before the format field existed
  carry no ``format`` key and are treated as v1.
* **v2** (``format: 2``): a coefficient-space release — the raw noisy
  coefficient tensor under ``coefficients`` plus the same header
  extended with ``representation`` and the ordered ``sa`` set.  A v2
  archive of a 1-D domain with ``m = 2**24`` is served directly from its
  coefficients; the dense ``M*`` is never stored nor rebuilt.
* **v3** (``format: 3``): a sharded release — a JSON **manifest**
  (partition attribute, cut points, one accounting entry per shard)
  plus one array member per shard (``shard<i>_coefficients`` or
  ``shard<i>_values``).  Loading a v3 archive from a filesystem path is
  **shard-lazy**: the manifest alone rebuilds the routing and exact
  variance machinery, and each shard's payload is decompressed only
  when the first query routes to it.

The format is chosen by the result's representation: dense releases save
as v1 (so older readers keep working), coefficient releases as v2,
sharded releases as v3.  All load back to a :class:`PublishResult` that
answers any workload identically to the saved one.

Hierarchies are serialized by their parent arrays + labels, which is
enough to rebuild an identical :class:`~repro.data.hierarchy.Hierarchy`
(level-order ids and DFS leaf order are deterministic functions of the
tree shape).

For serving fleets, :func:`open_result` returns a :class:`ResultHandle`
that reads only the JSON header up front (schema, representation,
accounting) and maps the array payload on first :meth:`ResultHandle.
load` — a server registered over dozens of archives pays for each
payload only when its first request arrives.
"""

from __future__ import annotations

import json
import os
import threading
import zipfile

import numpy as np

from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, DenseRelease, infer_sa_names
from repro.core.sharding import ShardedRelease, ShardSlot, shard_schema
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import Hierarchy, Node
from repro.data.schema import Schema
from repro.errors import ReproError

__all__ = [
    "save_result",
    "load_result",
    "open_result",
    "ResultHandle",
    "schema_to_dict",
    "schema_from_dict",
]

_FORMAT_VERSION = 1
#: Archive format for coefficient-space releases.
_COEFFICIENT_FORMAT_VERSION = 2
#: Archive format for sharded releases (manifest + per-shard entries).
_SHARDED_FORMAT_VERSION = 3


def _hierarchy_to_dict(hierarchy: Hierarchy) -> dict:
    return {
        "labels": [hierarchy.node_label(i) for i in range(hierarchy.num_nodes)],
        "parents": hierarchy.parent_array.tolist(),
    }


def _hierarchy_from_dict(payload: dict) -> Hierarchy:
    labels = payload["labels"]
    parents = payload["parents"]
    if len(labels) != len(parents):
        raise ReproError("corrupt hierarchy payload: labels/parents length mismatch")
    nodes = [Node(label) for label in labels]
    for node_id, parent in enumerate(parents):
        if parent == -1:
            continue
        nodes[parent].children.append(nodes[node_id])
    return Hierarchy(nodes[0])


def schema_to_dict(schema: Schema) -> dict:
    """JSON-serializable description of a schema."""
    attributes = []
    for attr in schema:
        if isinstance(attr, OrdinalAttribute):
            attributes.append(
                {"kind": "ordinal", "name": attr.name, "size": attr.size}
            )
        elif isinstance(attr, NominalAttribute):
            attributes.append(
                {
                    "kind": "nominal",
                    "name": attr.name,
                    "hierarchy": _hierarchy_to_dict(attr.hierarchy),
                }
            )
        else:  # pragma: no cover - no other kinds exist
            raise ReproError(f"unsupported attribute type {type(attr).__name__}")
    return {"version": _FORMAT_VERSION, "attributes": attributes}


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported schema format version {payload.get('version')!r}")
    attributes = []
    for entry in payload["attributes"]:
        if entry["kind"] == "ordinal":
            attributes.append(OrdinalAttribute(entry["name"], entry["size"]))
        elif entry["kind"] == "nominal":
            attributes.append(
                NominalAttribute(entry["name"], _hierarchy_from_dict(entry["hierarchy"]))
            )
        else:
            raise ReproError(f"unknown attribute kind {entry['kind']!r}")
    return Schema(attributes)


def _shard_array_key(index: int, representation: str) -> str:
    """The archive member name holding shard ``index``'s payload."""
    payload = "coefficients" if representation == "coefficients" else "values"
    return f"shard{index}_{payload}"


def save_result(path, result: PublishResult) -> None:
    """Write a published result to ``path`` (``.npz`` archive).

    Dense releases write the v1 layout; coefficient releases the v2
    layout (coefficients + SA set, no dense matrix); sharded releases
    the v3 layout (a manifest plus one array member per shard, each in
    that shard's own representation).
    """
    header = {
        "schema": schema_to_dict(result.release.schema),
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
    }
    release = result.release
    if isinstance(release, ShardedRelease):
        header["format"] = _SHARDED_FORMAT_VERSION
        header["representation"] = "sharded"
        header["shard_by"] = release.attribute
        header["shard_bounds"] = list(release.bounds)
        entries = []
        arrays = {}
        for index in range(release.num_shards):
            shard = release.shard_result(index)
            shard_release = shard.release
            entry = {
                "epsilon": shard.epsilon,
                "noise_magnitude": shard.noise_magnitude,
                "generalized_sensitivity": shard.generalized_sensitivity,
                "variance_bound": shard.variance_bound,
                "sa": list(infer_sa_names(shard)),
                "details": {k: _jsonable(v) for k, v in shard.details.items()},
            }
            if isinstance(shard_release, CoefficientRelease):
                entry["representation"] = "coefficients"
                payload = shard_release.coefficients
            elif isinstance(shard_release, DenseRelease):
                entry["representation"] = "dense"
                payload = shard_release.to_matrix().values
            else:
                raise ReproError(
                    f"cannot archive a shard of type "
                    f"{type(shard_release).__name__} (nested sharding is "
                    "not supported)"
                )
            arrays[_shard_array_key(index, entry["representation"])] = payload
            entries.append(entry)
        header["shards"] = entries
    elif isinstance(release, CoefficientRelease):
        header["format"] = _COEFFICIENT_FORMAT_VERSION
        header["representation"] = "coefficients"
        header["sa"] = list(release.sa_names)
        arrays = {"coefficients": release.coefficients}
    else:
        header["format"] = _FORMAT_VERSION
        header["representation"] = "dense"
        arrays = {"values": release.to_matrix().values}
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def _decode_header(archive) -> dict:
    """Parse the JSON header array of an open ``.npz`` archive."""
    try:
        return json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
    except KeyError as exc:
        raise ReproError(f"not a repro result archive: missing {exc}") from exc


def _shard_release_from_entry(schema, entry: dict, payload) -> PublishResult:
    """Rebuild one shard's :class:`PublishResult` from its manifest entry."""
    if entry["representation"] == "coefficients":
        release = CoefficientRelease(schema, tuple(entry["sa"]), payload)
    else:
        release = DenseRelease(FrequencyMatrix(schema, payload))
    return PublishResult(
        release=release,
        epsilon=float(entry["epsilon"]),
        noise_magnitude=float(entry["noise_magnitude"]),
        generalized_sensitivity=float(entry["generalized_sensitivity"]),
        variance_bound=float(entry["variance_bound"]),
        details=entry.get("details", {}),
    )


def _shard_loader(path: str, key: str, schema, attribute, lo: int, hi: int, entry: dict):
    """A zero-argument loader decompressing one shard member on demand.

    The shard's restricted schema is derived on first load too, so the
    eager manifest pass builds nothing per shard.
    """

    def load() -> PublishResult:
        with np.load(path) as archive:
            payload = archive[key]
        return _shard_release_from_entry(
            shard_schema(schema, attribute, lo, hi), entry, payload
        )

    return load


def _sharded_release(path, archive, header: dict) -> ShardedRelease:
    """Build the (shard-lazy when possible) release of a v3 archive."""
    try:
        schema = schema_from_dict(header["schema"])
        attribute = header["shard_by"]
        bounds = [int(b) for b in header["shard_bounds"]]
        entries = header["shards"]
        keys = [
            _shard_array_key(index, entry["representation"])
            for index, entry in enumerate(entries)
        ]
        missing = sorted(set(keys) - set(archive.files))
        if missing:
            raise ReproError(f"corrupt sharded archive: missing members {missing}")
        if len(bounds) != len(entries) + 1:
            raise ReproError(
                f"corrupt sharded archive: {len(entries)} shards but "
                f"{len(bounds)} cut points"
            )
        # Laziness needs a reopenable location; file-like inputs load
        # eagerly.
        lazy = isinstance(path, (str, os.PathLike))
        shards = []
        for index, (entry, key) in enumerate(zip(entries, keys)):
            lo, hi = bounds[index], bounds[index + 1]
            if lazy:
                shards.append(
                    ShardSlot(
                        sa_names=tuple(entry["sa"]),
                        noise_magnitude=float(entry["noise_magnitude"]),
                        load=_shard_loader(
                            str(path), key, schema, attribute, lo, hi, entry
                        ),
                        representation=entry["representation"],
                    )
                )
            else:
                shards.append(
                    _shard_release_from_entry(
                        shard_schema(schema, attribute, lo, hi),
                        entry,
                        archive[key],
                    )
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt sharded archive: {exc!r}") from exc
    return ShardedRelease(schema, attribute, bounds, shards)


def load_result(path) -> PublishResult:
    """Reload a result written by :func:`save_result` (any format).

    A v3 (sharded) archive loaded from a filesystem path keeps its
    shards lazy: only the manifest is parsed now, and each shard's
    payload is decompressed when the first query routes to it.
    """
    with np.load(path) as archive:
        header = _decode_header(archive)
        format_version = header.get("format", _FORMAT_VERSION)
        try:
            if format_version == _FORMAT_VERSION:
                payload = archive["values"]
            elif format_version == _COEFFICIENT_FORMAT_VERSION:
                payload = archive["coefficients"]
            elif format_version == _SHARDED_FORMAT_VERSION:
                payload = None
            else:
                raise ReproError(
                    f"unsupported result archive format {format_version!r}"
                )
        except KeyError as exc:
            raise ReproError(f"not a repro result archive: missing {exc}") from exc
        if format_version == _SHARDED_FORMAT_VERSION:
            release = _sharded_release(path, archive, header)
    if format_version == _COEFFICIENT_FORMAT_VERSION:
        try:
            sa_names = tuple(header["sa"])
        except KeyError as exc:
            raise ReproError("coefficient archive lacks its SA set") from exc
        release = CoefficientRelease(
            schema_from_dict(header["schema"]), sa_names, payload
        )
    elif format_version == _FORMAT_VERSION:
        release = DenseRelease(
            FrequencyMatrix(schema_from_dict(header["schema"]), payload)
        )
    return PublishResult(
        release=release,
        epsilon=float(header["epsilon"]),
        noise_magnitude=float(header["noise_magnitude"]),
        generalized_sensitivity=float(header["generalized_sensitivity"]),
        variance_bound=float(header["variance_bound"]),
        details=header.get("details", {}),
    )


class ResultHandle:
    """A lazy handle on a result archive: header now, payload on touch.

    ``.npz`` archives are zip files, so the JSON header can be read and
    decompressed without touching the (much larger) matrix or
    coefficient payload.  A server registered over dozens of archives
    therefore learns every release's schema, representation, and privacy
    accounting at registration time, and maps each payload only when the
    first request for that release arrives (:meth:`load` is cached and
    thread-safe).  For a v3 sharded archive the laziness goes one level
    deeper: :meth:`load` parses only the shard manifest, and each
    shard's array member is decompressed when the first query routes to
    that shard.

    Parameters
    ----------
    path:
        An archive written by :func:`save_result` (either format).
    """

    def __init__(self, path):
        self._path = str(path)
        self._header: dict | None = None
        self._result: PublishResult | None = None
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        """The archive path this handle reads from."""
        return self._path

    @property
    def loaded(self) -> bool:
        """True once :meth:`load` has materialized the full result."""
        return self._result is not None

    @property
    def header(self) -> dict:
        """The archive's JSON header (read without the array payload)."""
        if self._header is None:
            with self._lock:
                if self._header is None:
                    with np.load(self._path) as archive:
                        self._header = _decode_header(archive)
        return self._header

    @property
    def representation(self) -> str:
        """The stored release representation (``dense``/``coefficients``)."""
        return self.header.get("representation", "dense")

    @property
    def epsilon(self) -> float:
        """The archive's ε without loading the payload."""
        return float(self.header["epsilon"])

    def schema(self) -> Schema:
        """The released schema, rebuilt from the header alone."""
        return schema_from_dict(self.header["schema"])

    def load(self) -> PublishResult:
        """The full :class:`PublishResult`, loaded once and cached.

        Returns
        -------
        PublishResult
            Identical to :func:`load_result` on the same path; repeated
            calls return the same object.
        """
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = load_result(self._path)
        return self._result

    def __repr__(self) -> str:
        state = "loaded" if self.loaded else "lazy"
        return f"ResultHandle({self._path!r}, {state})"


def open_result(path) -> ResultHandle:
    """Open an archive lazily — header metadata now, payload on demand.

    Parameters
    ----------
    path:
        An archive written by :func:`save_result`.

    Returns
    -------
    ResultHandle
        Raises :class:`~repro.errors.ReproError` immediately if the file
        is missing or is not a result archive (the header is validated
        eagerly so registration fails fast).
    """
    handle = ResultHandle(path)
    try:
        handle.header
    except FileNotFoundError as exc:
        raise ReproError(f"no such archive: {path}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # BadZipFile subclasses Exception directly, so it must be named:
        # a truncated download starts with zip magic yet fails to parse.
        raise ReproError(f"not a repro result archive: {path} ({exc})") from exc
    return handle


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
