"""Persistence for published results.

A data publisher runs the mechanism once and distributes the release;
consumers need to reload it with its schema and privacy accounting
intact.  This module stores a
:class:`~repro.core.framework.PublishResult` as a single ``.npz`` archive
in one of two **formats**:

* **v1** (``format: 1``, the original layout): the dense noisy matrix
  under ``values`` plus a JSON header (schema description, accounting
  scalars, details).  Archives written before the format field existed
  carry no ``format`` key and are treated as v1.
* **v2** (``format: 2``): a coefficient-space release — the raw noisy
  coefficient tensor under ``coefficients`` plus the same header
  extended with ``representation`` and the ordered ``sa`` set.  A v2
  archive of a 1-D domain with ``m = 2**24`` is served directly from its
  coefficients; the dense ``M*`` is never stored nor rebuilt.
* **v3** (``format: 3``): a sharded release — a JSON **manifest**
  (partition attribute, cut points, one accounting entry per shard)
  plus one array member per shard (``shard<i>_coefficients`` or
  ``shard<i>_values``).  Loading a v3 archive from a filesystem path is
  **shard-lazy**: the manifest alone rebuilds the routing and exact
  variance machinery, and each shard's payload is decompressed only
  when the first query routes to it.
* **v4** (``format: 4``): a **stream** — an *append-able* archive.  The
  static header records the publishing configuration (schema, ε, epoch
  length, mechanism spec); each epoch close appends one array member
  per newly completed tree node (``node_<level>_<index>``) plus a fresh
  **versioned manifest** (``stream_manifest_<T>``, the full node list
  at ``T`` closed epochs).  Appends never rewrite existing members, so
  earlier windows keep answering identically, readers always parse the
  newest manifest, and a serving process re-resolves a live stream by
  re-opening the file (:attr:`ResultHandle.stale` flags the change).
  Loading is node-lazy exactly like v3 is shard-lazy.
* **v5** (``format: 5``): a **composition tree** — any nested
  :class:`~repro.core.compose.ComposedRelease` (e.g. a
  :class:`~repro.core.compose.Partition` of per-shard
  :class:`~repro.core.compose.TimeTree` streams).  The header embeds
  the whole tree as a recursive manifest: ``partition`` nodes carry
  their cut points plus one accounting entry per child, ``stream``
  nodes their epoch count, window and per-node accounting, and every
  leaf names the archive member holding its payload.  Loading from a
  filesystem path is leaf-lazy — the manifest alone rebuilds routing
  and exact variances for the whole tree, and each leaf payload is
  decompressed when the first query routes to it.

The format is chosen by the result's release shape: dense releases save
as v1 (so older readers keep working), coefficient releases as v2, flat
sharded releases as v3, streams as v4, and nested compositions as v5.
v3 and v4 archives load back as algebra instances (a
:class:`~repro.core.sharding.ShardedRelease` partition, a
:class:`~repro.streaming.release.StreamRelease` time tree) and all
formats load to a :class:`PublishResult` that answers any workload
identically to the saved one.

Hierarchies are serialized by their parent arrays + labels, which is
enough to rebuild an identical :class:`~repro.data.hierarchy.Hierarchy`
(level-order ids and DFS leaf order are deterministic functions of the
tree shape).

For serving fleets, :func:`open_result` returns a :class:`ResultHandle`
that reads only the JSON header up front (schema, representation,
accounting) and maps the array payload on first :meth:`ResultHandle.
load` — a server registered over dozens of archives pays for each
payload only when its first request arrives.
"""

from __future__ import annotations

import io as _io
import json
import os
import shutil
import tempfile
import threading
import zipfile
from types import SimpleNamespace

import numpy as np

from repro.core.compose import Partition, TimeTree
from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, DenseRelease, infer_sa_names
from repro.core.sharding import ShardedRelease, ShardSlot, shard_schema
from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import Hierarchy, Node
from repro.data.schema import Schema
from repro.errors import ReproError
from repro.streaming.release import StreamNode, StreamRelease, _wrap_stream_result

__all__ = [
    "save_result",
    "load_result",
    "result_to_parts",
    "result_from_parts",
    "open_result",
    "ResultHandle",
    "schema_to_dict",
    "schema_from_dict",
    "create_stream_archive",
    "append_stream_nodes",
    "read_stream_header",
    "read_stream_manifest",
    "stream_node_key",
    "stream_nodes_from_manifest",
]

_FORMAT_VERSION = 1
#: Archive format for coefficient-space releases.
_COEFFICIENT_FORMAT_VERSION = 2
#: Archive format for sharded releases (manifest + per-shard entries).
_SHARDED_FORMAT_VERSION = 3
#: Archive format for append-able streams (tree nodes + versioned manifests).
_STREAM_FORMAT_VERSION = 4
#: Archive format for nested compositions (recursive tree manifest).
_COMPOSED_FORMAT_VERSION = 5
#: Member-name prefix of the versioned stream manifests.
_MANIFEST_PREFIX = "stream_manifest_"


def _hierarchy_to_dict(hierarchy: Hierarchy) -> dict:
    return {
        "labels": [hierarchy.node_label(i) for i in range(hierarchy.num_nodes)],
        "parents": hierarchy.parent_array.tolist(),
    }


def _hierarchy_from_dict(payload: dict) -> Hierarchy:
    labels = payload["labels"]
    parents = payload["parents"]
    if len(labels) != len(parents):
        raise ReproError("corrupt hierarchy payload: labels/parents length mismatch")
    nodes = [Node(label) for label in labels]
    for node_id, parent in enumerate(parents):
        if parent == -1:
            continue
        nodes[parent].children.append(nodes[node_id])
    return Hierarchy(nodes[0])


def schema_to_dict(schema: Schema) -> dict:
    """JSON-serializable description of a schema."""
    attributes = []
    for attr in schema:
        if isinstance(attr, OrdinalAttribute):
            attributes.append(
                {"kind": "ordinal", "name": attr.name, "size": attr.size}
            )
        elif isinstance(attr, NominalAttribute):
            attributes.append(
                {
                    "kind": "nominal",
                    "name": attr.name,
                    "hierarchy": _hierarchy_to_dict(attr.hierarchy),
                }
            )
        else:  # pragma: no cover - no other kinds exist
            raise ReproError(f"unsupported attribute type {type(attr).__name__}")
    return {"version": _FORMAT_VERSION, "attributes": attributes}


def schema_from_dict(payload: dict) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported schema format version {payload.get('version')!r}")
    attributes = []
    for entry in payload["attributes"]:
        if entry["kind"] == "ordinal":
            attributes.append(OrdinalAttribute(entry["name"], entry["size"]))
        elif entry["kind"] == "nominal":
            attributes.append(
                NominalAttribute(entry["name"], _hierarchy_from_dict(entry["hierarchy"]))
            )
        else:
            raise ReproError(f"unknown attribute kind {entry['kind']!r}")
    return Schema(attributes)


def _shard_array_key(index: int, representation: str) -> str:
    """The archive member name holding shard ``index``'s payload."""
    payload = "coefficients" if representation == "coefficients" else "values"
    return f"shard{index}_{payload}"


def result_to_parts(result: PublishResult) -> tuple[dict, dict]:
    """Split a result into a JSON header plus its raw array payloads.

    This is the archive layout without the archive: the same
    ``(header, arrays)`` pair :func:`save_result` persists, usable
    anywhere the two halves travel separately — e.g. the shared-memory
    publisher, which ships the header as a JSON manifest and each array
    as a named segment.  :func:`result_from_parts` inverts it exactly.

    Parameters
    ----------
    result:
        Any :class:`PublishResult` (dense, coefficient, sharded, or
        stream release).

    Returns
    -------
    tuple
        ``(header, arrays)`` — ``header`` is JSON-serializable (for a
        stream the versioned manifest is embedded under
        ``header["manifest"]``), ``arrays`` maps archive member names to
        ``np.ndarray`` payloads.
    """
    if isinstance(result.release, TimeTree):
        return _stream_parts(result)
    if isinstance(result.release, Partition) and any(
        part.composed for part in result.release.parts
    ):
        return _composed_parts(result)
    header = {
        "schema": schema_to_dict(result.release.schema),
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
    }
    release = result.release
    if isinstance(release, Partition):
        header["format"] = _SHARDED_FORMAT_VERSION
        header["representation"] = "sharded"
        header["shard_by"] = release.attribute
        header["shard_bounds"] = list(release.bounds)
        entries = []
        arrays = {}
        for index in range(release.num_shards):
            shard = release.shard_result(index)
            shard_release = shard.release
            entry = {
                "epsilon": shard.epsilon,
                "noise_magnitude": shard.noise_magnitude,
                "generalized_sensitivity": shard.generalized_sensitivity,
                "variance_bound": shard.variance_bound,
                "sa": list(infer_sa_names(shard)),
                "details": {k: _jsonable(v) for k, v in shard.details.items()},
            }
            if isinstance(shard_release, CoefficientRelease):
                entry["representation"] = "coefficients"
                payload = shard_release.coefficients
            elif isinstance(shard_release, DenseRelease):
                entry["representation"] = "dense"
                payload = shard_release.to_matrix().values
            else:  # pragma: no cover - composed shards route to v5 above
                raise ReproError(
                    f"cannot archive a shard of type "
                    f"{type(shard_release).__name__}"
                )
            arrays[_shard_array_key(index, entry["representation"])] = payload
            entries.append(entry)
        header["shards"] = entries
    elif isinstance(release, CoefficientRelease):
        header["format"] = _COEFFICIENT_FORMAT_VERSION
        header["representation"] = "coefficients"
        header["sa"] = list(release.sa_names)
        arrays = {"coefficients": release.coefficients}
    else:
        header["format"] = _FORMAT_VERSION
        header["representation"] = "dense"
        arrays = {"values": release.to_matrix().values}
    return header, arrays


def save_result(path, result: PublishResult) -> None:
    """Write a published result to ``path`` (``.npz`` archive).

    Dense releases write the v1 layout; coefficient releases the v2
    layout (coefficients + SA set, no dense matrix); flat sharded
    releases the v3 layout (a manifest plus one array member per shard,
    each in that shard's own representation); stream releases the v4
    layout as a one-shot snapshot of the whole tree (every node loads;
    prefer the publisher's own append path for live streams — and note
    a snapshot records no base seed, so resuming it draws fresh
    entropy); nested compositions the v5 layout (the whole composition
    tree as a recursive manifest plus one array member per leaf).
    """
    header, arrays = result_to_parts(result)
    if header.get("representation") == "stream":
        _write_stream_snapshot(path, header, arrays)
        return
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def _decode_header(archive) -> dict:
    """Parse the JSON header array of an open ``.npz`` archive."""
    try:
        return json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
    except KeyError as exc:
        raise ReproError(f"not a repro result archive: missing {exc}") from exc


def _shard_release_from_entry(schema, entry: dict, payload) -> PublishResult:
    """Rebuild one shard's :class:`PublishResult` from its manifest entry."""
    if entry["representation"] == "coefficients":
        release = CoefficientRelease(schema, tuple(entry["sa"]), payload)
    else:
        release = DenseRelease(FrequencyMatrix(schema, payload))
    return PublishResult(
        release=release,
        epsilon=float(entry["epsilon"]),
        noise_magnitude=float(entry["noise_magnitude"]),
        generalized_sensitivity=float(entry["generalized_sensitivity"]),
        variance_bound=float(entry["variance_bound"]),
        details=entry.get("details", {}),
    )


def _shard_loader(path: str, key: str, schema, attribute, lo: int, hi: int, entry: dict):
    """A zero-argument loader decompressing one shard member on demand.

    The shard's restricted schema is derived on first load too, so the
    eager manifest pass builds nothing per shard.
    """

    def load() -> PublishResult:
        with np.load(path) as archive:
            payload = archive[key]
        return _shard_release_from_entry(
            shard_schema(schema, attribute, lo, hi), entry, payload
        )

    return load


def _sharded_release(path, archive, header: dict) -> ShardedRelease:
    """Build the (shard-lazy when possible) release of a v3 archive."""
    try:
        schema = schema_from_dict(header["schema"])
        attribute = header["shard_by"]
        bounds = [int(b) for b in header["shard_bounds"]]
        entries = header["shards"]
        keys = [
            _shard_array_key(index, entry["representation"])
            for index, entry in enumerate(entries)
        ]
        missing = sorted(set(keys) - set(archive.files))
        if missing:
            raise ReproError(f"corrupt sharded archive: missing members {missing}")
        if len(bounds) != len(entries) + 1:
            raise ReproError(
                f"corrupt sharded archive: {len(entries)} shards but "
                f"{len(bounds)} cut points"
            )
        # Laziness needs a reopenable location; file-like inputs load
        # eagerly.
        lazy = isinstance(path, (str, os.PathLike))
        shards = []
        for index, (entry, key) in enumerate(zip(entries, keys)):
            lo, hi = bounds[index], bounds[index + 1]
            if lazy:
                shards.append(
                    ShardSlot(
                        sa_names=tuple(entry["sa"]),
                        noise_magnitude=float(entry["noise_magnitude"]),
                        load=_shard_loader(
                            str(path), key, schema, attribute, lo, hi, entry
                        ),
                        representation=entry["representation"],
                    )
                )
            else:
                shards.append(
                    _shard_release_from_entry(
                        shard_schema(schema, attribute, lo, hi),
                        entry,
                        archive[key],
                    )
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt sharded archive: {exc!r}") from exc
    return ShardedRelease(schema, attribute, bounds, shards)


# ----------------------------------------------------------------------
# v4 stream archives
# ----------------------------------------------------------------------
def stream_node_key(level: int, index: int) -> str:
    """The archive member name holding tree node ``(level, index)``.

    Parameters
    ----------
    level, index:
        The node's dyadic-tree coordinates.
    """
    return f"node_{int(level)}_{int(index)}"


def _npy_bytes(array) -> bytes:
    """An array serialized in ``.npy`` form (what ``np.load`` expects
    of every ``.npz`` member)."""
    buffer = _io.BytesIO()
    np.lib.format.write_array(
        buffer, np.ascontiguousarray(array), allow_pickle=False
    )
    return buffer.getvalue()


def _json_member(payload: dict) -> bytes:
    """A JSON payload as an ``.npy``-serialized uint8 array."""
    return _npy_bytes(
        np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)
    )


def _decode_json_array(array) -> dict:
    return json.loads(bytes(np.asarray(array).tobytes()).decode("utf-8"))


def create_stream_archive(
    path,
    schema: Schema,
    *,
    epsilon: float,
    epoch_length: int = 1,
    mechanism: dict | None = None,
    mechanism_name: str = "stream",
    seed=None,
    representation: str = "coefficients",
) -> None:
    """Create an empty (zero-epoch) v4 stream archive at ``path``.

    The header written here is static for the archive's whole life;
    everything that evolves (the node list, the epoch count) lives in
    the versioned manifests :func:`append_stream_nodes` adds.  Refuses
    to overwrite an existing file — a stream archive is append-only.

    Parameters
    ----------
    path:
        Where to create the archive (conventionally ``.npz``).
    schema:
        The stream's released schema.
    epsilon:
        The per-epoch (and overall) privacy budget.
    epoch_length:
        Timestamp units per epoch.
    mechanism:
        The JSON mechanism spec :meth:`repro.streaming.publisher.
        StreamingPublisher.open` rebuilds the mechanism from.
    mechanism_name:
        Human-readable mechanism name (display only).
    seed:
        The base seed to record, or ``None``; recording it makes resumes
        bit-reproducible at the cost of making the noise recomputable
        by anyone holding the archive.
    representation:
        The per-node representation the stream publishes
        (``"coefficients"`` or ``"dense"``).
    """
    header = {
        "format": _STREAM_FORMAT_VERSION,
        "representation": "stream",
        "schema": schema_to_dict(schema),
        "epsilon": float(epsilon),
        "epoch_length": int(epoch_length),
        "mechanism": mechanism or {},
        "mechanism_name": str(mechanism_name),
        "seed": _jsonable(seed),
        "node_representation": representation,
    }
    manifest = {"epochs": 0, "nodes": []}
    try:
        # ZIP_STORED: the payloads are high-entropy noise, so deflate
        # buys a few percent at a large per-epoch latency cost.
        with zipfile.ZipFile(path, "x", compression=zipfile.ZIP_STORED) as archive:
            archive.writestr("header.npy", _json_member(header))
            archive.writestr(f"{_MANIFEST_PREFIX}0.npy", _json_member(manifest))
    except FileExistsError as exc:
        raise ReproError(
            f"stream archive {path} already exists; resume it with "
            "StreamingPublisher.open instead"
        ) from exc


def _node_payload(release) -> np.ndarray:
    """The array a stream node's release stores in its archive member."""
    if isinstance(release, CoefficientRelease):
        return release.coefficients
    if isinstance(release, DenseRelease):
        return release.to_matrix().values
    raise ReproError(
        f"cannot archive a stream node of type {type(release).__name__}"
    )


def append_stream_nodes(path, releases: dict, manifest: dict) -> None:
    """Append newly completed tree nodes plus a fresh manifest.

    Append-only at the *member* level (existing members are never
    rewritten, every earlier manifest stays parseable) and **atomic**
    at the *file* level: the new members are appended to a temporary
    copy in the same directory which then replaces the archive via
    ``os.replace``, so a concurrent reader — e.g. a serving process
    whose ``watch_streams`` probe fires mid-append — always opens
    either the old or the new archive, never a zip whose central
    directory is being rewritten.  The caller is the single writer (the
    stream's publisher).

    Parameters
    ----------
    path:
        A v4 archive created by :func:`create_stream_archive`.
    releases:
        ``(level, index) -> Release`` for each node completed by this
        epoch close; coefficient releases store their coefficient
        tensor, dense ones their ``M*``.
    manifest:
        The full manifest at the new epoch count: ``{"epochs": T,
        "nodes": [...]}`` with one accounting entry per tree node.
    """
    epochs = int(manifest["epochs"])
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    descriptor, scratch = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".appending"
    )
    os.close(descriptor)
    try:
        shutil.copyfile(path, scratch)
        with zipfile.ZipFile(
            scratch, "a", compression=zipfile.ZIP_STORED
        ) as archive:
            existing = set(archive.namelist())
            for (level, index), release in releases.items():
                member = stream_node_key(level, index) + ".npy"
                if member in existing:
                    raise ReproError(
                        f"stream archive {path} already holds {member}; "
                        "nodes are append-only"
                    )
                archive.writestr(member, _npy_bytes(_node_payload(release)))
            archive.writestr(
                f"{_MANIFEST_PREFIX}{epochs}.npy", _json_member(manifest)
            )
        os.replace(scratch, path)
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise


def read_stream_header(path) -> dict:
    """The static header of a v4 stream archive.

    Parameters
    ----------
    path:
        A v4 archive.

    Returns
    -------
    dict
        The decoded header; non-stream archives raise
        :class:`~repro.errors.ReproError`.
    """
    with np.load(path) as archive:
        header = _decode_header(archive)
    if header.get("format") != _STREAM_FORMAT_VERSION:
        raise ReproError(
            f"{path} is not a stream archive "
            f"(format {header.get('format', _FORMAT_VERSION)!r})"
        )
    return header


def _decode_manifest(archive) -> dict:
    """The newest versioned manifest of an open v4 archive."""
    best_epochs, best_name = -1, None
    for name in archive.files:
        if not name.startswith(_MANIFEST_PREFIX):
            continue
        try:
            epochs = int(name[len(_MANIFEST_PREFIX) :])
        except ValueError:
            continue
        if epochs > best_epochs:
            best_epochs, best_name = epochs, name
    if best_name is None:
        raise ReproError("corrupt stream archive: no manifest member")
    manifest = _decode_json_array(archive[best_name])
    if int(manifest.get("epochs", -1)) != best_epochs:
        raise ReproError(
            f"corrupt stream archive: manifest {best_name} disagrees with "
            f"its epoch count {manifest.get('epochs')!r}"
        )
    return manifest


def read_stream_manifest(path) -> dict:
    """The newest manifest of a v4 stream archive (nodes + epoch count).

    Parameters
    ----------
    path:
        A v4 archive.
    """
    with np.load(path) as archive:
        return _decode_manifest(archive)


def _stream_node_loader(path: str, member: str, schema, entry: dict):
    """A zero-argument loader decompressing one node member on demand."""

    def load() -> PublishResult:
        with np.load(path) as archive:
            payload = archive[member]
        return _shard_release_from_entry(schema, entry, payload)

    return load


def stream_nodes_from_manifest(path, schema: Schema, manifest: dict, *, archive=None):
    """Build the node table a :class:`StreamRelease` serves from.

    Parameters
    ----------
    path:
        The archive's filesystem path (each lazy node re-opens it on
        first touch, so appends never hold the file open).
    schema:
        The stream's schema (shared by every node).
    manifest:
        A manifest from :func:`read_stream_manifest`.
    archive:
        An open ``np.load`` handle to read **eagerly** from instead
        (used for file-like inputs that cannot be re-opened later).

    Returns
    -------
    dict
        ``(level, index) -> StreamNode``, lazy unless ``archive`` was
        given.
    """
    nodes = {}
    try:
        for entry in manifest["nodes"]:
            level, index = int(entry["level"]), int(entry["index"])
            member = stream_node_key(level, index)
            entry = dict(entry)
            if archive is None:
                nodes[(level, index)] = StreamNode(
                    level,
                    index,
                    float(entry["noise_magnitude"]),
                    _stream_node_loader(str(path), member, schema, entry),
                    entry.get("representation"),
                )
            else:
                result = _shard_release_from_entry(schema, entry, archive[member])
                nodes[(level, index)] = StreamNode.from_result(level, index, result)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt stream archive: {exc!r}") from exc
    return nodes


def _stream_release(path, archive, header: dict) -> tuple[StreamRelease, dict]:
    """Build the (node-lazy when possible) release of a v4 archive."""
    try:
        schema = schema_from_dict(header["schema"])
        manifest = _decode_manifest(archive)
        entries = manifest["nodes"]
        keys = [
            stream_node_key(entry["level"], entry["index"]) for entry in entries
        ]
        missing = sorted(set(keys) - set(archive.files))
        if missing:
            raise ReproError(f"corrupt stream archive: missing members {missing}")
        if entries:
            sa = tuple(entries[0]["sa"])
        else:
            sa = tuple(header.get("mechanism", {}).get("sa", ()))
        lazy = isinstance(path, (str, os.PathLike))
        nodes = stream_nodes_from_manifest(
            path, schema, manifest, archive=None if lazy else archive
        )
        release = StreamRelease(schema, sa, int(manifest["epochs"]), nodes)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt stream archive: {exc!r}") from exc
    return release, manifest


def _stream_accounting(release, manifest: dict, header: dict) -> PublishResult:
    """A stream release's :class:`PublishResult` (manifest accounting).

    Delegates the leaf aggregation to the same wrapping convention
    :meth:`StreamingPublisher.result` uses, so archive-loaded and
    in-process stream results can never disagree on accounting.
    """
    leaves = [
        SimpleNamespace(
            epsilon=float(entry["epsilon"]),
            noise_magnitude=float(entry["noise_magnitude"]),
            generalized_sensitivity=float(entry["generalized_sensitivity"]),
            variance_bound=float(entry["variance_bound"]),
        )
        for entry in manifest["nodes"]
        if entry["level"] == 0
    ]
    return _wrap_stream_result(
        release,
        leaves,
        epsilon=float(header["epsilon"]),
        mechanism=header.get("mechanism_name", "stream"),
        epoch_length=int(header.get("epoch_length", 1)),
    )


def _stream_result(path, archive, header: dict) -> PublishResult:
    """Rebuild a v4 archive's :class:`PublishResult`."""
    release, manifest = _stream_release(path, archive, header)
    return _stream_accounting(release, manifest, header)


def _stream_parts(result: PublishResult) -> tuple[dict, dict]:
    """The ``(header, arrays)`` form of a stream result's whole tree.

    The manifest rides inside ``header["manifest"]`` (an archive stores
    it as a separate versioned member instead).
    """
    release = result.release
    entries = []
    arrays = {}
    for (level, index), node in sorted(release.nodes.items()):
        node_result = node.result()
        node_release = node_result.release
        entry = {
            "level": level,
            "index": index,
            "representation": node_result.representation,
            "epsilon": node_result.epsilon,
            "noise_magnitude": node_result.noise_magnitude,
            "generalized_sensitivity": node_result.generalized_sensitivity,
            "variance_bound": node_result.variance_bound,
            "sa": list(release.sa_names),
        }
        arrays[stream_node_key(level, index)] = _node_payload(node_release)
        entries.append(entry)
    header = {
        "format": _STREAM_FORMAT_VERSION,
        "representation": "stream",
        "schema": schema_to_dict(release.schema),
        "epsilon": result.epsilon,
        "epoch_length": int(result.details.get("epoch_length", 1)),
        # Privelet+ with an explicit SA set reproduces every standard
        # mechanism's noise structure, so a snapshot stays resumable.
        "mechanism": {"kind": "privelet+", "sa": list(release.sa_names)},
        "mechanism_name": str(result.details.get("mechanism", "stream")),
        "seed": None,
        "node_representation": entries[0]["representation"] if entries else "coefficients",
        "manifest": {"epochs": release.epochs, "nodes": entries},
    }
    return header, arrays


def _write_stream_snapshot(path, header: dict, arrays: dict) -> None:
    """One-shot v4 archive from :func:`_stream_parts` output."""
    header = dict(header)
    manifest = header.pop("manifest")
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
        archive.writestr("header.npy", _json_member(header))
        for member, payload in arrays.items():
            archive.writestr(member + ".npy", _npy_bytes(payload))
        archive.writestr(
            f"{_MANIFEST_PREFIX}{manifest['epochs']}.npy", _json_member(manifest)
        )


# ----------------------------------------------------------------------
# v5 composition-tree archives
# ----------------------------------------------------------------------
def _composed_entry(result: PublishResult, arrays: dict, prefix: str) -> dict:
    """One v5 manifest node: accounting plus the release's recursive shape.

    Every node carries the part's full privacy accounting (so nested
    parts reload as first-class :class:`PublishResult` values); leaf
    payloads are appended to ``arrays`` under ``prefix``-qualified
    member names, which keeps members unique at any nesting depth.
    """
    entry = {
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
    }
    release = result.release
    if isinstance(release, Partition):
        entry["kind"] = "partition"
        entry["attribute"] = release.attribute
        entry["bounds"] = list(release.bounds)
        entry["children"] = [
            _composed_entry(release.part_result(i), arrays, f"{prefix}p{i}_")
            for i in range(release.num_parts)
        ]
    elif isinstance(release, TimeTree):
        nodes = []
        for (level, index), node in sorted(release.nodes.items()):
            node_result = node.result()
            member = prefix + stream_node_key(level, index)
            arrays[member] = _node_payload(node_result.release)
            nodes.append(
                {
                    "level": level,
                    "index": index,
                    "member": member,
                    "representation": node_result.representation,
                    "epsilon": node_result.epsilon,
                    "noise_magnitude": node_result.noise_magnitude,
                    "generalized_sensitivity": node_result.generalized_sensitivity,
                    "variance_bound": node_result.variance_bound,
                    "sa": list(release.sa_names),
                }
            )
        entry["kind"] = "stream"
        entry["sa"] = list(release.sa_names)
        entry["epochs"] = release.epochs
        entry["window"] = list(release.window_bounds)
        entry["nodes"] = nodes
    else:
        entry["kind"] = "leaf"
        entry["sa"] = list(infer_sa_names(result))
        if isinstance(release, CoefficientRelease):
            entry["representation"] = "coefficients"
            payload = release.coefficients
        elif isinstance(release, DenseRelease):
            entry["representation"] = "dense"
            payload = release.to_matrix().values
        else:
            raise ReproError(
                f"cannot archive a composition leaf of type "
                f"{type(release).__name__}"
            )
        member = prefix + entry["representation"]
        arrays[member] = payload
        entry["member"] = member
    return entry


def _composed_parts(result: PublishResult) -> tuple[dict, dict]:
    """The ``(header, arrays)`` v5 form of a nested composition."""
    arrays: dict = {}
    tree = _composed_entry(result, arrays, "c_")
    return {
        "format": _COMPOSED_FORMAT_VERSION,
        "representation": result.release.representation,
        "schema": schema_to_dict(result.release.schema),
        "epsilon": result.epsilon,
        "noise_magnitude": result.noise_magnitude,
        "generalized_sensitivity": result.generalized_sensitivity,
        "variance_bound": result.variance_bound,
        "details": {k: _jsonable(v) for k, v in result.details.items()},
        "tree": tree,
    }, arrays


def _composed_release_from_entry(path, archive, schema, entry: dict, lazy: bool):
    """Rebuild the release one v5 manifest node describes (recursive).

    Combinator structure is rebuilt eagerly from the manifest alone;
    when ``lazy`` each leaf payload gets a reopening loader instead of
    an array, so the whole tree registers without decompressing any
    member (the same contract v3 gives shards and v4 gives nodes).
    """
    kind = entry.get("kind")
    if kind == "partition":
        attribute = entry["attribute"]
        bounds = [int(b) for b in entry["bounds"]]
        children = entry["children"]
        if len(bounds) != len(children) + 1:
            raise ReproError(
                f"corrupt composed archive: {len(children)} children but "
                f"{len(bounds)} cut points"
            )
        parts = []
        for index, child in enumerate(children):
            lo, hi = bounds[index], bounds[index + 1]
            if child.get("kind") == "leaf":
                if lazy:
                    parts.append(
                        ShardSlot(
                            sa_names=tuple(child["sa"]),
                            noise_magnitude=float(child["noise_magnitude"]),
                            load=_shard_loader(
                                str(path), child["member"], schema,
                                attribute, lo, hi, child,
                            ),
                            representation=child["representation"],
                        )
                    )
                else:
                    parts.append(
                        _shard_release_from_entry(
                            shard_schema(schema, attribute, lo, hi),
                            child,
                            archive[child["member"]],
                        )
                    )
            else:
                sub_schema = shard_schema(schema, attribute, lo, hi)
                release = _composed_release_from_entry(
                    path, archive, sub_schema, child, lazy
                )
                parts.append(
                    PublishResult(
                        release=release,
                        epsilon=float(child["epsilon"]),
                        noise_magnitude=float(child["noise_magnitude"]),
                        generalized_sensitivity=float(
                            child["generalized_sensitivity"]
                        ),
                        variance_bound=float(child["variance_bound"]),
                        details=child.get("details", {}),
                    )
                )
        return Partition(schema, attribute, bounds, parts)
    if kind == "stream":
        nodes = {}
        for node_entry in entry["nodes"]:
            level, index = int(node_entry["level"]), int(node_entry["index"])
            if lazy:
                nodes[(level, index)] = StreamNode(
                    level,
                    index,
                    float(node_entry["noise_magnitude"]),
                    _stream_node_loader(
                        str(path), node_entry["member"], schema, node_entry
                    ),
                    node_entry.get("representation"),
                )
            else:
                nodes[(level, index)] = StreamNode.from_result(
                    level,
                    index,
                    _shard_release_from_entry(
                        schema, node_entry, archive[node_entry["member"]]
                    ),
                )
        window = entry.get("window")
        return TimeTree(
            schema,
            tuple(entry["sa"]),
            int(entry["epochs"]),
            nodes,
            window=None if window is None else (int(window[0]), int(window[1])),
        )
    if kind == "leaf":
        return _shard_release_from_entry(
            schema, entry, archive[entry["member"]]
        ).release
    raise ReproError(f"unknown composition node kind {kind!r}")


def _composed_release(path, archive, header: dict):
    """Build the (leaf-lazy when possible) release of a v5 archive."""
    try:
        schema = schema_from_dict(header["schema"])
        lazy = isinstance(path, (str, os.PathLike))
        return _composed_release_from_entry(
            path, archive, schema, header["tree"], lazy
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt composed archive: {exc!r}") from exc


class _ArrayMapping:
    """Adapt a plain ``{member: array}`` dict to the ``np.load`` shape
    (``.files`` + ``__getitem__``) the eager reconstruction paths read."""

    def __init__(self, arrays: dict):
        self._arrays = arrays

    @property
    def files(self):
        return list(self._arrays)

    def __getitem__(self, key):
        return self._arrays[key]


def result_from_parts(header: dict, arrays: dict) -> PublishResult:
    """Rebuild a :class:`PublishResult` from :func:`result_to_parts`.

    Reconstruction is **eager** (every array is already in hand) and
    reuses the archive-loading code paths, so a result round-tripped
    through parts answers every query bit-for-bit like the original —
    the guarantee the shared-memory serving workers rely on.

    Parameters
    ----------
    header:
        The JSON header half of :func:`result_to_parts`.
    arrays:
        The array payloads half; shared-memory consumers pass read-only
        views mapped straight from the published segments.
    """
    format_version = header.get("format", _FORMAT_VERSION)
    try:
        if format_version == _STREAM_FORMAT_VERSION:
            schema = schema_from_dict(header["schema"])
            manifest = header["manifest"]
            entries = manifest["nodes"]
            if entries:
                sa = tuple(entries[0]["sa"])
            else:
                sa = tuple(header.get("mechanism", {}).get("sa", ()))
            nodes = stream_nodes_from_manifest(
                None, schema, manifest, archive=_ArrayMapping(arrays)
            )
            release = StreamRelease(schema, sa, int(manifest["epochs"]), nodes)
            return _stream_accounting(release, manifest, header)
        if format_version == _COMPOSED_FORMAT_VERSION:
            release = _composed_release(None, _ArrayMapping(arrays), header)
        elif format_version == _SHARDED_FORMAT_VERSION:
            release = _sharded_release(None, _ArrayMapping(arrays), header)
        elif format_version == _COEFFICIENT_FORMAT_VERSION:
            release = CoefficientRelease(
                schema_from_dict(header["schema"]),
                tuple(header["sa"]),
                arrays["coefficients"],
            )
        elif format_version == _FORMAT_VERSION:
            release = DenseRelease(
                FrequencyMatrix(schema_from_dict(header["schema"]), arrays["values"])
            )
        else:
            raise ReproError(f"unsupported result format {format_version!r}")
    except KeyError as exc:
        raise ReproError(f"incomplete result parts: missing {exc}") from exc
    return PublishResult(
        release=release,
        epsilon=float(header["epsilon"]),
        noise_magnitude=float(header["noise_magnitude"]),
        generalized_sensitivity=float(header["generalized_sensitivity"]),
        variance_bound=float(header["variance_bound"]),
        details=header.get("details", {}),
    )


def load_result(path) -> PublishResult:
    """Reload a result written by :func:`save_result` (any format).

    A v3 (sharded) archive loaded from a filesystem path keeps its
    shards lazy, a v4 (stream) archive its tree nodes, and a v5
    (composition) archive every leaf of its tree: only the manifest is
    parsed now, and each payload is decompressed when the first query
    routes to it.
    """
    with np.load(path) as archive:
        header = _decode_header(archive)
        format_version = header.get("format", _FORMAT_VERSION)
        try:
            if format_version == _FORMAT_VERSION:
                payload = archive["values"]
            elif format_version == _COEFFICIENT_FORMAT_VERSION:
                payload = archive["coefficients"]
            elif format_version in (
                _SHARDED_FORMAT_VERSION,
                _STREAM_FORMAT_VERSION,
                _COMPOSED_FORMAT_VERSION,
            ):
                payload = None
            else:
                raise ReproError(
                    f"unsupported result archive format {format_version!r}"
                )
        except KeyError as exc:
            raise ReproError(f"not a repro result archive: missing {exc}") from exc
        if format_version == _STREAM_FORMAT_VERSION:
            return _stream_result(path, archive, header)
        if format_version == _SHARDED_FORMAT_VERSION:
            release = _sharded_release(path, archive, header)
        elif format_version == _COMPOSED_FORMAT_VERSION:
            release = _composed_release(path, archive, header)
    if format_version == _COEFFICIENT_FORMAT_VERSION:
        try:
            sa_names = tuple(header["sa"])
        except KeyError as exc:
            raise ReproError("coefficient archive lacks its SA set") from exc
        release = CoefficientRelease(
            schema_from_dict(header["schema"]), sa_names, payload
        )
    elif format_version == _FORMAT_VERSION:
        release = DenseRelease(
            FrequencyMatrix(schema_from_dict(header["schema"]), payload)
        )
    return PublishResult(
        release=release,
        epsilon=float(header["epsilon"]),
        noise_magnitude=float(header["noise_magnitude"]),
        generalized_sensitivity=float(header["generalized_sensitivity"]),
        variance_bound=float(header["variance_bound"]),
        details=header.get("details", {}),
    )


class ResultHandle:
    """A lazy handle on a result archive: header now, payload on touch.

    ``.npz`` archives are zip files, so the JSON header can be read and
    decompressed without touching the (much larger) matrix or
    coefficient payload.  A server registered over dozens of archives
    therefore learns every release's schema, representation, and privacy
    accounting at registration time, and maps each payload only when the
    first request for that release arrives (:meth:`load` is cached and
    thread-safe).  For a v3 sharded archive the laziness goes one level
    deeper: :meth:`load` parses only the shard manifest, and each
    shard's array member is decompressed when the first query routes to
    that shard.

    Parameters
    ----------
    path:
        An archive written by :func:`save_result` (either format).
    """

    def __init__(self, path):
        self._path = str(path)
        self._header: dict | None = None
        self._result: PublishResult | None = None
        self._stat: tuple[int, int] | None = None
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        """The archive path this handle reads from."""
        return self._path

    @property
    def loaded(self) -> bool:
        """True once :meth:`load` has materialized the full result."""
        return self._result is not None

    @property
    def header(self) -> dict:
        """The archive's JSON header (read without the array payload)."""
        if self._header is None:
            with self._lock:
                if self._header is None:
                    stat = os.stat(self._path)
                    with np.load(self._path) as archive:
                        self._header = _decode_header(archive)
                    self._stat = (stat.st_mtime_ns, stat.st_size)
        return self._header

    @property
    def stale(self) -> bool:
        """Whether the file changed on disk since the header was read.

        Pure ``stat`` comparison — no I/O on the archive itself.  Only
        append-able (v4 stream) archives legitimately change in place;
        a serving layer uses this to decide when to re-resolve a live
        stream's manifest.
        """
        if self._stat is None:
            return False
        try:
            stat = os.stat(self._path)
        except OSError:
            return False
        return (stat.st_mtime_ns, stat.st_size) != self._stat

    @property
    def representation(self) -> str:
        """The stored release representation (``dense``/``coefficients``)."""
        return self.header.get("representation", "dense")

    @property
    def epsilon(self) -> float:
        """The archive's ε without loading the payload."""
        return float(self.header["epsilon"])

    def schema(self) -> Schema:
        """The released schema, rebuilt from the header alone."""
        return schema_from_dict(self.header["schema"])

    def load(self) -> PublishResult:
        """The full :class:`PublishResult`, loaded once and cached.

        Returns
        -------
        PublishResult
            Identical to :func:`load_result` on the same path; repeated
            calls return the same object.
        """
        if self._result is None:
            with self._lock:
                if self._result is None:
                    self._result = load_result(self._path)
        return self._result

    def __repr__(self) -> str:
        state = "loaded" if self.loaded else "lazy"
        return f"ResultHandle({self._path!r}, {state})"


def open_result(path) -> ResultHandle:
    """Open an archive lazily — header metadata now, payload on demand.

    Parameters
    ----------
    path:
        An archive written by :func:`save_result`.

    Returns
    -------
    ResultHandle
        Raises :class:`~repro.errors.ReproError` immediately if the file
        is missing or is not a result archive (the header is validated
        eagerly so registration fails fast).
    """
    handle = ResultHandle(path)
    try:
        handle.header
    except FileNotFoundError as exc:
        raise ReproError(f"no such archive: {path}") from exc
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # BadZipFile subclasses Exception directly, so it must be named:
        # a truncated download starts with zip magic yet fails to parse.
        raise ReproError(f"not a repro result archive: {path} ({exc})") from exc
    return handle


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
