"""Small argument-validation helpers used across the library.

These helpers exist so error messages are consistent and so validation
logic (e.g. power-of-two padding used by the Haar transform) lives in one
place.
"""

from __future__ import annotations

import numbers


def ensure_boxes(lows, highs, shape):
    """Validate ``(n, d)`` half-open box-bound arrays against ``shape``.

    Returns the bounds as int64 arrays.  The one validator every bulk
    box-answering path shares (the prefix-sum oracle and the release
    backends), so shape/bounds errors read identically everywhere.
    Raises :class:`repro.errors.QueryError`.
    """
    import numpy as np

    from repro.errors import QueryError

    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    if lows.ndim != 2 or lows.shape != highs.shape or lows.shape[1] != len(shape):
        raise QueryError(
            f"expected (n, {len(shape)}) box-bound arrays, got shapes "
            f"{lows.shape} and {highs.shape}"
        )
    for axis, size in enumerate(shape):
        lo, hi = lows[:, axis], highs[:, axis]
        if lo.size and not (lo.min() >= 0 and np.all(lo <= hi) and hi.max() <= size):
            raise QueryError(
                f"a range is out of bounds for axis {axis} of size {size}"
            )
    return lows, highs


def ensure_epsilon(epsilon) -> float:
    """Validate a differential-privacy budget ε (> 0), as a float.

    The single validator every mechanism shares (Basic, Privelet,
    Privelet+, and the vector entry points all used to carry copies of
    this check).  Raises :class:`repro.errors.PrivacyError` so the error
    a caller sees is the same regardless of the entry point.
    """
    from repro.errors import PrivacyError

    if not (isinstance(epsilon, (int, float)) and epsilon > 0):
        raise PrivacyError(f"epsilon must be a positive number, got {epsilon!r}")
    return float(epsilon)


def ensure_positive(value, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is > 0."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_positive_int(value, name: str) -> int:
    """Return ``value`` as an int, raising unless it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_in_range(value, name: str, low: float, high: float) -> float:
    """Return ``value`` as a float, raising unless ``low <= value <= high``."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two (1, 2, 4, 8, ...)."""
    return value >= 1 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (>= 1).

    The one-dimensional Haar transform requires input length ``2**l``; the
    paper pads shorter vectors with dummy (zero) entries, and this helper
    computes the padded length.
    """
    value = ensure_positive_int(value, "value")
    return 1 << (value - 1).bit_length()
