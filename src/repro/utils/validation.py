"""Small argument-validation helpers used across the library.

These helpers exist so error messages are consistent and so validation
logic (e.g. power-of-two padding used by the Haar transform) lives in one
place.
"""

from __future__ import annotations

import numbers


def ensure_positive(value, name: str) -> float:
    """Return ``value`` as a float, raising ``ValueError`` unless it is > 0."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_positive_int(value, name: str) -> int:
    """Return ``value`` as an int, raising unless it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def ensure_in_range(value, name: str, low: float, high: float) -> float:
    """Return ``value`` as a float, raising unless ``low <= value <= high``."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two (1, 2, 4, 8, ...)."""
    return value >= 1 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (>= 1).

    The one-dimensional Haar transform requires input length ``2**l``; the
    paper pads shorter vectors with dummy (zero) entries, and this helper
    computes the padded length.
    """
    value = ensure_positive_int(value, "value")
    return 1 << (value - 1).bit_length()
