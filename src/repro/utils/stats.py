"""Scalar statistical helpers shared across the library.

Currently just the inverse standard-normal CDF, which the query engine
uses to build Gaussian-approximation confidence intervals and which is
worth owning (rather than importing scipy for) because it sits on the
per-batch serving path.
"""

from __future__ import annotations

import math

from repro.errors import QueryError

__all__ = ["gaussian_quantile"]

# Acklam rational-approximation coefficients for the central region ...
_A = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
      1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
_B = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
      6.680131188771972e01, -1.328068155288572e01)
# ... and for the tails.
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
      -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
      3.754408661907416e00)
_P_LOW = 0.02425


def gaussian_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation.

    Accurate to ~1e-9 relative error over (0, 1) — including the deep
    tails, where the tail-region rational form takes over — without a
    scipy dependency (scipy is only used by the Barak baseline).
    """
    if not 0.0 < p < 1.0:
        raise QueryError(f"quantile probability must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    if p > 1.0 - _P_LOW:
        return -gaussian_quantile(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / (
        ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0
    )
