"""Shared utilities: random-number handling and argument validation."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
    is_power_of_two,
    next_power_of_two,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
    "is_power_of_two",
    "next_power_of_two",
]
