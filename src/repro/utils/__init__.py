"""Shared utilities: random-number handling, validation, and statistics."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import gaussian_quantile
from repro.utils.validation import (
    ensure_boxes,
    ensure_epsilon,
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
    is_power_of_two,
    next_power_of_two,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "gaussian_quantile",
    "ensure_boxes",
    "ensure_epsilon",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
    "is_power_of_two",
    "next_power_of_two",
]
