"""Deterministic random-number plumbing.

Every randomized entry point in the library accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Nothing in the library touches numpy's
global random state, so independent components never interfere with each
other and experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` or
        :class:`numpy.random.SeedSequence` for a deterministic stream, or
        an existing :class:`numpy.random.Generator` which is returned
        unchanged (so callers can share one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by experiment runners that evaluate several mechanisms side by
    side: each mechanism gets its own child stream, so adding a mechanism
    to a run never perturbs the noise drawn by the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Split an existing generator by drawing child seeds from it.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
