"""Fast bulk range-sum evaluation via d-dimensional prefix sums.

The paper's workloads have 40 000 queries per dataset (§VII-A); summing a
box per query would cost ``O(m)`` each.  A summed-area table (prefix-sum
array) answers any axis-aligned box in ``O(2^d)`` lookups by
inclusion-exclusion, after one ``O(m)`` build.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.frequency import FrequencyMatrix
from repro.errors import QueryError
from repro.queries.query import RangeCountQuery
from repro.utils.validation import ensure_boxes

__all__ = ["RangeSumOracle"]


class RangeSumOracle:
    """Answer axis-aligned box sums over one matrix in ``O(2^d)`` each."""

    def __init__(self, matrix: FrequencyMatrix):
        self._schema = matrix.schema
        self._shape = matrix.shape
        # Prefix array with a zero border on every axis: P[i1..id] = sum of
        # values[:i1, ..., :id].  Built axis by axis.
        prefix = matrix.values
        for axis in range(prefix.ndim):
            prefix = np.cumsum(prefix, axis=axis)
        pad = [(1, 0)] * prefix.ndim
        self._prefix = np.pad(prefix, pad)
        # Inclusion-exclusion corner pattern: for each of the 2^d corners,
        # the sign is (-1)^(number of "lo" picks).
        d = prefix.ndim
        self._corners = list(itertools.product((0, 1), repeat=d))

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def nbytes(self) -> int:
        """Bytes held by the prefix array (the oracle's whole state)."""
        return int(self._prefix.nbytes)

    def box_sum(self, box) -> float:
        """Sum of the half-open box ``[(lo, hi), ...]`` via the prefix array."""
        if len(box) != len(self._shape):
            raise QueryError(f"box must have {len(self._shape)} ranges, got {len(box)}")
        for (lo, hi), size in zip(box, self._shape):
            if not (0 <= lo <= hi <= size):
                raise QueryError(f"range [{lo}, {hi}) out of bounds for axis size {size}")
        total = 0.0
        for corner in self._corners:
            index = tuple(
                (hi if pick else lo) for pick, (lo, hi) in zip(corner, box)
            )
            sign = -1.0 if (len(corner) - sum(corner)) % 2 else 1.0
            total += sign * float(self._prefix[index])
        return total

    def answer(self, query: RangeCountQuery) -> float:
        """Answer one range-count query."""
        if query.schema.shape != self._shape:
            raise QueryError("query schema does not match oracle matrix shape")
        return self.box_sum(query.box())

    def answer_all(self, queries) -> np.ndarray:
        """Answer a sequence of queries; returns a float array.

        Vectorized: one gather of ``len(queries)`` prefix entries per
        corner pattern (``2^d`` gathers total), so the 40 000-query paper
        workloads evaluate in milliseconds.
        """
        queries = list(queries)
        if not queries:
            return np.zeros(0, dtype=np.float64)
        d = len(self._shape)
        lows = np.empty((len(queries), d), dtype=np.int64)
        highs = np.empty((len(queries), d), dtype=np.int64)
        for row, query in enumerate(queries):
            if query.schema.shape != self._shape:
                raise QueryError("query schema does not match oracle matrix shape")
            for axis, (lo, hi) in enumerate(query.box()):
                lows[row, axis] = lo
                highs[row, axis] = hi
        return self.answer_boxes(lows, highs)

    def answer_boxes(self, lows, highs) -> np.ndarray:
        """Bulk box sums from ``(n, d)`` low/high bound arrays.

        The array-level core of :meth:`answer_all`, and the dense
        answer-backend primitive (:class:`repro.core.release.
        DenseRelease` serves through it).
        """
        lows, highs = ensure_boxes(lows, highs, self._shape)
        d = len(self._shape)
        flat = self._prefix.reshape(-1)
        strides = np.asarray(
            [int(np.prod(self._prefix.shape[axis + 1 :])) for axis in range(d)],
            dtype=np.int64,
        )
        totals = np.zeros(lows.shape[0], dtype=np.float64)
        for corner in self._corners:
            picks = np.where(np.asarray(corner, dtype=bool), highs, lows)
            sign = -1.0 if (d - sum(corner)) % 2 else 1.0
            totals += sign * flat[picks @ strides]
        return totals
