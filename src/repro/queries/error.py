"""Query-error metrics of the paper's evaluation (§VII-A).

For an approximate answer ``x`` with exact answer ``act``:

* **square error** — ``(x - act)^2`` (Figures 6–7);
* **relative error** — ``|x - act| / max(act, s)`` where the *sanity
  bound* ``s`` damps queries with tiny exact answers (Figures 8–9).  The
  paper sets ``s`` to 0.1% of the number of tuples, following [12], [13].
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.utils.validation import ensure_positive

__all__ = ["square_error", "relative_error", "sanity_bound", "DEFAULT_SANITY_FRACTION"]

#: The paper's sanity-bound fraction: s = 0.1% of the tuple count.
DEFAULT_SANITY_FRACTION = 0.001


def square_error(approximate, exact) -> np.ndarray:
    """Element-wise ``(x - act)^2``."""
    approximate = np.asarray(approximate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approximate.shape != exact.shape:
        raise QueryError(
            f"shape mismatch: {approximate.shape} vs {exact.shape}"
        )
    difference = approximate - exact
    return difference * difference


def sanity_bound(num_tuples: int, fraction: float = DEFAULT_SANITY_FRACTION) -> float:
    """``s = fraction * n``; the §VII-A default is 0.1% of the tuples."""
    fraction = ensure_positive(fraction, "fraction")
    if num_tuples < 0:
        raise QueryError(f"num_tuples must be >= 0, got {num_tuples}")
    return float(num_tuples) * fraction


def relative_error(approximate, exact, sanity: float) -> np.ndarray:
    """Element-wise ``|x - act| / max(act, s)``."""
    sanity = ensure_positive(sanity, "sanity")
    approximate = np.asarray(approximate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approximate.shape != exact.shape:
        raise QueryError(
            f"shape mismatch: {approximate.shape} vs {exact.shape}"
        )
    return np.abs(approximate - exact) / np.maximum(exact, sanity)
