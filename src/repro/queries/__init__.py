"""Range-count queries: predicates, evaluation, workloads, error metrics."""

from repro.queries.error import (
    DEFAULT_SANITY_FRACTION,
    relative_error,
    sanity_bound,
    square_error,
)
from repro.queries.engine import BatchQueryAnswers, QueryAnswer, QueryEngine
from repro.queries.oracle import RangeSumOracle
from repro.queries.predicate import (
    Predicate,
    full_range_predicate,
    hierarchy_predicate,
    interval_predicate,
)
from repro.queries.query import RangeCountQuery
from repro.queries.workload import Workload, generate_workload, quintile_buckets

__all__ = [
    "Predicate",
    "interval_predicate",
    "hierarchy_predicate",
    "full_range_predicate",
    "RangeCountQuery",
    "RangeSumOracle",
    "QueryEngine",
    "QueryAnswer",
    "BatchQueryAnswers",
    "Workload",
    "generate_workload",
    "quintile_buckets",
    "square_error",
    "relative_error",
    "sanity_bound",
    "DEFAULT_SANITY_FRACTION",
]
