"""Range-count queries over a schema (paper §II-A).

A :class:`RangeCountQuery` is a conjunction of per-attribute predicates;
attributes without a predicate default to their full range.  Evaluation
reduces to summing an axis-aligned box of the frequency matrix; bulk
evaluation should go through :class:`repro.queries.oracle.RangeSumOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import QueryError, SchemaError
from repro.queries.predicate import Predicate

__all__ = ["RangeCountQuery"]


@dataclass(frozen=True)
class RangeCountQuery:
    """An OLAP-style range-count query bound to a schema."""

    schema: Schema
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __post_init__(self):
        seen = set()
        for predicate in self.predicates:
            try:
                index = self.schema.index_of(predicate.attribute_name)
            except SchemaError as exc:
                raise QueryError(str(exc)) from exc
            if index in seen:
                raise QueryError(
                    f"duplicate predicate on {predicate.attribute_name!r}"
                )
            seen.add(index)
            size = self.schema[index].size
            if predicate.hi > size:
                raise QueryError(
                    f"predicate interval [{predicate.lo}, {predicate.hi}) "
                    f"exceeds domain size {size} of {predicate.attribute_name!r}"
                )

    # ------------------------------------------------------------------
    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    def box(self) -> tuple[tuple[int, int], ...]:
        """Per-dimension half-open ranges (full range when unconstrained)."""
        ranges = [(0, attr.size) for attr in self.schema]
        for predicate in self.predicates:
            ranges[self.schema.index_of(predicate.attribute_name)] = (
                predicate.lo,
                predicate.hi,
            )
        return tuple(ranges)

    def coverage(self) -> float:
        """Fraction of frequency-matrix cells inside the query box (§VII-A)."""
        cells = 1.0
        for lo, hi in self.box():
            cells *= hi - lo
        return cells / float(self.schema.num_cells)

    # ------------------------------------------------------------------
    def evaluate(self, matrix: FrequencyMatrix) -> float:
        """Answer the query on a (possibly noisy) frequency matrix."""
        if matrix.schema.shape != self.schema.shape:
            raise QueryError("query schema does not match matrix schema")
        return matrix.range_sum(self.box())

    def evaluate_rows(self, rows: np.ndarray) -> int:
        """Count matching tuples directly on an ``(n, d)`` row array."""
        if rows.ndim != 2 or rows.shape[1] != self.schema.dimensions:
            raise QueryError(
                f"rows must have shape (n, {self.schema.dimensions}), got {rows.shape}"
            )
        mask = np.ones(rows.shape[0], dtype=bool)
        for axis, (lo, hi) in enumerate(self.box()):
            if (lo, hi) != (0, self.schema[axis].size):
                column = rows[:, axis]
                mask &= (column >= lo) & (column < hi)
        return int(mask.sum())

    def __repr__(self) -> str:
        parts = ", ".join(repr(p) for p in self.predicates) or "<all>"
        return f"RangeCountQuery({parts})"
