"""Per-attribute predicates of range-count queries (paper §II-A).

A range-count query has the SQL shape::

    SELECT COUNT(*) FROM T
    WHERE A1 IN S1 AND A2 IN S2 AND ... AND Ad IN Sd

where each ``S_i`` is

* an **interval** on an ordinal attribute's domain, or
* a **hierarchy node** on a nominal attribute: either one leaf, or all
  leaves under one internal node (OLAP roll-up/drill-down navigation).

Because nominal domains are coded in DFS leaf order, *every* predicate
reduces to a half-open index interval ``[lo, hi)`` on its axis — the key
simplification this library exploits for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.attributes import Attribute, NominalAttribute, OrdinalAttribute
from repro.errors import QueryError

__all__ = ["Predicate", "interval_predicate", "hierarchy_predicate", "full_range_predicate"]


@dataclass(frozen=True)
class Predicate:
    """One conjunct ``A in S`` reduced to a half-open interval on its axis."""

    attribute_name: str
    lo: int
    hi: int  # half-open
    #: Presentation detail: the hierarchy node id this interval came from
    #: (None for ordinal intervals and full ranges).
    node_id: int | None = None

    def __post_init__(self):
        if not (0 <= self.lo < self.hi):
            raise QueryError(
                f"predicate on {self.attribute_name!r} has empty or negative "
                f"interval [{self.lo}, {self.hi})"
            )

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def covers(self, value: int) -> bool:
        """True if the coded value satisfies this predicate."""
        return self.lo <= value < self.hi

    def __repr__(self) -> str:
        origin = f", node={self.node_id}" if self.node_id is not None else ""
        return f"Predicate({self.attribute_name!r} in [{self.lo}, {self.hi}){origin})"


def interval_predicate(attribute: Attribute, lo: int, hi: int) -> Predicate:
    """``A in [lo, hi]`` on an ordinal attribute (inclusive endpoints).

    Matches the paper's "S_i is an interval defined on the domain of
    A_i".  ``hi`` is inclusive here because that is how ranges read in
    the paper; the stored form is half-open.
    """
    if not isinstance(attribute, OrdinalAttribute):
        raise QueryError(
            f"interval predicates require an ordinal attribute, got "
            f"{attribute.name!r} ({type(attribute).__name__})"
        )
    lo, hi = int(lo), int(hi)
    if not (0 <= lo <= hi < attribute.size):
        raise QueryError(
            f"interval [{lo}, {hi}] out of bounds for {attribute.name!r} "
            f"with domain size {attribute.size}"
        )
    return Predicate(attribute.name, lo, hi + 1)


def hierarchy_predicate(attribute: Attribute, node_id: int) -> Predicate:
    """``A in leaves(node)`` on a nominal attribute.

    ``node_id`` may be any non-root hierarchy node (a leaf selects one
    value; an internal node selects its whole subtree).  The root is
    rejected: it is not a valid paper predicate (it selects everything,
    i.e. no predicate at all) — use :func:`full_range_predicate` or omit
    the attribute instead.
    """
    if not isinstance(attribute, NominalAttribute):
        raise QueryError(
            f"hierarchy predicates require a nominal attribute, got "
            f"{attribute.name!r} ({type(attribute).__name__})"
        )
    hierarchy = attribute.hierarchy
    node_id = int(node_id)
    if not 0 <= node_id < hierarchy.num_nodes:
        raise QueryError(
            f"node id {node_id} out of range [0, {hierarchy.num_nodes}) for "
            f"{attribute.name!r}"
        )
    if node_id == hierarchy.root_id:
        raise QueryError(
            f"the hierarchy root of {attribute.name!r} is not a valid "
            "predicate; omit the attribute instead"
        )
    lo, hi = hierarchy.leaf_interval(node_id)
    return Predicate(attribute.name, lo, hi, node_id=node_id)


def full_range_predicate(attribute: Attribute) -> Predicate:
    """The trivial predicate covering the attribute's whole domain."""
    return Predicate(attribute.name, 0, attribute.size)
