"""A query engine over published results, with uncertainty estimates.

Downstream consumers of a DP release need more than point answers: they
need to know how noisy each answer is.  Because Privelet's noise is a
known linear function of independent Laplace draws, the *exact* standard
deviation of every range-count answer is computable from the release
metadata alone (no additional privacy cost — it depends only on the
mechanism configuration, not the data).  :class:`QueryEngine` packages:

* point answers via the prefix-sum oracle,
* exact noise variance per query (:mod:`repro.analysis.exact`),
* Gaussian-approximation confidence intervals (a range answer sums many
  independent Laplace terms, so the CLT applies; for one-coefficient
  answers the interval is conservative by design — we widen the Gaussian
  quantile to the Laplace one when the effective term count is tiny).

The primary entry point for traffic is the **batch API**
(:meth:`QueryEngine.answer_all_with_intervals`): one vectorized backend
gather plus one compiled variance pass over the whole batch, with the
per-axis range profiles memoized across calls on the same engine — so an
OLAP dashboard re-asking overlapping ranges pays for each distinct range
once over the engine's lifetime.  The single-query methods are thin
wrappers over the batch path.

Answer backends
---------------
Point answers come from the result's :class:`~repro.core.release.
Release`, which is the engine's **answer-backend protocol** (``schema``,
``answer_boxes``, ``marginal``): a :class:`~repro.core.release.
DenseRelease` serves from the prefix-sum oracle exactly as before, while
a :class:`~repro.core.release.CoefficientRelease` serves by sparse
adjoint gathers over the noisy coefficients — same answers, no dense
``M*``.  Everything else in the engine (exact variances, intervals,
marginal stds) already depended only on the mechanism configuration, so
it is representation-independent by construction.  **Composed**
backends — any node of the composition algebra
(:mod:`repro.core.compose`), including
:class:`~repro.core.sharding.ShardedRelease`,
:class:`~repro.streaming.release.StreamRelease`, and their nestings —
have no single mechanism configuration (each part carries its own
transform and λ), so the engine detects their ``noise_variances_boxes``
hook and delegates point answers *and* exact variances to the release,
which routes per part and sums (independent noise means the variances
add).  An ``sa_names`` override is rejected uniformly by the algebra
base (:meth:`~repro.core.compose.ComposedRelease.reject_sa_override`)
with a typed :class:`~repro.errors.ServingError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import AxisProfileCache, query_boxes
from repro.core.framework import PublishResult
from repro.core.release import CoefficientRelease, infer_sa_names, marginal_boxes
from repro.errors import QueryError
from repro.queries.query import RangeCountQuery
from repro.transforms.multidim import HNTransform
from repro.utils.stats import gaussian_quantile
from repro.utils.validation import ensure_boxes

__all__ = ["QueryAnswer", "BatchQueryAnswers", "QueryEngine"]

#: Back-compat alias — the quantile now lives in :mod:`repro.utils.stats`.
_gaussian_quantile = gaussian_quantile


def _interval_answers(
    estimates: np.ndarray, noise_stds: np.ndarray, confidence: float
) -> "BatchQueryAnswers":
    """Two-sided confidence intervals around ``estimates``, vectorized.

    The single interval construction every batch path uses — the engine
    directly, and the planner after scattering deduplicated or
    view-served rows — so planned answers stay bit-for-bit identical to
    unplanned ones.  Gaussian approximation to the sum of independent
    Laplace noises, widened to the exact Laplace quantile when it is
    larger.
    """
    if not 0.0 < confidence < 1.0:
        raise QueryError(f"confidence must be in (0, 1), got {confidence}")
    confidence = float(confidence)
    tail = (1.0 - confidence) / 2.0
    gaussian_multiplier = -gaussian_quantile(tail)
    # Exact Laplace quantile for a *single* Laplace with the same
    # variance: scale = std / sqrt(2); P(|X| > w) = exp(-w/scale).
    laplace_multiplier = -math.log(2.0 * tail) / math.sqrt(2.0)
    half_widths = max(gaussian_multiplier, laplace_multiplier) * noise_stds
    return BatchQueryAnswers(
        estimates=estimates,
        noise_stds=noise_stds,
        lowers=estimates - half_widths,
        uppers=estimates + half_widths,
        confidence=confidence,
    )


@dataclass(frozen=True)
class QueryAnswer:
    """A private answer with its noise profile."""

    estimate: float
    #: Exact standard deviation of the noise in ``estimate``.
    noise_std: float
    #: Confidence interval at the level the engine was asked for.
    lower: float
    upper: float
    confidence: float


@dataclass(frozen=True)
class BatchQueryAnswers:
    """Vectorized answers for a query batch (arrays aligned by query).

    Indexing (or iterating) yields per-query :class:`QueryAnswer` views
    for callers that want the scalar shape.
    """

    estimates: np.ndarray
    #: Exact standard deviation of the noise in each estimate.
    noise_stds: np.ndarray
    #: Two-sided confidence bounds at ``confidence``.
    lowers: np.ndarray
    uppers: np.ndarray
    confidence: float

    def __len__(self) -> int:
        return len(self.estimates)

    def __getitem__(self, index: int) -> QueryAnswer:
        return QueryAnswer(
            estimate=float(self.estimates[index]),
            noise_std=float(self.noise_stds[index]),
            lower=float(self.lowers[index]),
            upper=float(self.uppers[index]),
            confidence=self.confidence,
        )

    def __iter__(self):
        return (self[index] for index in range(len(self)))


class QueryEngine:
    """Answer queries on one :class:`PublishResult` with noise accounting.

    Parameters
    ----------
    result:
        A published result from any mechanism in this library.
    sa_names:
        Override for the SA set used to rebuild the transform.  Usually
        inferred from ``result.details`` (Basic implies all attributes).
    profile_cache_factory:
        Optional callable mapping the engine's per-axis transform
        sequence to the :class:`~repro.analysis.exact.AxisProfileCache`
        it memoizes profiles in.  The serving layer passes a bounded LRU
        subclass here; the default is the unbounded cache.
    """

    def __init__(
        self, result: PublishResult, *, sa_names=None, profile_cache_factory=None
    ):
        self._result = result
        self._release = result.release
        schema = self._release.schema
        if hasattr(self._release, "noise_variances_boxes"):
            # A composed release (sharded, stream) has no single
            # transform or lambda: each shard or tree node carries its
            # own.  Point answers and exact variances both delegate to
            # the release, which routes and sums per part.  The per-part
            # profile caches are built with this engine's factory and
            # owned by this engine, so a server's bounded policy (and
            # its hit/miss accounting) covers exactly this engine's
            # traffic.
            if sa_names is not None:
                reject = getattr(self._release, "reject_sa_override", None)
                if reject is not None:
                    reject()
                raise QueryError(
                    "composed releases (sharded, stream) carry their own "
                    "SA configuration; the sa_names override is not "
                    "supported"
                )
            self._transform = None
            self._profiles = self._release.build_profile_caches(
                profile_cache_factory
            )
            return
        if isinstance(self._release, CoefficientRelease):
            # A coefficient release carries its own configuration; an
            # explicit override must agree with it, otherwise the
            # uncertainty math would describe a different release than
            # the one answering the queries.
            if sa_names is not None and frozenset(sa_names) != frozenset(
                self._release.sa_names
            ):
                raise QueryError(
                    f"sa_names {tuple(sa_names)} conflicts with the "
                    f"release's own SA set {self._release.sa_names}"
                )
            self._transform = self._release.transform
        else:
            if sa_names is None:
                sa_names = infer_sa_names(result)
            self._transform = HNTransform(schema, sa_names)
        # Per-axis range -> profile memo, shared by every uncertainty
        # call on this engine (batch misses fill it vectorized).
        if profile_cache_factory is None:
            profile_cache_factory = AxisProfileCache
        self._profiles = profile_cache_factory(self._transform.transforms)

    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self._release.schema

    @property
    def release(self):
        """The answer backend this engine serves point answers from."""
        return self._release

    @property
    def transform(self) -> HNTransform:
        """The HN transform reconstructed from the result's configuration.

        ``None`` for a composed backend (sharded or stream), which has
        one transform per shard or tree node instead.
        """
        return self._transform

    @property
    def profile_cache(self):
        """The per-axis profile cache this engine memoizes variances in.

        Exposed so serving-layer stats can read its hit/miss counters;
        treat it as read-only.
        """
        return self._profiles

    def answer(self, query: RangeCountQuery) -> float:
        """Point answer for one ``query`` from the published release.

        ``O(m)``-free on a coefficient backend: the answer gathers
        ``O(prod_i log m_i)`` coefficients (dense backends pay two
        prefix-oracle lookups per axis instead).

        Parameters
        ----------
        query:
            A range-count query over the release's schema shape.

        Returns
        -------
        float
            The private (noisy) count.
        """
        if query.schema.shape != self._release.schema.shape:
            raise QueryError("query schema does not match the release's shape")
        return self._release.answer_box(query.box())

    def noise_variance(self, query: RangeCountQuery) -> float:
        """Exact noise variance of one ``query``'s answer (data-free).

        Parameters
        ----------
        query:
            A range-count query over the release's schema shape.

        Returns
        -------
        float
            ``2 lambda^2 * prod_i profile_i`` — exact, not a bound.
        """
        return float(self.noise_variances([query])[0])

    def noise_variances(self, queries) -> np.ndarray:
        """Exact noise variances for a query batch, vectorized.

        One compiled pass: each axis's distinct ranges are profiled in a
        single transform call (through the engine's persistent cache),
        then multiplied across axes per query — ``O(log m_i)`` per
        distinct uncached range on a Haar axis, ``O(1)`` afterwards.

        Parameters
        ----------
        queries:
            Iterable of range-count queries over the release's schema.

        Returns
        -------
        numpy.ndarray
            Per-query exact variances, aligned with ``queries``.
        """
        lows, highs = query_boxes(queries, self.schema.shape)
        return self.noise_variances_columnar(lows, highs)

    def noise_variances_columnar(self, lows, highs) -> np.ndarray:
        """Exact noise variances straight from ``(n, d)`` bound arrays.

        The columnar twin of :meth:`noise_variances`: no query objects,
        just per-axis half-open bounds.  Same memoized profile cache,
        same exact math.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` int64 arrays of half-open box bounds, one row per
            query (axis order = schema order).

        Returns
        -------
        numpy.ndarray
            Per-row exact variances.
        """
        lows, highs = ensure_boxes(lows, highs, self.schema.shape)
        if self._transform is None:
            # Composed: per-part 2 lambda_i^2 * profile products,
            # summed (independent noise adds).
            return self._release.noise_variances_boxes(
                lows, highs, caches=self._profiles
            )
        products = self._profiles.box_profile_products(lows, highs)
        return 2.0 * self._result.noise_magnitude**2 * products

    def answer_with_interval(
        self, query: RangeCountQuery, confidence: float = 0.95
    ) -> QueryAnswer:
        """Point answer plus a two-sided confidence interval for ``query``.

        A batch of one — see :meth:`answer_all_with_intervals` for the
        interval construction and the ``confidence`` semantics.

        Returns
        -------
        QueryAnswer
            Estimate, exact noise std, and interval bounds.
        """
        return self.answer_all_with_intervals([query], confidence)[0]

    def answer_all_with_intervals(
        self, queries, confidence: float = 0.95
    ) -> BatchQueryAnswers:
        """Batch answers with exact stds and confidence intervals.

        One vectorized oracle gather for the estimates plus one compiled
        variance pass for the stds.  The interval uses the Gaussian
        approximation to the sum of independent Laplace noises, widened
        to the exact Laplace quantile when it is larger (so intervals
        stay valid even for answers dominated by a single coefficient).
        Per query this is ``O(prod_i log m_i)`` gather work plus
        ``O(log m_i)`` per distinct uncached range for the variances.

        Parameters
        ----------
        queries:
            Iterable of range-count queries over the release's schema.
        confidence:
            Two-sided coverage level in ``(0, 1)``.

        Returns
        -------
        BatchQueryAnswers
            Arrays aligned with ``queries``.
        """
        lows, highs = query_boxes(queries, self.schema.shape)
        return self.answer_columnar(lows, highs, confidence)

    def answer_columnar(
        self, lows, highs, confidence: float = 0.95
    ) -> BatchQueryAnswers:
        """Batch answers with intervals straight from ``(n, d)`` bound arrays.

        The zero-object entry point the serving layer's columnar fast
        path hands its decoded wire batches to: no
        :class:`~repro.queries.query.RangeCountQuery` instances, no
        per-query Python — one vectorized backend gather, one compiled
        variance pass, one vectorized interval construction, all against
        the same memoized profile caches the scalar path uses, so the
        answers are bit-for-bit identical to
        :meth:`answer_all_with_intervals` on the equivalent queries.

        Degenerate rows (``lo == hi`` on any axis) cover zero cells and
        answer an exact ``0.0`` with zero noise — consistent with every
        release backend's ``answer_boxes`` contract.

        Parameters
        ----------
        lows, highs:
            ``(n, d)`` int64 arrays of half-open box bounds, one row per
            query (axis order = schema order).
        confidence:
            Two-sided coverage level in ``(0, 1)``.

        Returns
        -------
        BatchQueryAnswers
            Arrays aligned with the rows.
        """
        if not 0.0 < confidence < 1.0:
            raise QueryError(f"confidence must be in (0, 1), got {confidence}")
        lows, highs = ensure_boxes(lows, highs, self.schema.shape)
        estimates = self._release.answer_boxes(lows, highs)
        stds = np.sqrt(self.noise_variances_columnar(lows, highs))
        return _interval_answers(estimates, stds, confidence)

    def answer_all(self, queries) -> np.ndarray:
        """Bulk point answers (one vectorized backend gather).

        Parameters
        ----------
        queries:
            Iterable of range-count queries over the release's schema.

        Returns
        -------
        numpy.ndarray
            Per-query private counts, aligned with ``queries``.
        """
        lows, highs = query_boxes(queries, self.schema.shape)
        return self._release.answer_boxes(lows, highs)

    def marginal_with_std(self, attribute_names) -> tuple[np.ndarray, np.ndarray]:
        """A DP marginal table plus the exact noise std of every cell.

        Each marginal cell is a range-count query (a point on the kept
        axes, the full range on the summed-out axes), so its exact noise
        variance factorizes per axis — the whole std table costs one
        vectorized profile pass per kept axis (memoized across calls
        like every engine profile).

        Parameters
        ----------
        attribute_names:
            Attributes to keep, in the desired output-axis order.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(values, stds)`` with one axis per requested attribute
            (order of the request).
        """
        schema = self.schema
        names = list(attribute_names)
        if self._transform is None:
            # Composed: every marginal cell is a box, so both the values
            # and the exact stds come from one grid of per-part box
            # passes (marginal_boxes validates the names).
            kept_sizes, lows, highs = marginal_boxes(schema, names)
            values = self._release.answer_boxes(lows, highs).reshape(kept_sizes)
            variances = self._release.noise_variances_boxes(
                lows, highs, caches=self._profiles
            )
            return values, np.sqrt(variances).reshape(kept_sizes)

        keep_axes = schema.axes_of(names)
        if len(set(keep_axes)) != len(keep_axes):
            raise QueryError(f"duplicate attribute names: {names}")

        values = self._release.marginal(names)
        factor = 2.0 * self._result.noise_magnitude**2
        per_axis = []
        for axis, transform in enumerate(self._transform.transforms):
            if axis in keep_axes:
                cells = np.arange(transform.input_length, dtype=np.int64)
                per_axis.append(self._profiles.profiles(axis, cells, cells + 1))
            else:
                factor *= self._profiles.profile(axis, 0, transform.input_length)
        # Outer product of the kept axes' profiles, ordered as requested.
        variance = np.ones((1,) * len(names))
        ordered = [per_axis[sorted(keep_axes).index(axis)] for axis in keep_axes]
        for position, profile in enumerate(ordered):
            shape = [1] * len(names)
            shape[position] = len(profile)
            variance = variance * profile.reshape(shape)
        return values, np.sqrt(factor * variance)

    def __repr__(self) -> str:
        return (
            f"QueryEngine(epsilon={self._result.epsilon}, "
            f"shape={self._release.schema.shape}, "
            f"backend={self._release.representation})"
        )
