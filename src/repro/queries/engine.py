"""A query engine over published results, with uncertainty estimates.

Downstream consumers of a DP release need more than point answers: they
need to know how noisy each answer is.  Because Privelet's noise is a
known linear function of independent Laplace draws, the *exact* standard
deviation of every range-count answer is computable from the release
metadata alone (no additional privacy cost — it depends only on the
mechanism configuration, not the data).  :class:`QueryEngine` packages:

* point answers via the prefix-sum oracle,
* exact noise variance per query (:mod:`repro.analysis.exact`),
* Gaussian-approximation confidence intervals (a range answer sums many
  independent Laplace terms, so the CLT applies; for one-coefficient
  answers the interval is conservative by design — we widen the Gaussian
  quantile to the Laplace one when the effective term count is tiny).

The primary entry point for traffic is the **batch API**
(:meth:`QueryEngine.answer_all_with_intervals`): one vectorized oracle
gather plus one compiled variance pass over the whole batch, with the
per-axis range profiles memoized across calls on the same engine — so an
OLAP dashboard re-asking overlapping ranges pays for each distinct range
once over the engine's lifetime.  The single-query methods are thin
wrappers over the batch path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.exact import AxisProfileCache, query_boxes
from repro.core.framework import PublishResult
from repro.errors import QueryError
from repro.queries.oracle import RangeSumOracle
from repro.queries.query import RangeCountQuery
from repro.transforms.multidim import HNTransform

__all__ = ["QueryAnswer", "BatchQueryAnswers", "QueryEngine"]


@dataclass(frozen=True)
class QueryAnswer:
    """A private answer with its noise profile."""

    estimate: float
    #: Exact standard deviation of the noise in ``estimate``.
    noise_std: float
    #: Confidence interval at the level the engine was asked for.
    lower: float
    upper: float
    confidence: float


@dataclass(frozen=True)
class BatchQueryAnswers:
    """Vectorized answers for a query batch (arrays aligned by query).

    Indexing (or iterating) yields per-query :class:`QueryAnswer` views
    for callers that want the scalar shape.
    """

    estimates: np.ndarray
    #: Exact standard deviation of the noise in each estimate.
    noise_stds: np.ndarray
    #: Two-sided confidence bounds at ``confidence``.
    lowers: np.ndarray
    uppers: np.ndarray
    confidence: float

    def __len__(self) -> int:
        return len(self.estimates)

    def __getitem__(self, index: int) -> QueryAnswer:
        return QueryAnswer(
            estimate=float(self.estimates[index]),
            noise_std=float(self.noise_stds[index]),
            lower=float(self.lowers[index]),
            upper=float(self.uppers[index]),
            confidence=self.confidence,
        )

    def __iter__(self):
        return (self[index] for index in range(len(self)))


def _gaussian_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation.

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the
    query path (scipy is only used by the Barak baseline).
    """
    if not 0.0 < p < 1.0:
        raise QueryError(f"quantile probability must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        return -_gaussian_quantile(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


class QueryEngine:
    """Answer queries on one :class:`PublishResult` with noise accounting.

    Parameters
    ----------
    result:
        A published result from any mechanism in this library.
    sa_names:
        Override for the SA set used to rebuild the transform.  Usually
        inferred from ``result.details`` (Basic implies all attributes).
    """

    def __init__(self, result: PublishResult, *, sa_names=None):
        self._result = result
        schema = result.matrix.schema
        if sa_names is None:
            if result.details.get("mechanism") == "Basic":
                sa_names = tuple(schema.names)
            elif "sa" in result.details:
                sa_names = tuple(result.details["sa"])
            else:
                raise QueryError(
                    "cannot infer the mechanism configuration from the result; "
                    "pass sa_names explicitly"
                )
        self._transform = HNTransform(schema, sa_names)
        self._oracle = RangeSumOracle(result.matrix)
        # Per-axis range -> profile memo, shared by every uncertainty
        # call on this engine (batch misses fill it vectorized).
        self._profiles = AxisProfileCache(self._transform.transforms)

    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self._result.matrix.schema

    @property
    def transform(self) -> HNTransform:
        """The HN transform reconstructed from the result's configuration."""
        return self._transform

    def answer(self, query: RangeCountQuery) -> float:
        """Point answer from the published matrix."""
        return self._oracle.answer(query)

    def noise_variance(self, query: RangeCountQuery) -> float:
        """Exact noise variance of this query's answer (data-free)."""
        return float(self.noise_variances([query])[0])

    def noise_variances(self, queries) -> np.ndarray:
        """Exact noise variances for a query batch, vectorized.

        One compiled pass: each axis's distinct ranges are profiled in a
        single transform call (through the engine's persistent cache),
        then multiplied across axes per query.
        """
        lows, highs = query_boxes(queries, self._transform.input_shape)
        products = self._profiles.box_profile_products(lows, highs)
        return 2.0 * self._result.noise_magnitude**2 * products

    def answer_with_interval(
        self, query: RangeCountQuery, confidence: float = 0.95
    ) -> QueryAnswer:
        """Point answer plus a two-sided confidence interval.

        A batch of one — see :meth:`answer_all_with_intervals` for the
        interval construction.
        """
        return self.answer_all_with_intervals([query], confidence)[0]

    def answer_all_with_intervals(
        self, queries, confidence: float = 0.95
    ) -> BatchQueryAnswers:
        """Batch answers with exact stds and confidence intervals.

        One vectorized oracle gather for the estimates plus one compiled
        variance pass for the stds.  The interval uses the Gaussian
        approximation to the sum of independent Laplace noises, widened
        to the exact Laplace quantile when it is larger (so intervals
        stay valid even for answers dominated by a single coefficient).
        """
        if not 0.0 < confidence < 1.0:
            raise QueryError(f"confidence must be in (0, 1), got {confidence}")
        confidence = float(confidence)
        queries = list(queries)
        estimates = self._oracle.answer_all(queries)
        stds = np.sqrt(self.noise_variances(queries))
        tail = (1.0 - confidence) / 2.0
        gaussian_multiplier = -_gaussian_quantile(tail)
        # Exact Laplace quantile for a *single* Laplace with the same
        # variance: scale = std / sqrt(2); P(|X| > w) = exp(-w/scale).
        laplace_multiplier = -math.log(2.0 * tail) / math.sqrt(2.0)
        half_widths = max(gaussian_multiplier, laplace_multiplier) * stds
        return BatchQueryAnswers(
            estimates=estimates,
            noise_stds=stds,
            lowers=estimates - half_widths,
            uppers=estimates + half_widths,
            confidence=confidence,
        )

    def answer_all(self, queries) -> np.ndarray:
        """Bulk point answers."""
        return self._oracle.answer_all(queries)

    def marginal_with_std(self, attribute_names) -> tuple[np.ndarray, np.ndarray]:
        """A DP marginal table plus the exact noise std of every cell.

        Returns ``(values, stds)`` with one axis per requested attribute
        (schema order of the request).  Each marginal cell is a
        range-count query (a point on the kept axes, the full range on
        the summed-out axes), so its exact noise variance factorizes per
        axis — the whole std table costs one vectorized profile pass per
        kept axis (memoized across calls like every engine profile).
        """
        schema = self.schema
        names = list(attribute_names)
        keep_axes = schema.axes_of(names)
        if len(set(keep_axes)) != len(keep_axes):
            raise QueryError(f"duplicate attribute names: {names}")

        values = self._result.matrix.marginal(names)
        factor = 2.0 * self._result.noise_magnitude**2
        per_axis = []
        for axis, transform in enumerate(self._transform.transforms):
            if axis in keep_axes:
                cells = np.arange(transform.input_length, dtype=np.int64)
                per_axis.append(self._profiles.profiles(axis, cells, cells + 1))
            else:
                factor *= self._profiles.profile(axis, 0, transform.input_length)
        # Outer product of the kept axes' profiles, ordered as requested.
        variance = np.ones((1,) * len(names))
        ordered = [per_axis[sorted(keep_axes).index(axis)] for axis in keep_axes]
        for position, profile in enumerate(ordered):
            shape = [1] * len(names)
            shape[position] = len(profile)
            variance = variance * profile.reshape(shape)
        return values, np.sqrt(factor * variance)

    def __repr__(self) -> str:
        return (
            f"QueryEngine(epsilon={self._result.epsilon}, "
            f"shape={self._result.matrix.shape})"
        )
