"""Random range-count workloads — the §VII-A generation recipe.

For each query:

1. draw the number of predicates uniformly from ``[1, min(max_predicates,
   d)]`` (the paper uses [1, 4] on the 4-attribute census data);
2. choose that many *distinct* attributes uniformly;
3. on an ordinal attribute, draw a uniformly random interval;
4. on a nominal attribute, draw a uniformly random **non-root** node of
   its hierarchy and select all leaves in its subtree.

The module also computes the two per-query difficulty measures the
paper buckets by — **selectivity** (fraction of tuples matched) and
**coverage** (fraction of matrix cells inside the box) — and splits a
workload into quintile buckets of either measure, matching the paper's
"(i-1)-th and i-th quintiles" construction for Figures 6–9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.queries.oracle import RangeSumOracle
from repro.queries.predicate import hierarchy_predicate, interval_predicate
from repro.queries.query import RangeCountQuery
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive_int

__all__ = ["Workload", "generate_workload", "quintile_buckets"]


def _random_predicate(attribute, rng):
    if isinstance(attribute, OrdinalAttribute):
        lo, hi = sorted(rng.integers(0, attribute.size, size=2).tolist())
        return interval_predicate(attribute, lo, hi)
    if isinstance(attribute, NominalAttribute):
        hierarchy = attribute.hierarchy
        if hierarchy.num_nodes < 2:
            raise QueryError(
                f"{attribute.name!r} has no non-root hierarchy nodes to query"
            )
        node_id = int(rng.integers(1, hierarchy.num_nodes))
        return hierarchy_predicate(attribute, node_id)
    raise QueryError(f"unsupported attribute type: {type(attribute).__name__}")


def generate_workload(
    schema: Schema,
    num_queries: int,
    *,
    max_predicates: int | None = None,
    seed=None,
) -> list[RangeCountQuery]:
    """Generate the §VII-A random workload over ``schema``."""
    num_queries = ensure_positive_int(num_queries, "num_queries")
    d = schema.dimensions
    cap = d if max_predicates is None else min(int(max_predicates), d)
    if cap < 1:
        raise QueryError(f"max_predicates must be >= 1, got {max_predicates}")
    rng = as_generator(seed)

    queries = []
    for _ in range(num_queries):
        count = int(rng.integers(1, cap + 1))
        attribute_indexes = rng.choice(d, size=count, replace=False)
        predicates = tuple(
            _random_predicate(schema[int(i)], rng) for i in attribute_indexes
        )
        queries.append(RangeCountQuery(schema, predicates))
    return queries


@dataclass(frozen=True)
class Workload:
    """A set of queries with precomputed exact answers and measures."""

    queries: tuple[RangeCountQuery, ...]
    #: Exact answers on the non-noisy frequency matrix.
    exact_answers: np.ndarray
    #: Fraction of tuples matched by each query.
    selectivities: np.ndarray
    #: Fraction of matrix cells covered by each query.
    coverages: np.ndarray

    def __len__(self) -> int:
        return len(self.queries)

    @classmethod
    def evaluate(
        cls,
        queries,
        matrix: FrequencyMatrix,
        *,
        oracle: RangeSumOracle | None = None,
    ) -> "Workload":
        """Bind queries to a dataset: exact answers + difficulty measures.

        ``matrix`` must be the *exact* frequency matrix; selectivity is
        exact answer / total tuple count (0 when the table is empty).
        """
        queries = tuple(queries)
        oracle = oracle or RangeSumOracle(matrix)
        exact = oracle.answer_all(queries)
        total = matrix.total
        selectivities = exact / total if total > 0 else np.zeros_like(exact)
        coverages = np.asarray([q.coverage() for q in queries], dtype=np.float64)
        return cls(queries, exact, selectivities, coverages)


def quintile_buckets(values: np.ndarray, num_buckets: int = 5) -> list[np.ndarray]:
    """Index buckets split at the quantiles of ``values`` (paper's quintiles).

    Bucket ``i`` holds the indexes of queries whose value falls between
    the ``(i-1)``-th and ``i``-th ``1/num_buckets`` quantiles.  Ties at a
    boundary go to the lower bucket; every index lands in exactly one
    bucket.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise QueryError("values must be a non-empty 1-D array")
    num_buckets = ensure_positive_int(num_buckets, "num_buckets")
    order = np.argsort(values, kind="stable")
    return [np.sort(chunk) for chunk in np.array_split(order, num_buckets)]
