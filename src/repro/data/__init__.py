"""Data substrate: attributes, hierarchies, schemas, tables, generators."""

from repro.data.attributes import Attribute, NominalAttribute, OrdinalAttribute
from repro.data.census import BRAZIL, US, CensusSpec, census_schema, generate_census_table
from repro.data.frequency import FrequencyMatrix
from repro.data.hierarchy import (
    Hierarchy,
    Node,
    balanced_hierarchy,
    flat_hierarchy,
    hierarchy_from_spec,
    two_level_hierarchy,
)
from repro.data.loaders import load_table_csv, save_table_csv
from repro.data.schema import Schema
from repro.data.synthetic import domain_size_for_cells, generate_uniform_table, timing_schema
from repro.data.table import Table

__all__ = [
    "Attribute",
    "OrdinalAttribute",
    "NominalAttribute",
    "Hierarchy",
    "Node",
    "flat_hierarchy",
    "two_level_hierarchy",
    "balanced_hierarchy",
    "hierarchy_from_spec",
    "Schema",
    "Table",
    "FrequencyMatrix",
    "load_table_csv",
    "save_table_csv",
    "CensusSpec",
    "BRAZIL",
    "US",
    "census_schema",
    "generate_census_table",
    "timing_schema",
    "generate_uniform_table",
    "domain_size_for_cells",
]
