"""Hierarchies over nominal attribute domains.

A nominal attribute (paper §II-A) carries a rooted tree whose leaves are
the attribute's domain values and whose internal nodes summarize the
leaves below them (Figure 1 of the paper shows a country hierarchy).
Range-count predicates on a nominal attribute select either a single leaf
or all leaves under one internal node, which is the structure both the
nominal wavelet transform (§V) and query evaluation exploit.

Design notes
------------
* Leaves are numbered in depth-first order, so the leaves under any node
  form a contiguous interval ``[leaf_start, leaf_end)``.  This is exactly
  the "imposed total order" of §V-A: it lets nominal predicates be
  evaluated as interval sums over the frequency matrix, and it lets the
  plain Haar transform be applied to nominal data as the paper's strawman
  alternative.
* Nodes are also numbered in *level order* (root = 0, then level 2 left to
  right, ...).  The nominal wavelet transform produces one coefficient per
  hierarchy node in this order, with the base coefficient (root) first —
  matching the coefficient layout §VI-A requires for the multi-dimensional
  transform.  Within the level order, children of the same parent are
  contiguous, which makes sibling groups (mean subtraction, §V-B) simple
  slices.
* The nominal weight function ``W_Nom(c) = f/(2f-2)`` is undefined when a
  parent has fanout 1, so construction rejects internal nodes with fewer
  than two children (:class:`repro.errors.HierarchyError`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import HierarchyError
from repro.utils.validation import ensure_positive_int

__all__ = [
    "Node",
    "Hierarchy",
    "balanced_hierarchy",
    "flat_hierarchy",
    "two_level_hierarchy",
    "hierarchy_from_spec",
]


@dataclass
class Node:
    """One node of a hierarchy, used only while *building* a hierarchy.

    After :class:`Hierarchy` is constructed the tree is stored in flat
    arrays for speed; ``Node`` objects remain available through
    :meth:`Hierarchy.node_label` and friends.
    """

    label: str
    children: list["Node"] = field(default_factory=list)

    def add(self, label: str) -> "Node":
        """Append a child with ``label`` and return it (builder helper)."""
        child = Node(label)
        self.children.append(child)
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Hierarchy:
    """An immutable, validated hierarchy stored in flat numpy arrays.

    Parameters
    ----------
    root:
        Root :class:`Node` of the tree.  Every internal node must have at
        least two children; leaves must be at least one.

    Attributes (all read-only)
    --------------------------
    num_leaves:
        Number of leaves — the nominal domain size ``|A|``.
    num_nodes:
        Total node count — the number of nominal wavelet coefficients the
        transform emits for this hierarchy (the transform is
        over-complete; §V-A).
    height:
        Number of levels, counting both root and leaf levels.  This is the
        ``h`` in the paper's ``O(h^2/eps^2)`` bound; Table III reports it
        in parentheses.
    """

    def __init__(self, root: Node):
        if root.is_leaf:
            # A single-value domain: the hierarchy is one leaf that is its
            # own root.  Permitted (height 1) but rarely useful.
            pass
        self._root = root
        self._build_arrays(root)

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    def _build_arrays(self, root: Node) -> None:
        # Level-order traversal assigning node ids; children of one parent
        # receive consecutive ids.
        nodes: list[Node] = [root]
        parent = [-1]
        level = [1]
        frontier = [(root, 0)]
        while frontier:
            next_frontier = []
            for node, node_id in frontier:
                if node.children and len(node.children) < 2:
                    raise HierarchyError(
                        f"internal node {node.label!r} has fanout "
                        f"{len(node.children)}; the nominal wavelet weight "
                        "f/(2f-2) requires fanout >= 2"
                    )
                for child in node.children:
                    child_id = len(nodes)
                    nodes.append(child)
                    parent.append(node_id)
                    level.append(level[node_id] + 1)
                    next_frontier.append((child, child_id))
            frontier = next_frontier

        n = len(nodes)
        self._labels = [node.label for node in nodes]
        self._parent = np.asarray(parent, dtype=np.int64)
        self._level = np.asarray(level, dtype=np.int64)
        self._fanout = np.zeros(n, dtype=np.int64)
        for node_id, node in enumerate(nodes):
            self._fanout[node_id] = len(node.children)

        # children_start/children_end: the contiguous id range of each
        # node's children in level order.
        self._children_start = np.full(n, -1, dtype=np.int64)
        self._children_end = np.full(n, -1, dtype=np.int64)
        for child_id in range(1, n):
            p = self._parent[child_id]
            if self._children_start[p] == -1:
                self._children_start[p] = child_id
            self._children_end[p] = child_id + 1

        # Depth-first leaf numbering -> contiguous leaf intervals per node.
        self._leaf_start = np.zeros(n, dtype=np.int64)
        self._leaf_end = np.zeros(n, dtype=np.int64)
        self._leaf_ids: list[int] = []  # node id of each leaf, in DFS order

        # Iterative DFS assigning leaf intervals.  We need node ids, so map
        # each Node object to its id first.
        id_of = {id(node): node_id for node_id, node in enumerate(nodes)}
        counter = 0
        stack = [(root, False)]
        order: list[int] = []
        while stack:
            node, processed = stack.pop()
            node_id = id_of[id(node)]
            if processed:
                self._leaf_end[node_id] = counter
                continue
            self._leaf_start[node_id] = counter
            if node.is_leaf:
                self._leaf_ids.append(node_id)
                counter += 1
                self._leaf_end[node_id] = counter
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
            order.append(node_id)

        # leaf_start for internal nodes was set before children ran; fix by
        # recomputing: leaf_start(node) = leaf_start(first child) etc.  The
        # DFS above already guarantees this because children were visited
        # after the parent's leaf_start was recorded at the current counter.
        self._leaf_index_of_node = np.full(n, -1, dtype=np.int64)
        for leaf_index, node_id in enumerate(self._leaf_ids):
            self._leaf_index_of_node[node_id] = leaf_index

        self._num_nodes = n
        self._num_leaves = len(self._leaf_ids)
        self._height = int(self._level.max())

        # Level slices: nodes of level k occupy a contiguous id range.
        self._level_start = np.zeros(self._height + 2, dtype=np.int64)
        for lvl in range(1, self._height + 2):
            self._level_start[lvl] = int(np.searchsorted(self._level, lvl))
        # _level_start[h+1] == n sentinel
        self._level_start[self._height + 1] = n

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return self._num_leaves

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_internal_nodes(self) -> int:
        """Nodes with children; the over-completeness overhead of §V-A."""
        return int(np.count_nonzero(self._fanout > 0))

    @property
    def height(self) -> int:
        return self._height

    @property
    def root_id(self) -> int:
        return 0

    def __len__(self) -> int:
        return self._num_nodes

    def __repr__(self) -> str:
        return (
            f"Hierarchy(leaves={self.num_leaves}, nodes={self.num_nodes}, "
            f"height={self.height})"
        )

    # ------------------------------------------------------------------
    # Node accessors (all by level-order node id)
    # ------------------------------------------------------------------
    def node_label(self, node_id: int) -> str:
        """Human-readable label of a node (by level-order id)."""
        return self._labels[node_id]

    def parent(self, node_id: int) -> int:
        """Parent id, or -1 for the root."""
        return int(self._parent[node_id])

    def fanout(self, node_id: int) -> int:
        """Number of children (0 for leaves)."""
        return int(self._fanout[node_id])

    def level(self, node_id: int) -> int:
        """Level of the node; the root is level 1."""
        return int(self._level[node_id])

    def is_leaf(self, node_id: int) -> bool:
        """True if the node has no children."""
        return self._fanout[node_id] == 0

    def children(self, node_id: int) -> range:
        """Ids of the node's children (contiguous in level order)."""
        start = int(self._children_start[node_id])
        if start == -1:
            return range(0)
        return range(start, int(self._children_end[node_id]))

    def leaf_interval(self, node_id: int) -> tuple[int, int]:
        """Half-open interval of DFS leaf indexes under ``node_id``.

        This is the contiguity property of §V-A: every hierarchy node maps
        to a contiguous range in the imposed leaf order, so nominal
        predicates are interval predicates.
        """
        return int(self._leaf_start[node_id]), int(self._leaf_end[node_id])

    def leaf_index(self, node_id: int) -> int:
        """DFS position of a leaf node; raises for internal nodes."""
        index = int(self._leaf_index_of_node[node_id])
        if index < 0:
            raise HierarchyError(f"node {node_id} ({self.node_label(node_id)!r}) is not a leaf")
        return index

    def leaf_labels(self) -> list[str]:
        """Labels of all leaves in DFS (domain) order."""
        return [self._labels[node_id] for node_id in self._leaf_ids]

    def node_id_of_leaf(self, leaf_index: int) -> int:
        """Inverse of :meth:`leaf_index`."""
        if not 0 <= leaf_index < self._num_leaves:
            raise HierarchyError(f"leaf index {leaf_index} out of range [0, {self._num_leaves})")
        return int(self._leaf_ids[leaf_index])

    def find(self, label: str) -> int:
        """Return the id of the first node whose label equals ``label``."""
        try:
            return self._labels.index(label)
        except ValueError:
            raise HierarchyError(f"no node labelled {label!r}") from None

    def level_slice(self, level: int) -> slice:
        """Slice of node ids at ``level`` (root = level 1)."""
        if not 1 <= level <= self._height:
            raise HierarchyError(f"level {level} out of range [1, {self._height}]")
        return slice(int(self._level_start[level]), int(self._level_start[level + 1]))

    def non_root_node_ids(self) -> np.ndarray:
        """Ids of every node except the root (valid query predicates)."""
        return np.arange(1, self._num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Flat-array views used by the nominal transform (read-only)
    # ------------------------------------------------------------------
    @property
    def parent_array(self) -> np.ndarray:
        """Level-order parent ids (root has -1); do not mutate."""
        return self._parent

    @property
    def fanout_array(self) -> np.ndarray:
        return self._fanout

    @property
    def level_array(self) -> np.ndarray:
        return self._level

    @property
    def leaf_start_array(self) -> np.ndarray:
        return self._leaf_start

    @property
    def leaf_end_array(self) -> np.ndarray:
        return self._leaf_end

    def sibling_groups(self) -> list[slice]:
        """Contiguous id slices, one per sibling group (children of one node).

        Sibling groups drive the mean-subtraction refinement of §V-B.
        """
        groups = []
        for node_id in range(self._num_nodes):
            start = int(self._children_start[node_id])
            if start != -1:
                groups.append(slice(start, int(self._children_end[node_id])))
        return groups

    # ------------------------------------------------------------------
    # Structural checks used by tests
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check structural invariants; raises :class:`HierarchyError`.

        Cheap enough to call from tests and from mechanisms that receive a
        hierarchy from untrusted construction paths.
        """
        if self._leaf_start[0] != 0 or self._leaf_end[0] != self._num_leaves:
            raise HierarchyError("root leaf interval does not cover the domain")
        widths = self._leaf_end - self._leaf_start
        if np.any(widths <= 0):
            raise HierarchyError("a node has an empty leaf interval")
        internal = self._fanout > 0
        if np.any(self._fanout[internal] < 2):
            raise HierarchyError("an internal node has fanout < 2")
        for group in self.sibling_groups():
            parent_ids = set(self._parent[group].tolist())
            if len(parent_ids) != 1:
                raise HierarchyError("sibling group spans multiple parents")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def flat_hierarchy(labels_or_size, *, root_label: str = "Any") -> Hierarchy:
    """A two-level hierarchy: one root over all domain values.

    This is the minimal legal hierarchy (height 2) and matches how the
    paper models attributes like Gender ("2 (2)" in Table III).

    Parameters
    ----------
    labels_or_size:
        Either an iterable of leaf labels or an integer domain size
        (labels become ``"v0"``, ``"v1"``, ...).
    """
    if isinstance(labels_or_size, int):
        labels = [f"v{i}" for i in range(ensure_positive_int(labels_or_size, "size"))]
    else:
        labels = [str(label) for label in labels_or_size]
    if len(labels) < 2:
        raise HierarchyError("a flat hierarchy needs at least two leaves")
    root = Node(root_label)
    for label in labels:
        root.add(label)
    return Hierarchy(root)


def two_level_hierarchy(group_sizes, *, root_label: str = "Any", group_prefix: str = "g") -> Hierarchy:
    """A three-level hierarchy: root -> groups -> leaves.

    ``group_sizes[k]`` leaves are placed under group ``k``.  This is the
    shape of the paper's Occupation attribute ("512 (3)": 3 levels) and of
    the synthetic timing datasets (§VII-B: ``sqrt(|A|)`` level-2 nodes).
    """
    sizes = [ensure_positive_int(s, "group size") for s in group_sizes]
    if len(sizes) < 2:
        raise HierarchyError("a two-level hierarchy needs at least two groups")
    if any(s < 2 for s in sizes):
        raise HierarchyError("every group needs at least two leaves (fanout >= 2)")
    root = Node(root_label)
    leaf_counter = 0
    for k, size in enumerate(sizes):
        group = root.add(f"{group_prefix}{k}")
        for _ in range(size):
            group.add(f"v{leaf_counter}")
            leaf_counter += 1
    return Hierarchy(root)


def balanced_hierarchy(num_leaves: int, fanout: int, *, root_label: str = "Any") -> Hierarchy:
    """A balanced hierarchy with the given fanout over ``num_leaves`` leaves.

    ``num_leaves`` must be a power of ``fanout``.  Useful for property
    tests and for the §V-D style analyses where ``h = log_f(m) + 1``.
    """
    num_leaves = ensure_positive_int(num_leaves, "num_leaves")
    fanout = ensure_positive_int(fanout, "fanout")
    if fanout < 2:
        raise HierarchyError("fanout must be >= 2")
    height = 1
    size = 1
    while size < num_leaves:
        size *= fanout
        height += 1
    if size != num_leaves:
        raise HierarchyError(f"num_leaves={num_leaves} is not a power of fanout={fanout}")

    counter = 0

    def build(node: Node, remaining_levels: int) -> None:
        nonlocal counter
        if remaining_levels == 0:
            return
        for _ in range(fanout):
            if remaining_levels == 1:
                node.add(f"v{counter}")
                counter += 1
            else:
                build(node.add(f"n{counter}-{remaining_levels}"), remaining_levels - 1)

    root = Node(root_label)
    if num_leaves == 1:
        root.label = "v0"
        return Hierarchy(root)
    build(root, height - 1)
    hierarchy = Hierarchy(root)
    assert hierarchy.num_leaves == num_leaves
    return hierarchy


def hierarchy_from_spec(spec, *, root_label: str = "Any") -> Hierarchy:
    """Build a hierarchy from a nested mapping/sequence specification.

    ``spec`` is either a sequence of leaf labels, or a mapping from
    internal-node label to a child spec::

        hierarchy_from_spec({
            "North America": ["USA", "Canada"],
            "South America": ["Brazil", "Argentina"],
        })

    reproduces the paper's Figure 1 country hierarchy.  Strings and
    numbers are leaves; mappings are internal nodes; sequences group
    siblings.  Useful for loading hierarchies from JSON/YAML configs.
    """

    def attach(node: Node, child_spec) -> None:
        if isinstance(child_spec, dict):
            for label, grandchildren in child_spec.items():
                attach(node.add(str(label)), grandchildren)
        elif isinstance(child_spec, (list, tuple)):
            for item in child_spec:
                if isinstance(item, (dict, list, tuple)):
                    raise HierarchyError(
                        "nested containers inside a sequence are ambiguous; "
                        "use a mapping {label: children} for internal nodes"
                    )
                node.add(str(item))
        else:
            raise HierarchyError(
                f"spec nodes must be mappings or sequences of labels, got "
                f"{type(child_spec).__name__}"
            )

    root = Node(root_label)
    attach(root, spec)
    return Hierarchy(root)


def uniform_depth_height_bound(num_leaves: int) -> int:
    """The paper's ``h <= log2 m`` remark (§V), made precise.

    For hierarchies whose leaves all sit at the bottom level and whose
    internal nodes have fanout >= 2, each level at least doubles the node
    count, so a hierarchy over ``m`` leaves has at most
    ``1 + floor(log2 m)`` levels.  (Hierarchies with leaves at mixed
    depths — which this library also supports — can be deeper.)
    """
    num_leaves = ensure_positive_int(num_leaves, "num_leaves")
    if num_leaves == 1:
        return 1
    return 1 + int(math.floor(math.log2(num_leaves)))
