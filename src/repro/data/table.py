"""Relational tables of coded tuples, and the table -> frequency-matrix map.

A :class:`Table` stores ``n`` rows as an ``(n, d)`` integer array of coded
attribute values.  ``Table.frequency_matrix()`` is the first step of every
mechanism in the paper: build the d-dimensional contingency table ``M``
(the lowest level of the data cube, §II-B) in ``O(n + m)`` time.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.frequency import FrequencyMatrix
from repro.data.schema import Schema
from repro.errors import SchemaError

__all__ = ["Table"]


class Table:
    """``n`` coded tuples over a :class:`~repro.data.schema.Schema`.

    Parameters
    ----------
    schema:
        The table's schema.
    rows:
        Anything convertible to an ``(n, d)`` integer array.  Values must
        lie in ``[0, |A_i|)`` per attribute.  An empty table (n = 0) is
        legal; its frequency matrix is all zeros.
    """

    def __init__(self, schema: Schema, rows):
        if not isinstance(schema, Schema):
            raise SchemaError("schema must be a Schema instance")
        self._schema = schema
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            rows = rows.reshape(0, schema.dimensions)
        if rows.ndim != 2 or rows.shape[1] != schema.dimensions:
            raise SchemaError(
                f"rows must have shape (n, {schema.dimensions}), got {rows.shape}"
            )
        shape = np.asarray(schema.shape, dtype=np.int64)
        if rows.size and (rows.min() < 0 or np.any(rows >= shape[np.newaxis, :])):
            raise SchemaError("a row value is outside its attribute domain")
        self._rows = rows
        self._rows.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, schema: Schema, columns: Iterable[np.ndarray]) -> "Table":
        """Build a table from per-attribute columns of equal length."""
        cols = [np.asarray(c, dtype=np.int64) for c in columns]
        if len(cols) != schema.dimensions:
            raise SchemaError(
                f"expected {schema.dimensions} columns, got {len(cols)}"
            )
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        rows = np.stack(cols, axis=1) if cols[0].size else np.empty((0, len(cols)), np.int64)
        return cls(schema, rows)

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> np.ndarray:
        """Read-only ``(n, d)`` view of the coded tuples."""
        return self._rows

    @property
    def num_rows(self) -> int:
        return int(self._rows.shape[0])

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table(n={self.num_rows}, schema={self._schema!r})"

    # ------------------------------------------------------------------
    def frequency_matrix(self) -> FrequencyMatrix:
        """The d-dimensional contingency table ``M`` of this table.

        Runs in ``O(n + m)``: rows are collapsed to flat cell indexes with
        :func:`numpy.ravel_multi_index` and counted with ``bincount``.
        """
        shape = self._schema.shape
        if self.num_rows == 0:
            counts = np.zeros(shape, dtype=np.float64)
            return FrequencyMatrix(self._schema, counts)
        flat = np.ravel_multi_index(tuple(self._rows[:, i] for i in range(len(shape))), shape)
        counts = np.bincount(flat, minlength=int(np.prod(shape))).astype(np.float64)
        return FrequencyMatrix(self._schema, counts.reshape(shape))

    def replace_row(self, index: int, new_row) -> "Table":
        """Return a copy with row ``index`` replaced (a *neighbouring* table).

        Differential privacy (Definition 1) quantifies over pairs of
        tables differing in one tuple; tests use this to build such pairs.
        """
        if not 0 <= index < self.num_rows:
            raise SchemaError(f"row index {index} out of range [0, {self.num_rows})")
        new_row = np.asarray(new_row, dtype=np.int64)
        self._schema.validate_coordinates(new_row)
        rows = self._rows.copy()
        rows[index] = new_row
        return Table(self._schema, rows)
