"""Frequency matrices: the d-dimensional contingency table ``M`` (§II-B).

A :class:`FrequencyMatrix` couples a numpy array with its schema so
mechanisms, transforms, and query evaluation agree on which axis is which
attribute.  Noisy outputs (``M*``) are also frequency matrices — entries
are floats and may be negative, exactly as the paper's mechanisms leave
them.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Schema
from repro.errors import SchemaError

__all__ = ["FrequencyMatrix"]


class FrequencyMatrix:
    """A schema-tagged d-dimensional array of (possibly noisy) counts."""

    def __init__(self, schema: Schema, values: np.ndarray):
        if not isinstance(schema, Schema):
            raise SchemaError("schema must be a Schema instance")
        values = np.asarray(values, dtype=np.float64)
        if values.shape != schema.shape:
            raise SchemaError(
                f"matrix shape {values.shape} does not match schema shape {schema.shape}"
            )
        self._schema = schema
        self._values = values

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, schema: Schema) -> "FrequencyMatrix":
        return cls(schema, np.zeros(schema.shape, dtype=np.float64))

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> np.ndarray:
        """The underlying array (mutable; treat as owned by this object)."""
        return self._values

    @property
    def shape(self) -> tuple[int, ...]:
        return self._values.shape

    @property
    def num_cells(self) -> int:
        return int(self._values.size)

    @property
    def total(self) -> float:
        """Sum of all entries (= n for an exact matrix)."""
        return float(self._values.sum())

    # ------------------------------------------------------------------
    def copy(self) -> "FrequencyMatrix":
        """Deep copy (values included)."""
        return FrequencyMatrix(self._schema, self._values.copy())

    def perturb_cell(self, coordinates, delta: float) -> "FrequencyMatrix":
        """Return a copy with one cell offset by ``delta``.

        Generalized sensitivity (Definition 3) quantifies over matrices at
        L1 distance ``|delta|``; the sensitivity probe in
        :mod:`repro.core.sensitivity` is built on this.
        """
        self._schema.validate_coordinates(coordinates)
        out = self.copy()
        out._values[tuple(int(c) for c in coordinates)] += delta
        return out

    def l1_distance(self, other: "FrequencyMatrix") -> float:
        """``||M - M'||_1`` as in Definition 3."""
        if other.shape != self.shape:
            raise SchemaError("cannot compare matrices of different shapes")
        return float(np.abs(self._values - other._values).sum())

    def marginal(self, attribute_names) -> np.ndarray:
        """Project the matrix onto a subset of attributes (a *marginal*).

        Sums out every dimension not named.  The result's axes follow the
        schema order of the named attributes.  Marginals are the objects
        Barak et al.'s mechanism releases (paper §VIII), and they double
        as a consistency check for noisy matrices.
        """
        names = list(attribute_names)
        keep = self._schema.axes_of(names)
        if len(set(keep)) != len(keep):
            raise SchemaError(f"duplicate attribute names: {names}")
        drop = tuple(i for i in range(self._values.ndim) if i not in keep)
        summed = self._values.sum(axis=drop) if drop else self._values.copy()
        # Reorder axes to match the order the caller asked for.
        kept_sorted = sorted(keep)
        order = [kept_sorted.index(axis) for axis in keep]
        return np.transpose(summed, order)

    def range_sum(self, box) -> float:
        """Sum the entries inside an axis-aligned half-open box.

        ``box`` is a sequence of ``(lo, hi)`` pairs, one per dimension.
        This is the brute-force evaluator; bulk workloads should use
        :class:`repro.queries.oracle.RangeSumOracle` instead.
        """
        if len(box) != self._values.ndim:
            raise SchemaError(f"box must have {self._values.ndim} ranges, got {len(box)}")
        slices = []
        for (lo, hi), size in zip(box, self.shape):
            lo, hi = int(lo), int(hi)
            if not (0 <= lo <= hi <= size):
                raise SchemaError(f"range [{lo}, {hi}) out of bounds for axis of size {size}")
            slices.append(slice(lo, hi))
        return float(self._values[tuple(slices)].sum())

    def __repr__(self) -> str:
        return f"FrequencyMatrix(shape={self.shape}, total={self.total:.6g})"
