"""Synthetic stand-ins for the paper's IPUMS census datasets (§VII-A).

The paper evaluates on IPUMS extracts for Brazil (10M tuples) and the US
(8M tuples), with the schema of Table III:

========== ======== ======== ============ ========
attribute  Brazil   US       kind         height
========== ======== ======== ============ ========
Age        101      96       ordinal      —
Gender     2        2        nominal      2
Occupation 512      511      nominal      3
Income     1001     1020     ordinal      —
========== ======== ======== ============ ========

**Substitution** (see DESIGN.md): IPUMS microdata is not redistributable
and unavailable offline, so this module *generates* census-like tables
with exactly those domain sizes and hierarchy heights, plus skewed and
correlated marginals (ages piled in working years, Zipf-like occupations,
log-normal income increasing with age).  The mechanisms' error behaviour
depends on (epsilon, domain sizes, hierarchy heights, query coverage and
selectivity) — not on the identity of the records — so this preserves the
shape of Figures 6–9.

A ``scale`` knob shrinks the large domains and the row count so the full
benchmark harness fits laptop memory: the paper's frequency matrices have
``m > 10^8`` cells.  ``scale=1.0`` reproduces Table III exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import flat_hierarchy, two_level_hierarchy
from repro.data.schema import Schema
from repro.data.table import Table
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_in_range, ensure_positive_int

__all__ = ["CensusSpec", "BRAZIL", "US", "census_schema", "generate_census_table"]


@dataclass(frozen=True)
class CensusSpec:
    """Domain sizes for one census dataset (one row of Table III)."""

    name: str
    age_size: int
    gender_size: int
    occupation_size: int
    income_size: int
    default_rows: int

    def scaled(self, scale: float) -> "CensusSpec":
        """Shrink the two large domains and the row count by ``scale``.

        Age and Gender are kept at full size (they are small already, and
        they are the paper's ``SA`` attributes, so their size drives the
        Privelet+/Basic contrast).  Occupation group structure stays a
        3-level hierarchy.
        """
        scale = ensure_in_range(scale, "scale", 1e-4, 1.0)
        if scale == 1.0:
            return self

        def shrink(size: int, minimum: int) -> int:
            return max(minimum, int(round(size * scale)))

        return CensusSpec(
            name=f"{self.name}-scaled",
            age_size=self.age_size,
            gender_size=self.gender_size,
            occupation_size=shrink(self.occupation_size, 32),
            income_size=shrink(self.income_size, 64),
            default_rows=shrink(self.default_rows, 10_000),
        )


#: Table III, Brazil row: Age 101, Gender 2 (h=2), Occupation 512 (h=3),
#: Income 1001; 10 million tuples.
BRAZIL = CensusSpec("brazil", 101, 2, 512, 1001, 10_000_000)

#: Table III, US row: Age 96, Gender 2 (h=2), Occupation 511 (h=3),
#: Income 1020; 8 million tuples.
US = CensusSpec("us", 96, 2, 511, 1020, 8_000_000)


def _occupation_hierarchy(size: int):
    """A 3-level occupation hierarchy (Table III reports height 3).

    Leaves are split into roughly ``sqrt(size)`` groups, mirroring the
    shape used for the synthetic datasets in §VII-B.  Group sizes are as
    even as possible while keeping every fanout >= 2.
    """
    num_groups = max(2, int(round(math.sqrt(size))))
    # Every group needs >= 2 leaves.
    num_groups = min(num_groups, size // 2)
    base = size // num_groups
    remainder = size - base * num_groups
    sizes = [base + 1] * remainder + [base] * (num_groups - remainder)
    return two_level_hierarchy(sizes, root_label="AnyOccupation", group_prefix="occ-group")


def census_schema(spec: CensusSpec) -> Schema:
    """Build the 4-attribute census schema for ``spec``.

    Attribute order matches Table III: Age, Gender, Occupation, Income.
    """
    return Schema(
        [
            OrdinalAttribute("Age", spec.age_size),
            NominalAttribute("Gender", flat_hierarchy(["female", "male"][: spec.gender_size]
                                                      if spec.gender_size == 2
                                                      else spec.gender_size,
                                                      root_label="AnyGender")),
            NominalAttribute("Occupation", _occupation_hierarchy(spec.occupation_size)),
            OrdinalAttribute("Income", spec.income_size),
        ]
    )


def generate_census_table(
    spec: CensusSpec,
    num_rows: int | None = None,
    *,
    seed=None,
) -> Table:
    """Generate a census-like table with skewed, correlated attributes.

    Marginals (all truncated/clipped to the coded domains):

    * **Age** — mixture of a child/young component and a working-age
      component, thinning out at high ages.
    * **Gender** — near-uniform Bernoulli (p = 0.51).
    * **Occupation** — Zipf-like over leaves (a few common occupations,
      a long tail), with a weak dependence on gender.
    * **Income** — log-normal, location increasing with age until ~55 and
      scaled by the occupation's group index (correlation between the two
      large-domain attributes, which makes low-selectivity queries
      non-trivial, as in real census data).
    """
    num_rows = ensure_positive_int(
        num_rows if num_rows is not None else spec.default_rows, "num_rows"
    )
    rng = as_generator(seed)
    schema = census_schema(spec)

    # Age: 35% young (triangular around 12), 65% working (normal around 38).
    young = rng.triangular(0, 12, 30, size=num_rows)
    working = rng.normal(38, 14, size=num_rows)
    pick_young = rng.random(num_rows) < 0.35
    age = np.where(pick_young, young, working)
    age = np.clip(np.rint(age), 0, spec.age_size - 1).astype(np.int64)

    gender = (rng.random(num_rows) < 0.51).astype(np.int64)
    if spec.gender_size > 2:  # only if a caller builds a wider spec
        gender = rng.integers(0, spec.gender_size, size=num_rows)

    # Occupation: Zipf-like weights over leaves, tilted by gender.
    ranks = np.arange(1, spec.occupation_size + 1, dtype=np.float64)
    weights = 1.0 / ranks**1.1
    weights /= weights.sum()
    occupation = rng.choice(spec.occupation_size, size=num_rows, p=weights)
    # Gender tilt: shift a random subset of one gender's draws to the
    # mirrored rank, creating occupation/gender correlation.
    tilt = (gender == 1) & (rng.random(num_rows) < 0.3)
    occupation = np.where(tilt, spec.occupation_size - 1 - occupation, occupation)

    # Income: log-normal with age- and occupation-dependent location.
    age_effect = 0.03 * np.minimum(age, 55)
    occ_effect = 0.15 * (occupation.astype(np.float64) / max(1, spec.occupation_size - 1))
    location = 3.0 + age_effect + occ_effect
    income = rng.lognormal(mean=location, sigma=0.6, size=num_rows)
    income = np.clip(np.rint(income), 0, spec.income_size - 1).astype(np.int64)

    rows = np.stack([age, gender, occupation.astype(np.int64), income], axis=1)
    return Table(schema, rows)
