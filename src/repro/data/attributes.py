"""Attribute model: ordinal and nominal attributes (paper §II-A).

An attribute is a named, discrete domain.  Ordinal attributes carry a
total order (domain values are the integers ``0 .. size-1``, standing for
whatever coded values the original table used).  Nominal attributes carry
a :class:`~repro.data.hierarchy.Hierarchy`; their domain values are leaf
indexes in the hierarchy's DFS leaf order.

The functions ``P(A)`` and ``H(A)`` of paper §VI-C — the per-attribute
factors of the generalized sensitivity and of the noise-variance bound —
are methods here because they depend only on the attribute:

* ordinal:  ``P(A) = 1 + log2 |A|``,  ``H(A) = (2 + log2 |A|) / 2``
  (computed on the power-of-two *padded* domain size, which is what the
  Haar transform actually releases);
* nominal:  ``P(A) = h``,  ``H(A) = 4``  where ``h`` is the hierarchy
  height.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.data.hierarchy import Hierarchy, flat_hierarchy
from repro.errors import SchemaError
from repro.utils.validation import ensure_positive_int, next_power_of_two

__all__ = ["Attribute", "OrdinalAttribute", "NominalAttribute"]


class Attribute:
    """Base class for schema attributes.  Use the concrete subclasses."""

    def __init__(self, name: str, size: int):
        if not name:
            raise SchemaError("attribute name must be non-empty")
        self._name = str(name)
        self._size = ensure_positive_int(size, f"domain size of {name!r}")

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Domain size ``|A|``."""
        return self._size

    @property
    def is_ordinal(self) -> bool:
        raise NotImplementedError

    @property
    def is_nominal(self) -> bool:
        return not self.is_ordinal

    # -- paper §VI-C per-attribute factors --------------------------------
    def sensitivity_factor(self) -> float:
        """``P(A)``: this attribute's factor of the generalized sensitivity."""
        raise NotImplementedError

    def variance_factor(self) -> float:
        """``H(A)``: this attribute's factor of the noise-variance bound."""
        raise NotImplementedError

    def favours_direct_release(self) -> bool:
        """True if Basic beats Privelet on this attribute (§VI-D rule).

        Privelet+ puts an attribute into ``SA`` (no wavelet transform on
        that dimension) exactly when ``|A| <= P(A)^2 * H(A)``.
        """
        return self.size <= self.sensitivity_factor() ** 2 * self.variance_factor()

    def __repr__(self) -> str:
        kind = "ordinal" if self.is_ordinal else "nominal"
        return f"{type(self).__name__}({self._name!r}, size={self._size}) [{kind}]"

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self._name == other._name
            and self._size == other._size
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._name, self._size))


class OrdinalAttribute(Attribute):
    """A discrete, totally ordered attribute (e.g. Age, Income).

    Values are coded as ``0 .. size-1``.  ``labels`` optionally names the
    coded values for presentation.
    """

    def __init__(self, name: str, size: int, labels: Optional[list[str]] = None):
        super().__init__(name, size)
        if labels is not None:
            labels = [str(label) for label in labels]
            if len(labels) != size:
                raise SchemaError(
                    f"{name!r}: got {len(labels)} labels for domain size {size}"
                )
        self._labels = labels

    @property
    def is_ordinal(self) -> bool:
        return True

    @property
    def padded_size(self) -> int:
        """Domain size after power-of-two padding for the Haar transform."""
        return next_power_of_two(self._size)

    @property
    def labels(self) -> Optional[list[str]]:
        return list(self._labels) if self._labels is not None else None

    def sensitivity_factor(self) -> float:
        return 1.0 + math.log2(self.padded_size)

    def variance_factor(self) -> float:
        return (2.0 + math.log2(self.padded_size)) / 2.0


class NominalAttribute(Attribute):
    """A discrete, unordered attribute with an associated hierarchy.

    The domain is the hierarchy's leaves, coded by DFS leaf index; the
    coding order is exactly the "imposed total order" of §V-A.
    """

    def __init__(self, name: str, hierarchy: Hierarchy):
        if not isinstance(hierarchy, Hierarchy):
            raise SchemaError(f"{name!r}: hierarchy must be a Hierarchy instance")
        super().__init__(name, hierarchy.num_leaves)
        self._hierarchy = hierarchy

    @classmethod
    def with_flat_hierarchy(cls, name: str, size: int) -> "NominalAttribute":
        """Convenience: nominal attribute with a 2-level (root-only) hierarchy."""
        return cls(name, flat_hierarchy(size))

    @property
    def is_ordinal(self) -> bool:
        return False

    @property
    def hierarchy(self) -> Hierarchy:
        return self._hierarchy

    @property
    def height(self) -> int:
        """Hierarchy height ``h`` (root and leaf levels both counted)."""
        return self._hierarchy.height

    def sensitivity_factor(self) -> float:
        return float(self._hierarchy.height)

    def variance_factor(self) -> float:
        return 4.0

    def labels(self) -> list[str]:
        """Leaf labels in DFS (domain) order."""
        return self._hierarchy.leaf_labels()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NominalAttribute)
            and self._name == other._name
            and self._size == other._size
            and self._hierarchy.num_nodes == other._hierarchy.num_nodes
            and self._hierarchy.height == other._hierarchy.height
        )

    def __hash__(self) -> int:
        return hash((self._name, self._size, self._hierarchy.num_nodes, self._hierarchy.height))
