"""Uniform synthetic datasets for the timing experiments (paper §VII-B).

The paper's scalability study generates tables with:

* two ordinal and two nominal attributes,
* per-attribute domain size ``m**(1/4)`` (so the frequency matrix has
  ``m`` cells),
* each nominal hierarchy has three levels with ``sqrt(|A|)`` level-2
  nodes,
* tuple values uniform over the attribute domains.

Figure 10 fixes ``m = 2**24`` and sweeps ``n`` from 1M to 5M; Figure 11
fixes ``n = 5 * 10**6`` and sweeps ``m`` from ``2**22`` to ``2**26``.
The benchmark harness uses smaller defaults (see DESIGN.md) but this
module supports the full sizes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.hierarchy import two_level_hierarchy
from repro.data.schema import Schema
from repro.data.table import Table
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_positive_int

__all__ = ["timing_schema", "generate_uniform_table", "domain_size_for_cells"]


def domain_size_for_cells(num_cells: int, dimensions: int = 4) -> int:
    """Per-attribute domain size so the matrix has ~``num_cells`` cells.

    Rounds ``num_cells ** (1/dimensions)`` down to the nearest even
    integer >= 4 so the 3-level hierarchies stay legal.
    """
    num_cells = ensure_positive_int(num_cells, "num_cells")
    size = int(round(num_cells ** (1.0 / dimensions)))
    size -= size % 2
    return max(4, size)


def _three_level_hierarchy(size: int):
    """3-level hierarchy with ``sqrt(size)`` middle nodes (§VII-B shape)."""
    num_groups = max(2, int(round(math.sqrt(size))))
    num_groups = min(num_groups, size // 2)
    base = size // num_groups
    remainder = size - base * num_groups
    sizes = [base + 1] * remainder + [base] * (num_groups - remainder)
    return two_level_hierarchy(sizes)


def timing_schema(attribute_size: int) -> Schema:
    """Two ordinal + two nominal attributes, all with domain ``attribute_size``."""
    attribute_size = ensure_positive_int(attribute_size, "attribute_size")
    if attribute_size < 4:
        raise ValueError("attribute_size must be >= 4 for a legal 3-level hierarchy")
    return Schema(
        [
            OrdinalAttribute("O1", attribute_size),
            OrdinalAttribute("O2", attribute_size),
            NominalAttribute("N1", _three_level_hierarchy(attribute_size)),
            NominalAttribute("N2", _three_level_hierarchy(attribute_size)),
        ]
    )


def generate_uniform_table(num_rows: int, num_cells: int, *, seed=None) -> Table:
    """Generate the §VII-B uniform table with ~``num_cells`` matrix cells."""
    num_rows = ensure_positive_int(num_rows, "num_rows")
    schema = timing_schema(domain_size_for_cells(num_cells))
    rng = as_generator(seed)
    columns = [rng.integers(0, attr.size, size=num_rows) for attr in schema]
    rows = np.stack(columns, axis=1)
    return Table(schema, rows)
