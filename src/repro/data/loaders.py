"""CSV ingestion and export for coded tables.

Real deployments receive microdata as delimited text, not integer
arrays.  :func:`load_table_csv` reads a CSV whose header names the
schema's attributes (any column order; extra columns ignored) and codes
each value:

* **ordinal** attributes accept integer codes directly, or — when the
  attribute was declared with ``labels`` — the label strings;
* **nominal** attributes accept leaf labels from the hierarchy (coded to
  the DFS leaf index) or integer codes.

:func:`save_table_csv` is the inverse.  Both stream row-by-row via the
stdlib ``csv`` module, so memory stays O(1) in the file size beyond the
output table itself.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.data.attributes import NominalAttribute, OrdinalAttribute
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import SchemaError

__all__ = ["load_table_csv", "save_table_csv"]


def _decoder_for(attribute):
    """Return a str -> code function for one attribute."""
    if isinstance(attribute, OrdinalAttribute):
        labels = attribute.labels
        label_map = {label: i for i, label in enumerate(labels)} if labels else {}

        def decode_ordinal(text: str) -> int:
            if text in label_map:
                return label_map[text]
            try:
                code = int(text)
            except ValueError:
                raise SchemaError(
                    f"{attribute.name!r}: cannot decode value {text!r}"
                ) from None
            if not 0 <= code < attribute.size:
                raise SchemaError(
                    f"{attribute.name!r}: code {code} out of range [0, {attribute.size})"
                )
            return code

        return decode_ordinal

    if isinstance(attribute, NominalAttribute):
        label_map = {label: i for i, label in enumerate(attribute.hierarchy.leaf_labels())}

        def decode_nominal(text: str) -> int:
            if text in label_map:
                return label_map[text]
            try:
                code = int(text)
            except ValueError:
                raise SchemaError(
                    f"{attribute.name!r}: {text!r} is not a hierarchy leaf label"
                ) from None
            if not 0 <= code < attribute.size:
                raise SchemaError(
                    f"{attribute.name!r}: code {code} out of range [0, {attribute.size})"
                )
            return code

        return decode_nominal

    raise SchemaError(f"unsupported attribute type {type(attribute).__name__}")


def load_table_csv(path, schema: Schema) -> Table:
    """Read a coded table from a CSV file with a header row."""
    decoders = [_decoder_for(attribute) for attribute in schema]
    rows = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SchemaError(f"{path}: empty file (no header row)")
        missing = [name for name in schema.names if name not in reader.fieldnames]
        if missing:
            raise SchemaError(f"{path}: missing columns {missing}")
        for line_number, record in enumerate(reader, start=2):
            try:
                rows.append(
                    [
                        decode(record[name])
                        for name, decode in zip(schema.names, decoders)
                    ]
                )
            except SchemaError as exc:
                raise SchemaError(f"{path}:{line_number}: {exc}") from exc
    data = np.asarray(rows, dtype=np.int64) if rows else np.empty((0, len(schema)), np.int64)
    return Table(schema, data)


def save_table_csv(path, table: Table, *, use_labels: bool = True) -> None:
    """Write a table to CSV; labels are used where available."""
    schema = table.schema
    encoders = []
    for attribute in schema:
        if use_labels and isinstance(attribute, NominalAttribute):
            labels = attribute.hierarchy.leaf_labels()
            encoders.append(lambda code, labels=labels: labels[code])
        elif (
            use_labels
            and isinstance(attribute, OrdinalAttribute)
            and attribute.labels is not None
        ):
            labels = attribute.labels
            encoders.append(lambda code, labels=labels: labels[code])
        else:
            encoders.append(str)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.names)
        for row in table.rows:
            writer.writerow([encode(int(code)) for encode, code in zip(encoders, row)])
