"""Relational schema: an ordered list of attributes (paper §II-A).

The schema fixes the shape of the frequency matrix: dimension ``i`` is
indexed by the coded domain of attribute ``i`` and the matrix has
``m = prod |A_i|`` cells.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.data.attributes import Attribute
from repro.errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An immutable sequence of uniquely named attributes."""

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = list(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        for attr in attrs:
            if not isinstance(attr, Attribute):
                raise SchemaError(f"not an Attribute: {attr!r}")
        names = [attr.name for attr in attrs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._attributes = tuple(attrs)
        self._index = {attr.name: i for i, attr in enumerate(attrs)}

    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Frequency-matrix shape: per-attribute domain sizes."""
        return tuple(attr.size for attr in self._attributes)

    @property
    def num_cells(self) -> int:
        """``m``: total number of frequency-matrix entries."""
        return math.prod(self.shape)

    @property
    def dimensions(self) -> int:
        """``d``: number of attributes."""
        return len(self._attributes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, key) -> Attribute:
        if isinstance(key, str):
            return self._attributes[self.index_of(key)]
        return self._attributes[key]

    def __contains__(self, name) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{a.name}[{a.size}{'o' if a.is_ordinal else 'n'}]" for a in self._attributes
        )
        return f"Schema({parts})"

    def index_of(self, name: str) -> int:
        """Dimension index of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}; have {list(self.names)}") from None

    def axes_of(self, names: Iterable[str]) -> tuple[int, ...]:
        """Dimension indexes for several attribute names (order preserved)."""
        return tuple(self.index_of(name) for name in names)

    def validate_coordinates(self, coordinates) -> None:
        """Check one coded tuple against the domain bounds."""
        if len(coordinates) != self.dimensions:
            raise SchemaError(
                f"expected {self.dimensions} coordinates, got {len(coordinates)}"
            )
        for value, attr in zip(coordinates, self._attributes):
            if not 0 <= int(value) < attr.size:
                raise SchemaError(
                    f"value {value} out of range [0, {attr.size}) for {attr.name!r}"
                )
