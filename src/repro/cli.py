"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``account``
    Print the privacy/utility accounting (P/H factors, SA rule, λ and
    variance bounds across ε) for a census schema.
``figure``
    Regenerate one of the paper's figures at laptop scale and print the
    series (``fig6``/``fig7``/``fig8``/``fig9``/``fig10``/``fig11``).
``publish``
    Generate a synthetic census table, publish it with a chosen
    mechanism, and write the result archive (``.npz``) for later
    querying with :func:`repro.io.load_result`.  ``--shard-by ATTR``
    partitions the table along an ordinal attribute, publishes every
    shard independently at full ε (DP parallel composition) on a thread
    pool, and writes a v3 sharded archive — ``query`` and ``serve``
    consume it unchanged.
``ingest``
    Stage synthetic census rows for a **stream** archive's open epoch
    (creating the v4 archive, with its publishing configuration, on
    first use).  Staged rows live in a ``<archive>.staging.npz`` sidecar
    — they are the curator's raw private input and are only published
    when the epoch closes.
``advance-epoch``
    Close one or more epochs of a stream archive: the staged rows
    publish at the full ε (DP parallel composition over disjoint
    epochs), completed dyadic tree nodes merge, and the archive gains
    the new node members plus a fresh manifest — a running ``serve``
    over the same file picks the new epochs up automatically.
``query``
    Answer random range-count queries on a published archive through the
    batch query engine, printing each estimate with its exact noise std
    and confidence interval.  ``--time-range LO HI`` restricts a stream
    archive to an epoch window (answered from its ``O(log T)`` dyadic
    cover).  ``--columnar`` drives the same workload through
    :meth:`~repro.queries.engine.QueryEngine.answer_columnar` — raw box
    arrays in, no per-query Python — and prints identical answers.
``serve``
    Stand up a :class:`~repro.serving.server.ReleaseServer` over one or
    more archives and drive it through a port-less JSONL loop: one JSON
    request per stdin line, one JSON response per stdout line (answers
    and errors both — a malformed request gets a structured error
    response, never a traceback).  Archives load lazily on first touch.
    ``op=query_batch`` lines carry a whole columnar batch (parallel
    lo/hi arrays per attribute) and get one array-valued response line.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import queue
import signal
import sys
import threading
from collections import deque

import numpy as np

from repro.core.accountant import PrivacyAccount
from repro.core.basic import BasicMechanism
from repro.core.privelet import PriveletMechanism
from repro.core.privelet_plus import PriveletPlusMechanism, select_sa
from repro.core.release import convert_result
from repro.core.sharding import _publish_sharded
from repro.data.census import BRAZIL, US, census_schema, generate_census_table
from repro.experiments.config import AccuracyConfig, TimingConfig
from repro.experiments.figures import (
    run_relative_error_vs_selectivity,
    run_square_error_vs_coverage,
    run_time_vs_m,
    run_time_vs_n,
)
from repro.data.table import Table
from repro.errors import ReproError
from repro.experiments.reporting import format_accuracy_run, format_timing_run
from repro.io import load_result, read_stream_header, save_result
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload
from repro.serving.network import NetworkServer
from repro.serving.requests import ErrorResponse, QueryBatchRequest, QueryRequest
from repro.serving.server import ReleaseServer
from repro.streaming import StreamingPublisher

__all__ = ["main", "build_parser"]

_SPECS = {"brazil": BRAZIL, "us": US}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privelet (ICDE 2010) reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    account = commands.add_parser("account", help="print privacy/utility accounting")
    account.add_argument("--dataset", choices=sorted(_SPECS), default="brazil")
    account.add_argument("--scale", type=float, default=1.0)
    account.add_argument("--epsilon", type=float, default=1.0)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name", choices=["fig6", "fig7", "fig8", "fig9", "fig10", "fig11"]
    )
    figure.add_argument("--scale", type=float, default=0.1)
    figure.add_argument("--rows", type=int, default=50_000)
    figure.add_argument("--queries", type=int, default=5_000)
    figure.add_argument("--seed", type=int, default=20100301)
    figure.add_argument(
        "--representation",
        choices=["dense", "coefficients"],
        default="dense",
        help="release representation the accuracy runs publish/serve with",
    )

    publish = commands.add_parser("publish", help="publish a synthetic census table")
    publish.add_argument("output", help="output .npz path")
    publish.add_argument("--dataset", choices=sorted(_SPECS), default="brazil")
    publish.add_argument("--scale", type=float, default=0.1)
    publish.add_argument("--rows", type=int, default=100_000)
    publish.add_argument("--epsilon", type=float, default=1.0)
    publish.add_argument(
        "--mechanism", choices=["basic", "privelet", "privelet+"], default="privelet+"
    )
    publish.add_argument("--seed", type=int, default=0)
    publish.add_argument(
        "--representation",
        choices=["dense", "coefficients"],
        default="dense",
        help="dense writes M* (v1 archive); coefficients never inverts "
        "the transform and writes the noisy coefficients (v2 archive)",
    )
    publish.add_argument(
        "--shard-by",
        default=None,
        metavar="ATTR",
        help="partition the table along this ordinal attribute and "
        "publish each shard independently at full epsilon (DP parallel "
        "composition); writes a v3 sharded archive, shards publish on a "
        "thread pool",
    )
    publish.add_argument(
        "--shards",
        type=int,
        default=4,
        help="number of balanced shards when --shard-by is given",
    )

    ingest = commands.add_parser(
        "ingest",
        help="stage synthetic rows for a stream archive's open epoch",
    )
    ingest.add_argument("archive", help="v4 stream .npz path (created if missing)")
    ingest.add_argument("--dataset", choices=sorted(_SPECS), default="brazil")
    ingest.add_argument("--scale", type=float, default=0.1)
    ingest.add_argument("--rows", type=int, default=10_000)
    ingest.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="per-epoch privacy budget (default 1.0; fixed at archive "
        "creation — passing a different value later is an error)",
    )
    ingest.add_argument(
        "--mechanism",
        choices=["basic", "privelet", "privelet+"],
        default=None,
        help="publishing mechanism (default privelet+; fixed at archive "
        "creation — passing a different one later is an error)",
    )
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--epoch-length",
        type=int,
        default=None,
        help="timestamp units per epoch (default 1; fixed at archive "
        "creation — passing a different value later is an error)",
    )

    advance = commands.add_parser(
        "advance-epoch",
        help="close epoch(s) of a stream archive, publishing staged rows",
    )
    advance.add_argument("archive", help="v4 stream .npz written by `ingest`")
    advance.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="how many epochs to close (beyond the first, noise-only empties)",
    )

    query = commands.add_parser(
        "query", help="answer queries on a published archive with intervals"
    )
    query.add_argument("archive", help="result .npz written by `publish`")
    query.add_argument("--queries", type=int, default=10)
    query.add_argument("--confidence", type=float, default=0.95)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--sa",
        nargs="*",
        default=None,
        help="override the SA set when the archive lacks mechanism details",
    )
    query.add_argument(
        "--representation",
        choices=["archive", "dense", "coefficients"],
        default="archive",
        help="serving backend: 'archive' keeps the stored representation, "
        "the others convert before answering",
    )
    query.add_argument(
        "--time-range",
        type=int,
        nargs=2,
        default=None,
        metavar=("LO", "HI"),
        help="epoch window [LO, HI) for stream archives (answered from "
        "the window's O(log T) dyadic node cover)",
    )
    query.add_argument(
        "--columnar",
        action="store_true",
        help="answer through the columnar fast path (raw box arrays "
        "into answer_columnar); answers are bit-for-bit identical",
    )
    query.add_argument(
        "--planned",
        action="store_true",
        help="answer through the cost-based batch planner (implies the "
        "columnar path): duplicate boxes collapse to one engine pass "
        "and hot marginal shapes may be served from materialized "
        "views; answers stay bit-for-bit identical",
    )

    serve = commands.add_parser(
        "serve",
        help="serve many release archives through a JSONL request loop",
    )
    serve.add_argument(
        "archives",
        nargs="+",
        help=".npz archives to register; the release name is the file "
        "stem, or use NAME=PATH to override",
    )
    serve.add_argument(
        "--stdin-jsonl",
        action="store_true",
        help="read JSONL requests from stdin and write JSONL responses "
        "to stdout (the default transport)",
    )
    serve.add_argument(
        "--port-less",
        action="store_true",
        help="serve without opening a socket (stdio transport; the "
        "default unless --tcp is given)",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="serve the same JSONL protocol over TCP through a "
        "multi-process shared-memory fleet (port 0 picks a free port; "
        "the resolved address is printed on stderr as "
        "'listening on HOST:PORT')",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes behind --tcp (each maps the published "
        "releases from shared memory, zero copy)",
    )
    serve.add_argument("--max-batch", type=int, default=256)
    serve.add_argument(
        "--linger-ms",
        type=float,
        default=2.0,
        help="upper bound of the adaptive micro-batching window",
    )
    serve.add_argument(
        "--profile-cache",
        type=int,
        default=4096,
        help="per-axis LRU bound of each release's adjoint-profile cache",
    )
    serve.add_argument(
        "--representation",
        choices=["archive", "dense", "coefficients"],
        default="archive",
        help="serving backend: 'archive' keeps each archive's stored "
        "representation, the others convert on first touch",
    )
    serve.add_argument(
        "--sa",
        nargs="*",
        default=None,
        help="override the SA set for archives lacking mechanism details "
        "(conflicts with a v2 archive's own SA set are reported as "
        "structured bad-request responses)",
    )
    serve.add_argument(
        "--no-planner",
        action="store_true",
        help="disable the per-plan batch planner (columnar batches go "
        "straight to the engine; answers are identical either way)",
    )

    return parser


def _cmd_account(args) -> int:
    schema = census_schema(_SPECS[args.dataset].scaled(args.scale))
    print(f"schema: {schema!r}  (m = {schema.num_cells:,})")
    print(f"{'attribute':<12}{'|A|':>8}{'P(A)':>8}{'H(A)':>8}{'in SA?':>8}")
    for attr in schema:
        print(
            f"{attr.name:<12}{attr.size:>8}{attr.sensitivity_factor():>8.1f}"
            f"{attr.variance_factor():>8.1f}"
            f"{'yes' if attr.favours_direct_release() else 'no':>8}"
        )
    sa = select_sa(schema)
    for label, sa_set in (
        ("Basic", tuple(schema.names)),
        ("Privelet", ()),
        (f"Privelet+ SA={set(sa) or '{}'}", sa),
    ):
        account = PrivacyAccount(schema, sa_set)
        print(
            f"{label:<28} lambda={account.lambda_for_epsilon(args.epsilon):>8.1f}  "
            f"variance bound={account.variance_bound(args.epsilon):>12.4g}"
        )
    return 0


def _cmd_figure(args) -> int:
    if args.name in {"fig10", "fig11"}:
        config = TimingConfig()
        run = run_time_vs_n(config) if args.name == "fig10" else run_time_vs_m(config)
        print(format_timing_run(run))
        return 0
    config = AccuracyConfig(
        scale=args.scale,
        num_rows=args.rows,
        num_queries=args.queries,
        seed=args.seed,
    )
    spec = BRAZIL if args.name in {"fig6", "fig8"} else US
    driver = (
        run_square_error_vs_coverage
        if args.name in {"fig6", "fig7"}
        else run_relative_error_vs_selectivity
    )
    print(format_accuracy_run(driver(spec, config, representation=args.representation)))
    return 0


def _cmd_publish(args) -> int:
    spec = _SPECS[args.dataset].scaled(args.scale)
    table = generate_census_table(spec, args.rows, seed=args.seed)
    mechanism = _mechanism_for(args.mechanism)
    if args.shard_by is not None:
        result = _publish_sharded(
            table,
            mechanism,
            args.epsilon,
            shard_by=args.shard_by,
            shards=args.shards,
            seed=args.seed + 1,
            materialize=args.representation == "dense",
        )
    else:
        result = mechanism.publish(
            table,
            args.epsilon,
            seed=args.seed + 1,
            materialize=args.representation == "dense",
        )
    save_result(args.output, result)
    sharding_note = (
        f", {result.release.num_shards} shards by {args.shard_by!r}"
        if args.shard_by is not None
        else ""
    )
    print(
        f"published {table.num_rows} rows with {mechanism.name} at "
        f"epsilon={args.epsilon}: lambda={result.noise_magnitude:.2f}, "
        f"variance bound={result.variance_bound:.4g}, "
        f"representation={result.representation}{sharding_note}"
    )
    print(f"wrote {args.output}")
    return 0


def _staging_path(archive: str) -> str:
    """The sidecar file holding rows staged for the open epoch."""
    return archive + ".staging.npz"


def _mechanism_for(name: str):
    return {
        "basic": BasicMechanism(),
        "privelet": PriveletMechanism(),
        "privelet+": PriveletPlusMechanism(sa_names="auto"),
    }[name]


def _check_ingest_flags_against_header(args, header: dict, schema) -> None:
    """Reject flags that conflict with an existing archive's recorded config.

    ε, the mechanism, and the epoch length are fixed when the archive is
    created; silently ignoring a different value later — especially a
    different ε — would let the curator believe they changed the privacy
    budget when they did not.  The dataset/scale must reproduce the
    recorded schema, or the staged rows could not publish at all.
    """
    if args.epsilon is not None and float(args.epsilon) != float(header["epsilon"]):
        raise ReproError(
            f"--epsilon {args.epsilon} conflicts with the archive's "
            f"epsilon={header['epsilon']} (fixed at creation)"
        )
    if (
        args.mechanism is not None
        and _mechanism_for(args.mechanism).name != header.get("mechanism_name")
    ):
        raise ReproError(
            f"--mechanism {args.mechanism} conflicts with the archive's "
            f"mechanism {header.get('mechanism_name')!r} (fixed at creation)"
        )
    if args.epoch_length is not None and int(args.epoch_length) != int(
        header.get("epoch_length", 1)
    ):
        raise ReproError(
            f"--epoch-length {args.epoch_length} conflicts with the "
            f"archive's epoch length {header.get('epoch_length', 1)} "
            "(fixed at creation)"
        )
    from repro.io import schema_from_dict

    archived = schema_from_dict(header["schema"])
    if archived.names != schema.names or archived.shape != schema.shape:
        raise ReproError(
            f"--dataset/--scale produce schema {schema!r} but the archive "
            f"records {archived!r}; rows staged under a different schema "
            "could not publish"
        )


def _cmd_ingest(args) -> int:
    if args.epoch_length is not None and args.epoch_length < 1:
        raise ReproError(
            f"--epoch-length must be at least 1, got {args.epoch_length}"
        )
    spec = _SPECS[args.dataset].scaled(args.scale)
    schema = census_schema(spec)
    if not os.path.exists(args.archive):
        StreamingPublisher(
            schema,
            _mechanism_for(args.mechanism or "privelet+"),
            1.0 if args.epsilon is None else args.epsilon,
            epoch_length=1 if args.epoch_length is None else args.epoch_length,
            seed=args.seed,
            archive_path=args.archive,
        )
        print(f"created stream archive {args.archive}")
    else:
        # Fail fast on non-stream archives and on flags conflicting with
        # the configuration fixed at creation.
        header = read_stream_header(args.archive)
        _check_ingest_flags_against_header(args, header, schema)
    table = generate_census_table(spec, args.rows, seed=args.seed + 1)
    staging = _staging_path(args.archive)
    rows = table.rows
    if os.path.exists(staging):
        with np.load(staging) as staged:
            rows = np.concatenate([staged["rows"], rows], axis=0)
    # Write-temp-then-replace: the sidecar is the only copy of the
    # staged (unpublished) rows, so a crash mid-write must leave the
    # previous staging intact rather than a truncated file.  The
    # scratch name keeps the .npz suffix (savez would append one).
    scratch = args.archive + ".staging.tmp.npz"
    np.savez_compressed(scratch, rows=rows)
    os.replace(scratch, staging)
    print(
        f"staged {table.num_rows} rows ({rows.shape[0]} pending) for the "
        f"open epoch of {args.archive}"
    )
    return 0


def _cmd_advance_epoch(args) -> int:
    # Validate everything before touching the staging sidecar: it is
    # the curator's only copy of the pending rows, so it must survive
    # any failure that happens before those rows are published.
    if args.epochs < 1:
        raise ReproError(f"--epochs must be at least 1, got {args.epochs}")
    publisher = StreamingPublisher.open(args.archive)
    staging = _staging_path(args.archive)
    staged = os.path.exists(staging)
    if staged:
        with np.load(staging) as stash:
            rows = stash["rows"]
        publisher.ingest(Table(publisher.schema, rows))
    for index in range(args.epochs):
        epoch = publisher.current_epoch
        pending = publisher.pending_rows
        leaf = publisher.advance_epoch()
        if index == 0 and staged:
            # The staged rows are now published (and appended to the
            # archive); only then is dropping the sidecar safe.
            os.remove(staging)
        print(
            f"closed epoch {epoch}: published {pending} rows at "
            f"epsilon={leaf.epsilon} (lambda={leaf.noise_magnitude:.2f}, "
            f"{leaf.representation})"
        )
    release = publisher.release()
    print(
        f"stream now has {publisher.closed_epochs} epochs, "
        f"{release.num_nodes} tree nodes; wrote {args.archive}"
    )
    return 0


def _cmd_query(args) -> int:
    result = load_result(args.archive)
    sa_names = tuple(args.sa) if args.sa is not None else None
    if args.time_range is not None:
        window = getattr(result.release, "window", None)
        if window is None:
            raise ReproError(
                f"{args.archive} is not a stream archive; --time-range "
                "needs one (see the `ingest` command)"
            )
        lo, hi = args.time_range
        result = dataclasses.replace(result, release=window(lo, hi))
    if args.representation != "archive":
        result = convert_result(result, args.representation, sa_names=sa_names)
    engine = QueryEngine(result, sa_names=sa_names)
    queries = generate_workload(
        result.release.schema, args.queries, seed=args.seed
    )
    planner = None
    if args.columnar or args.planned:
        from repro.analysis.exact import query_boxes

        lows, highs = query_boxes(queries, result.release.schema.shape)
        if args.planned:
            from repro.planner import QueryPlanner

            planner = QueryPlanner(engine)
            batch = planner.answer_columnar(lows, highs, confidence=args.confidence)
        else:
            batch = engine.answer_columnar(lows, highs, confidence=args.confidence)
    else:
        batch = engine.answer_all_with_intervals(queries, confidence=args.confidence)
    if planner is not None:
        path_note = f", planned path ({planner.rows_deduped} row(s) deduplicated)"
    elif args.columnar:
        path_note = ", columnar path"
    else:
        path_note = ""
    print(
        f"{len(queries)} random range-count queries on {args.archive} "
        f"(epsilon={result.epsilon}, {100 * args.confidence:.0f}% intervals, "
        f"{result.representation} backend{path_note})"
    )
    print(f"{'estimate':>12}{'noise std':>12}{'lower':>12}{'upper':>12}  query")
    for query, answer in zip(queries, batch):
        print(
            f"{answer.estimate:>12.1f}{answer.noise_std:>12.2f}"
            f"{answer.lower:>12.1f}{answer.upper:>12.1f}  {query!r}"
        )
    print(f"mean noise std: {float(batch.noise_stds.mean()):.2f}")
    return 0


def _emit(stream, payload: dict) -> None:
    """Write one JSONL response line and flush (client may be pipelined)."""
    stream.write(json.dumps(payload) + "\n")
    stream.flush()


def _flush_pending(pending, stream, *, only_done: bool = False) -> None:
    """Emit responses in submission order (the wire never reorders).

    ``only_done=True`` emits just the already-completed prefix (used
    between submits so the loop keeps pipelining); the default drains
    everything, blocking on still-batching futures.
    """
    while pending and not (only_done and not pending[0][1].done()):
        request_id, future = pending.popleft()
        try:
            _emit(stream, future.result().to_dict())
        except Exception as exc:  # noqa: BLE001 - wire gets structured errors
            _emit(stream, ErrorResponse.from_exception(exc, request_id).to_dict())


def _serve_loop(server: ReleaseServer, lines, stream) -> int:
    """Drive the JSONL request/response loop until stdin closes.

    Every line produces exactly one response line, in request order.
    Input is consumed through a background reader thread so the loop
    never blocks in ``readline`` while holding finished futures: with
    responses outstanding it polls briefly and, once input goes idle,
    drains the pending queue — a strict request/response client (which
    sends nothing until it reads its answer) therefore always gets one.
    With nothing pending it blocks on input without polling.  Pipelined
    clients may still see responses lag their requests by up to the
    batching window; ``stats``/``list`` operations flush the pending
    queue first so their answers observe every earlier request.
    """
    feed: queue.Queue = queue.Queue()
    done = object()

    def read() -> None:
        for fed_line in lines:
            feed.put(fed_line)
        feed.put(done)

    threading.Thread(target=read, daemon=True, name="repro-serve-stdin").start()
    pending: deque = deque()
    served = 0
    while True:
        try:
            # Poll only while responses are outstanding; otherwise park.
            line = feed.get(timeout=0.01) if pending else feed.get()
        except queue.Empty:
            # Input idle with responses pending: resolve whatever the
            # batcher has finished (and block for the rest — the window
            # is milliseconds).
            _flush_pending(pending, stream)
            continue
        if line is done:
            break
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            _flush_pending(pending, stream)
            _emit(
                stream,
                ErrorResponse("bad-request", f"malformed JSON request: {exc}").to_dict(),
            )
            continue
        request_id = payload.get("id") if isinstance(payload, dict) else None
        op = payload.get("op", "query") if isinstance(payload, dict) else "query"
        if op == "stats":
            _flush_pending(pending, stream)
            _emit(
                stream,
                {"ok": True, "id": request_id, "stats": dataclasses.asdict(server.stats())},
            )
            continue
        if op == "list":
            _flush_pending(pending, stream)
            _emit(
                stream,
                {
                    "ok": True,
                    "id": request_id,
                    "releases": [server.describe(name) for name in server.names],
                },
            )
            continue
        if op not in ("query", "query_batch"):
            _flush_pending(pending, stream)
            _emit(
                stream,
                ErrorResponse("bad-request", f"unknown op {op!r}", request_id).to_dict(),
            )
            continue
        try:
            if op == "query_batch":
                request = QueryBatchRequest.from_dict(payload)
            else:
                request = QueryRequest.from_dict(payload)
            pending.append((request.request_id, server.submit(request)))
            served += 1
        except Exception as exc:  # noqa: BLE001 - wire gets structured errors
            _flush_pending(pending, stream)
            _emit(stream, ErrorResponse.from_exception(exc, request_id).to_dict())
            continue
        _flush_pending(pending, stream, only_done=True)
    _flush_pending(pending, stream)
    return served


def _parse_archive_spec(spec: str) -> tuple[str | None, str]:
    """Split a ``serve`` archive argument into ``(name, path)``.

    ``NAME=PATH`` overrides the default stem-derived name, but a spec
    that exists on disk as given, or whose prefix contains a path
    separator, is always a bare path — so archives whose *filenames*
    contain ``=`` (``eps=1.0.npz``) stay servable.
    """
    name, sep, path = spec.partition("=")
    if sep and name and os.sep not in name and not os.path.exists(spec):
        return name, path
    return None, spec


def _parse_tcp_spec(spec: str) -> tuple[str, int]:
    """Split ``--tcp HOST:PORT`` (empty host means loopback)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ReproError(
            f"--tcp expects HOST:PORT with an integer port, got {spec!r}"
        ) from None


def _serve_tcp(args) -> int:
    """Run the multi-process TCP fleet until SIGTERM/SIGINT, then drain."""
    host, port = _parse_tcp_spec(args.tcp)
    server = NetworkServer(
        host=host,
        port=port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_linger_seconds=args.linger_ms / 1000.0,
        profile_cache_entries=args.profile_cache,
        representation=None if args.representation == "archive" else args.representation,
        sa_names=tuple(args.sa) if args.sa is not None else None,
        planner=not args.no_planner,
    )
    for spec in args.archives:
        name, path = _parse_archive_spec(spec)
        server.register_archive(path, name=name)
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        bound_host, bound_port = server.start()
        # Parseable readiness line: supervisors (and the tests) wait for it.
        print(
            f"listening on {bound_host}:{bound_port} with {args.workers} "
            f"worker(s); releases {list(server.names)}",
            file=sys.stderr,
            flush=True,
        )
        stop.wait()
        try:
            stats = server.stats()
        except Exception:  # noqa: BLE001 - summary is best effort
            stats = None
        # SIGTERM contract: stop accepting, flush every response already
        # owed to connected clients, then stop the workers.
        server.close(drain=True)
    finally:
        server.close(drain=False)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if stats is not None:
        print(
            f"served {stats['requests']} request(s) across "
            f"{stats['workers']} worker(s); p99 latency "
            f"{stats['p99_latency_seconds'] * 1e3:.2f} ms, "
            f"{stats['frontend']['worker_respawns']} respawn(s)",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    if args.tcp is not None:
        return _serve_tcp(args)
    server = ReleaseServer(
        max_batch=args.max_batch,
        max_linger_seconds=args.linger_ms / 1000.0,
        profile_cache_entries=args.profile_cache,
        representation=None if args.representation == "archive" else args.representation,
        sa_names=tuple(args.sa) if args.sa is not None else None,
        planner=not args.no_planner,
    )
    with server:
        for spec in args.archives:
            name, path = _parse_archive_spec(spec)
            server.register_archive(path, name=name)
        print(
            f"serving {len(server.names)} release(s) {list(server.names)} "
            "over stdin JSONL (one request per line; op=stats / op=list "
            "for introspection)",
            file=sys.stderr,
        )
        served = _serve_loop(server, sys.stdin, sys.stdout)
        stats = server.stats()
    print(
        f"served {served} request(s); mean batch "
        f"{stats.mean_batch_size:.1f}, profile-cache hit rate "
        f"{stats.profile_cache_hit_rate:.0%}, p99 latency "
        f"{stats.p99_latency_seconds * 1e3:.2f} ms",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "account": _cmd_account,
        "figure": _cmd_figure,
        "publish": _cmd_publish,
        "ingest": _cmd_ingest,
        "advance-epoch": _cmd_advance_epoch,
        "query": _cmd_query,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
