"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``account``
    Print the privacy/utility accounting (P/H factors, SA rule, λ and
    variance bounds across ε) for a census schema.
``figure``
    Regenerate one of the paper's figures at laptop scale and print the
    series (``fig6``/``fig7``/``fig8``/``fig9``/``fig10``/``fig11``).
``publish``
    Generate a synthetic census table, publish it with a chosen
    mechanism, and write the result archive (``.npz``) for later
    querying with :func:`repro.io.load_result`.
``query``
    Answer random range-count queries on a published archive through the
    batch query engine, printing each estimate with its exact noise std
    and confidence interval.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.accountant import PrivacyAccount
from repro.core.basic import BasicMechanism
from repro.core.privelet import PriveletMechanism
from repro.core.privelet_plus import PriveletPlusMechanism, select_sa
from repro.core.release import convert_result
from repro.data.census import BRAZIL, US, census_schema, generate_census_table
from repro.experiments.config import AccuracyConfig, TimingConfig
from repro.experiments.figures import (
    run_relative_error_vs_selectivity,
    run_square_error_vs_coverage,
    run_time_vs_m,
    run_time_vs_n,
)
from repro.errors import ReproError
from repro.experiments.reporting import format_accuracy_run, format_timing_run
from repro.io import load_result, save_result
from repro.queries.engine import QueryEngine
from repro.queries.workload import generate_workload

__all__ = ["main", "build_parser"]

_SPECS = {"brazil": BRAZIL, "us": US}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privelet (ICDE 2010) reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    account = commands.add_parser("account", help="print privacy/utility accounting")
    account.add_argument("--dataset", choices=sorted(_SPECS), default="brazil")
    account.add_argument("--scale", type=float, default=1.0)
    account.add_argument("--epsilon", type=float, default=1.0)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "name", choices=["fig6", "fig7", "fig8", "fig9", "fig10", "fig11"]
    )
    figure.add_argument("--scale", type=float, default=0.1)
    figure.add_argument("--rows", type=int, default=50_000)
    figure.add_argument("--queries", type=int, default=5_000)
    figure.add_argument("--seed", type=int, default=20100301)
    figure.add_argument(
        "--representation",
        choices=["dense", "coefficients"],
        default="dense",
        help="release representation the accuracy runs publish/serve with",
    )

    publish = commands.add_parser("publish", help="publish a synthetic census table")
    publish.add_argument("output", help="output .npz path")
    publish.add_argument("--dataset", choices=sorted(_SPECS), default="brazil")
    publish.add_argument("--scale", type=float, default=0.1)
    publish.add_argument("--rows", type=int, default=100_000)
    publish.add_argument("--epsilon", type=float, default=1.0)
    publish.add_argument(
        "--mechanism", choices=["basic", "privelet", "privelet+"], default="privelet+"
    )
    publish.add_argument("--seed", type=int, default=0)
    publish.add_argument(
        "--representation",
        choices=["dense", "coefficients"],
        default="dense",
        help="dense writes M* (v1 archive); coefficients never inverts "
        "the transform and writes the noisy coefficients (v2 archive)",
    )

    query = commands.add_parser(
        "query", help="answer queries on a published archive with intervals"
    )
    query.add_argument("archive", help="result .npz written by `publish`")
    query.add_argument("--queries", type=int, default=10)
    query.add_argument("--confidence", type=float, default=0.95)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--sa",
        nargs="*",
        default=None,
        help="override the SA set when the archive lacks mechanism details",
    )
    query.add_argument(
        "--representation",
        choices=["archive", "dense", "coefficients"],
        default="archive",
        help="serving backend: 'archive' keeps the stored representation, "
        "the others convert before answering",
    )

    return parser


def _cmd_account(args) -> int:
    schema = census_schema(_SPECS[args.dataset].scaled(args.scale))
    print(f"schema: {schema!r}  (m = {schema.num_cells:,})")
    print(f"{'attribute':<12}{'|A|':>8}{'P(A)':>8}{'H(A)':>8}{'in SA?':>8}")
    for attr in schema:
        print(
            f"{attr.name:<12}{attr.size:>8}{attr.sensitivity_factor():>8.1f}"
            f"{attr.variance_factor():>8.1f}"
            f"{'yes' if attr.favours_direct_release() else 'no':>8}"
        )
    sa = select_sa(schema)
    for label, sa_set in (
        ("Basic", tuple(schema.names)),
        ("Privelet", ()),
        (f"Privelet+ SA={set(sa) or '{}'}", sa),
    ):
        account = PrivacyAccount(schema, sa_set)
        print(
            f"{label:<28} lambda={account.lambda_for_epsilon(args.epsilon):>8.1f}  "
            f"variance bound={account.variance_bound(args.epsilon):>12.4g}"
        )
    return 0


def _cmd_figure(args) -> int:
    if args.name in {"fig10", "fig11"}:
        config = TimingConfig()
        run = run_time_vs_n(config) if args.name == "fig10" else run_time_vs_m(config)
        print(format_timing_run(run))
        return 0
    config = AccuracyConfig(
        scale=args.scale,
        num_rows=args.rows,
        num_queries=args.queries,
        seed=args.seed,
    )
    spec = BRAZIL if args.name in {"fig6", "fig8"} else US
    driver = (
        run_square_error_vs_coverage
        if args.name in {"fig6", "fig7"}
        else run_relative_error_vs_selectivity
    )
    print(format_accuracy_run(driver(spec, config, representation=args.representation)))
    return 0


def _cmd_publish(args) -> int:
    spec = _SPECS[args.dataset].scaled(args.scale)
    table = generate_census_table(spec, args.rows, seed=args.seed)
    mechanism = {
        "basic": BasicMechanism(),
        "privelet": PriveletMechanism(),
        "privelet+": PriveletPlusMechanism(sa_names="auto"),
    }[args.mechanism]
    result = mechanism.publish(
        table,
        args.epsilon,
        seed=args.seed + 1,
        materialize=args.representation == "dense",
    )
    save_result(args.output, result)
    print(
        f"published {table.num_rows} rows with {mechanism.name} at "
        f"epsilon={args.epsilon}: lambda={result.noise_magnitude:.2f}, "
        f"variance bound={result.variance_bound:.4g}, "
        f"representation={result.representation}"
    )
    print(f"wrote {args.output}")
    return 0


def _cmd_query(args) -> int:
    result = load_result(args.archive)
    sa_names = tuple(args.sa) if args.sa is not None else None
    if args.representation != "archive":
        result = convert_result(result, args.representation, sa_names=sa_names)
    engine = QueryEngine(result, sa_names=sa_names)
    queries = generate_workload(
        result.release.schema, args.queries, seed=args.seed
    )
    batch = engine.answer_all_with_intervals(queries, confidence=args.confidence)
    print(
        f"{len(queries)} random range-count queries on {args.archive} "
        f"(epsilon={result.epsilon}, {100 * args.confidence:.0f}% intervals, "
        f"{result.representation} backend)"
    )
    print(f"{'estimate':>12}{'noise std':>12}{'lower':>12}{'upper':>12}  query")
    for query, answer in zip(queries, batch):
        print(
            f"{answer.estimate:>12.1f}{answer.noise_std:>12.2f}"
            f"{answer.lower:>12.1f}{answer.upper:>12.1f}  {query!r}"
        )
    print(f"mean noise std: {float(batch.noise_stds.mean()):.2f}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "account": _cmd_account,
        "figure": _cmd_figure,
        "publish": _cmd_publish,
        "query": _cmd_query,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
