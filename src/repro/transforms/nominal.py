"""The nominal wavelet transform (paper §V).

Given a one-dimensional frequency vector over a nominal domain and the
domain's hierarchy ``H``, the transform builds a decomposition tree ``R``
by attaching one value node under each leaf of ``H`` and emits **one
coefficient per node of H** (Figure 3):

* the **base coefficient** (root) is the *leaf-sum* of the whole vector;
* every other node's coefficient is its leaf-sum minus the **average
  leaf-sum of its parent's children**.

The transform is *over-complete*: it emits ``hierarchy.num_nodes``
coefficients for ``hierarchy.num_leaves`` inputs; the surplus equals the
number of internal nodes, which is small for practical hierarchies.

Reconstruction (Equation 5) recovers each entry from its ancestors'
coefficients by accumulating estimated leaf-sums down the tree::

    leafsum(root)  = c0
    leafsum(N)     = c(N) + leafsum(parent(N)) / fanout(parent(N))
    value(leaf L)  = leafsum(L)

Weights (§V-B)::

    W_Nom(base) = 1
    W_Nom(c)    = f / (2f - 2)     f = fanout of c's parent in R

Refinement — **mean subtraction** (§V-B): within every sibling group of
noisy coefficients, subtract the group mean.  True coefficients in a
sibling group sum to zero by construction, so this re-centres the noise
without consulting the data, and it is what drives the Lemma 5 variance
bound of ``< 4 sigma^2`` per query.

Coefficients are stored in the hierarchy's level order (root first;
children of one parent contiguous), satisfying the §VI-A layout rule and
making sibling groups plain slices.
"""

from __future__ import annotations

import numpy as np

from repro.data.hierarchy import Hierarchy
from repro.errors import TransformError
from repro.transforms.base import OneDimensionalTransform

__all__ = ["NominalTransform", "mean_subtract"]


def mean_subtract(coefficients: np.ndarray, groups: list[slice]) -> np.ndarray:
    """Subtract the per-sibling-group mean from ``coefficients`` (copy).

    Operates along axis 0; the base coefficient (never inside a group) is
    untouched.  This uses only the (noisy) coefficients, never the data —
    the property §III-A requires of a refinement step.
    """
    out = np.array(coefficients, dtype=np.float64, copy=True)
    for group in groups:
        out[group] -= out[group].mean(axis=0, keepdims=True)
    return out


class NominalTransform(OneDimensionalTransform):
    """Nominal wavelet transform bound to one hierarchy."""

    def __init__(self, hierarchy: Hierarchy):
        if not isinstance(hierarchy, Hierarchy):
            raise TransformError("hierarchy must be a Hierarchy instance")
        self.hierarchy = hierarchy
        self.input_length = hierarchy.num_leaves
        self.output_length = hierarchy.num_nodes
        self._groups = hierarchy.sibling_groups()

        # Precomputed flat arrays (level order).
        self._parent = hierarchy.parent_array
        self._fanout = hierarchy.fanout_array
        self._leaf_start = hierarchy.leaf_start_array
        self._leaf_end = hierarchy.leaf_end_array
        self._levels = [hierarchy.level_slice(lvl) for lvl in range(1, hierarchy.height + 1)]
        # Node ids of the hierarchy's leaves, ordered by DFS leaf index.
        self._leaf_node_ids = np.asarray(
            [hierarchy.node_id_of_leaf(i) for i in range(hierarchy.num_leaves)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    def leaf_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-node leaf-sums of ``values`` (axis 0 = leaf index)."""
        values = self._check_forward_input(values)
        prefix = np.concatenate(
            [np.zeros((1,) + values.shape[1:], dtype=np.float64), np.cumsum(values, axis=0)],
            axis=0,
        )
        return prefix[self._leaf_end] - prefix[self._leaf_start]

    def forward(self, values: np.ndarray) -> np.ndarray:
        sums = self.leaf_sums(values)
        coefficients = np.empty_like(sums)
        coefficients[0] = sums[0]  # base coefficient: total leaf-sum
        if self.output_length > 1:
            parents = self._parent[1:]
            # average leaf-sum of the parent's children = parent's
            # leaf-sum / parent's fanout
            coefficients[1:] = sums[1:] - sums[parents] / self._fanout[parents].reshape(
                (-1,) + (1,) * (sums.ndim - 1)
            )
        return coefficients

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        """Equation 5 reconstruction; ``refine=True`` mean-subtracts first."""
        coefficients = self._check_inverse_input(coefficients)
        if refine:
            coefficients = mean_subtract(coefficients, self._groups)
        leafsum = np.empty_like(coefficients)
        leafsum[0] = coefficients[0]
        for level_slice in self._levels[1:]:
            ids = np.arange(level_slice.start, level_slice.stop)
            parents = self._parent[ids]
            leafsum[ids] = coefficients[ids] + leafsum[parents] / self._fanout[
                parents
            ].reshape((-1,) + (1,) * (coefficients.ndim - 1))
        return leafsum[self._leaf_node_ids]

    def refine(self, coefficients: np.ndarray) -> np.ndarray:
        """The §V-B mean-subtraction step, exposed for tests and ablations."""
        return mean_subtract(self._check_inverse_input(coefficients), self._groups)

    # ------------------------------------------------------------------
    # Range adjoints (matrix-free, one O(num_nodes) pass per batch)
    # ------------------------------------------------------------------
    # The refined reconstruction is x = L M c with M the mean-subtraction
    # map and L the Equation-5 accumulation, so g = M^T L^T r.  The
    # coefficient of c(N) in a leaf value is the product of 1/fanout down
    # N's path, which gives (L^T r)(N) the bottom-up recurrence
    #
    #     t(leaf node) = r(leaf),   t(N) = sum_children t(C) / fanout(N)
    #
    # and M is symmetric per sibling group (I - J/f), so M^T = M is just
    # another mean subtraction.

    def adjoint_range(self, lo: int, hi: int) -> np.ndarray:
        """``R^T r`` including mean subtraction; no dense matrix built."""
        lo, hi = self._check_range(lo, hi)
        return self.adjoint_ranges([lo], [hi])[0]

    def adjoint_ranges(self, lows, highs) -> np.ndarray:
        """Batch adjoints, shape ``(n, num_nodes)``."""
        lows, highs = self._check_ranges(lows, highs)
        positions = np.arange(self.input_length, dtype=np.int64)
        indicator = (
            (positions[:, None] >= lows[None, :])
            & (positions[:, None] < highs[None, :])
        ).astype(np.float64)
        transported = np.zeros((self.output_length, lows.shape[0]), dtype=np.float64)
        transported[self._leaf_node_ids] = indicator
        # Deepest level first; level 1 is the root and receives only.
        for level_slice in reversed(self._levels[1:]):
            ids = np.arange(level_slice.start, level_slice.stop)
            parents = self._parent[ids]
            np.add.at(
                transported,
                parents,
                transported[ids] / self._fanout[parents][:, None],
            )
        return mean_subtract(transported, self._groups).T

    # ------------------------------------------------------------------
    def weight_vector(self) -> np.ndarray:
        weights = np.ones(self.output_length, dtype=np.float64)
        if self.output_length > 1:
            parents = self._parent[1:]
            fanouts = self._fanout[parents].astype(np.float64)
            weights[1:] = fanouts / (2.0 * fanouts - 2.0)
        return weights

    def sensitivity_factor(self) -> float:
        """Lemma 4: generalized sensitivity ``h`` w.r.t. ``W_Nom``."""
        return float(self.hierarchy.height)

    def variance_factor(self) -> float:
        """Lemma 5 / §VI-C: ``H(A) = 4``."""
        return 4.0

    def __repr__(self) -> str:
        return (
            f"NominalTransform(leaves={self.input_length}, "
            f"nodes={self.output_length}, height={self.hierarchy.height})"
        )
