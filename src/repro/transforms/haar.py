"""One-dimensional Haar wavelet transform (paper §IV).

The HWT builds a full binary *decomposition tree* over ``2**l`` values:
each internal node's coefficient is half the difference of its subtree
averages, plus one *base coefficient* equal to the overall mean
(Figure 2).  Any value is recovered from the base coefficient and its
``l`` ancestors (Equation 3), which is why a range-count answer touches
only ``O(log m)`` noisy coefficients.

Layout
------
Coefficients are stored in level order with the base coefficient first::

    [c0 (base), c1 (root, level 1), level-2 nodes left-to-right, ...]

This is the ordering §VI-A prescribes for the multi-dimensional
transform ("sorted based on a level-order traversal ... the base
coefficient always ranks first").  With ``2**l`` inputs there are
``2**l - 1`` internal nodes, so the output also has length ``2**l``.

Weights (§IV-B)::

    W_Haar(c0)          = m          (the padded length 2**l)
    W_Haar(c at level i) = 2**(l-i+1)

Inputs whose length is not a power of two are zero-padded on the right
(the paper's "dummy values"); :meth:`HaarTransform.inverse` truncates the
padding away again.

Implementation: an ``O(m)`` iterative pairwise average/difference scheme
operating along axis 0, vectorized over trailing axes.  A slow, explicitly
tree-based implementation lives in :mod:`repro.transforms.tree` and is
used by the test suite as an oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TransformError
from repro.transforms.base import OneDimensionalTransform
from repro.utils.validation import ensure_positive_int, next_power_of_two

__all__ = ["HaarTransform", "haar_forward", "haar_inverse", "haar_weight_vector"]


def haar_forward(values: np.ndarray) -> np.ndarray:
    """Haar-transform axis 0 (length must be a power of two).

    Returns coefficients in level order, base coefficient first.
    """
    values = np.asarray(values, dtype=np.float64)
    length = values.shape[0]
    if length & (length - 1):
        raise TransformError(f"haar_forward needs a power-of-two length, got {length}")
    current = values
    levels = []  # details from the lowest tree level up to the root
    while current.shape[0] > 1:
        even = current[0::2]
        odd = current[1::2]
        levels.append((even - odd) / 2.0)
        current = (even + odd) / 2.0
    # current[0] is the base coefficient (overall mean).
    return np.concatenate([current] + levels[::-1], axis=0)


def haar_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_forward` (length must be a power of two)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    length = coefficients.shape[0]
    if length & (length - 1):
        raise TransformError(f"haar_inverse needs a power-of-two length, got {length}")
    current = coefficients[0:1]
    offset = 1
    while offset < length:
        detail = coefficients[offset : offset + current.shape[0]]
        even = current + detail
        odd = current - detail
        rebuilt = np.empty((2 * current.shape[0],) + current.shape[1:], dtype=np.float64)
        rebuilt[0::2] = even
        rebuilt[1::2] = odd
        offset += current.shape[0]
        current = rebuilt
    return current


def haar_weight_vector(padded_length: int) -> np.ndarray:
    """``W_Haar`` aligned with the level-order coefficient layout.

    ``weights[0] = m`` for the base coefficient; a level-``i`` coefficient
    gets ``2**(l-i+1)``.  For ``m = 8``: ``[8, 8, 4, 4, 2, 2, 2, 2]``.
    """
    padded_length = ensure_positive_int(padded_length, "padded_length")
    if padded_length & (padded_length - 1):
        raise TransformError(f"padded_length must be a power of two, got {padded_length}")
    l = padded_length.bit_length() - 1
    weights = np.empty(padded_length, dtype=np.float64)
    weights[0] = float(padded_length)
    position = 1
    for level in range(1, l + 1):
        count = 1 << (level - 1)
        weights[position : position + count] = float(1 << (l - level + 1))
        position += count
    return weights


def _straddle_contribution(lows, highs, nodes, shift):
    """Adjoint entry of level nodes ``nodes`` (block width ``2**shift``).

    A leaf in the node's left half contributes ``+1`` to the node's
    coefficient in the reconstruction, a leaf in its right half ``-1``;
    the adjoint entry is therefore (left overlap) - (right overlap) with
    the query range.  Blocks fully inside or outside the range cancel to
    zero, which is why only the two boundary nodes per level survive.
    """
    half = 1 << (shift - 1)
    start = nodes << shift
    mid = start + half
    stop = mid + half
    left = np.maximum(0, np.minimum(highs, mid) - np.maximum(lows, start))
    right = np.maximum(0, np.minimum(highs, stop) - np.maximum(lows, mid))
    return (left - right).astype(np.float64)


class HaarTransform(OneDimensionalTransform):
    """HWT over an ordinal domain of any size, with power-of-two padding."""

    def __init__(self, domain_size: int):
        self.input_length = ensure_positive_int(domain_size, "domain_size")
        self.padded_length = next_power_of_two(self.input_length)
        self.output_length = self.padded_length
        self._levels = self.padded_length.bit_length() - 1  # l

    def forward(self, values: np.ndarray) -> np.ndarray:
        values = self._check_forward_input(values)
        if self.padded_length != self.input_length:
            pad = [(0, self.padded_length - self.input_length)]
            pad += [(0, 0)] * (values.ndim - 1)
            values = np.pad(values, pad)
        return haar_forward(values)

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        # The Haar instantiation has no refinement step; ``refine`` is
        # accepted for interface uniformity and ignored.
        coefficients = self._check_inverse_input(coefficients)
        values = haar_inverse(coefficients)
        return values[: self.input_length]

    def weight_vector(self) -> np.ndarray:
        return haar_weight_vector(self.padded_length)

    def sensitivity_factor(self) -> float:
        """Lemma 2: generalized sensitivity ``1 + log2 m`` w.r.t. ``W_Haar``."""
        return 1.0 + float(self._levels)

    def variance_factor(self) -> float:
        """Lemma 3 / §VI-C: ``H(A) = (2 + log2 m) / 2``."""
        return (2.0 + float(self._levels)) / 2.0

    # ------------------------------------------------------------------
    # Closed-form range adjoints (no dense reconstruction)
    # ------------------------------------------------------------------
    # A range indicator decomposes over the dyadic tree: a level-i node
    # whose leaf block lies fully inside (or outside) the range
    # contributes zero, so only the <= 2 nodes per level straddling the
    # range boundaries appear in g — O(log m) nonzeros.  Padding needs no
    # special handling: ranges live in [0, input_length), the padded
    # leaves [input_length, 2**l) are simply never covered.

    def adjoint_range(self, lo: int, hi: int) -> np.ndarray:
        """Closed-form ``R^T r`` with ``O(log m)`` nonzero entries."""
        lo, hi = self._check_range(lo, hi)
        return self.adjoint_ranges([lo], [hi])[0]

    def adjoint_ranges(self, lows, highs) -> np.ndarray:
        """Batch adjoints, shape ``(n, 2**l)``; ``O(n log m)`` fill work."""
        lows, highs = self._check_ranges(lows, highs)
        count = lows.shape[0]
        adjoints = np.zeros((count, self.output_length), dtype=np.float64)
        nonempty = highs > lows
        adjoints[:, 0] = highs - lows
        rows = np.arange(count)[nonempty]
        level_lows = lows[nonempty]
        level_highs = highs[nonempty]
        last = level_highs - 1
        for level in range(1, self._levels + 1):
            shift = self._levels - level + 1
            offset = 1 << (level - 1)
            node_lo = level_lows >> shift
            node_hi = last >> shift
            # When node_lo == node_hi the two writes coincide (same value).
            adjoints[rows, offset + node_lo] = _straddle_contribution(
                level_lows, level_highs, node_lo, shift
            )
            adjoints[rows, offset + node_hi] = _straddle_contribution(
                level_lows, level_highs, node_hi, shift
            )
        return adjoints

    def sparse_adjoint_ranges(self, lows, highs) -> tuple[np.ndarray, np.ndarray]:
        """Compact adjoints: ``k = 1 + 2 log2 m`` entries per range.

        Column 0 is the base coefficient; each level contributes its two
        boundary nodes (coinciding or zero-valued columns when the range
        straddles fewer nodes).  This is what lets a coefficient-space
        release answer a range with ``O(log m)`` gathered coefficients
        instead of reconstructing ``M*``.
        """
        lows, highs = self._check_ranges(lows, highs)
        count = lows.shape[0]
        support = 1 + 2 * self._levels
        indices = np.zeros((count, support), dtype=np.int64)
        values = np.zeros((count, support), dtype=np.float64)
        values[:, 0] = (highs - lows).astype(np.float64)
        nonempty = highs > lows
        # Clamped positions keep node ids in-bounds for empty ranges
        # (whose values are masked to zero anyway).
        safe_lows = np.minimum(lows, self.padded_length - 1)
        last = np.clip(highs - 1, 0, self.padded_length - 1)
        for level in range(1, self._levels + 1):
            shift = self._levels - level + 1
            offset = 1 << (level - 1)
            node_lo = safe_lows >> shift
            node_hi = last >> shift
            g_lo = _straddle_contribution(lows, highs, node_lo, shift)
            g_hi = np.where(
                node_hi != node_lo,
                _straddle_contribution(lows, highs, node_hi, shift),
                0.0,
            )
            column = 2 * level - 1
            indices[:, column] = offset + node_lo
            indices[:, column + 1] = offset + node_hi
            values[:, column] = np.where(nonempty, g_lo, 0.0)
            values[:, column + 1] = np.where(nonempty, g_hi, 0.0)
        return indices, values

    def range_profiles(self, lows, highs) -> np.ndarray:
        """``sum_j (g[j]/W[j])^2`` per range in ``O(log m)`` each.

        Never allocates a length-``m`` vector: only the boundary nodes of
        each level contribute, and their weights are ``2**(l-i+1)``.
        """
        lows, highs = self._check_ranges(lows, highs)
        widths = (highs - lows).astype(np.float64)
        profiles = (widths / float(self.padded_length)) ** 2
        nonempty = highs > lows
        last = np.maximum(highs - 1, lows)  # clamp keeps empty ranges in bounds
        for level in range(1, self._levels + 1):
            shift = self._levels - level + 1
            weight_sq = float(1 << shift) ** 2
            node_lo = lows >> shift
            node_hi = last >> shift
            g_lo = _straddle_contribution(lows, highs, node_lo, shift)
            g_hi = np.where(
                node_hi != node_lo,
                _straddle_contribution(lows, highs, node_hi, shift),
                0.0,
            )
            profiles += np.where(nonempty, (g_lo**2 + g_hi**2) / weight_sq, 0.0)
        return profiles

    def __repr__(self) -> str:
        return (
            f"HaarTransform(domain={self.input_length}, "
            f"padded={self.padded_length})"
        )
