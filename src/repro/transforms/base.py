"""Common interface for the one-dimensional transforms Privelet composes.

The multi-dimensional Haar-Nominal (HN) transform of paper §VI applies a
one-dimensional transform along each axis of the frequency matrix in
turn.  Each 1-D transform must provide, beyond forward/inverse:

* a **weight vector** aligned with its coefficient layout — the weight
  function ``W`` of §III-B, which scales per-coefficient Laplace noise
  (magnitude ``lambda / W(c)``);
* its **generalized sensitivity** with respect to those weights (the
  ``P(A)`` factor of Theorem 2);
* its **variance factor** — the per-dimension factor ``H(A)`` of the
  range-count noise-variance bound (Theorem 3).

All transforms operate along axis 0 of an ndarray and vectorize over any
trailing axes, which is what lets the HN transform process every row/
column/fiber of the matrix in one numpy call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OneDimensionalTransform", "IdentityTransform"]


class OneDimensionalTransform:
    """Abstract 1-D invertible linear transform with weighted noise."""

    #: Expected length of axis 0 on input.
    input_length: int
    #: Length of axis 0 of the coefficient output (may exceed
    #: ``input_length`` for over-complete transforms, §V-A).
    output_length: int

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Transform ``values`` (shape ``(input_length, ...)``) to coefficients."""
        raise NotImplementedError

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        """Map coefficients back to data space.

        ``refine=True`` applies the transform's refinement step (§III-A
        step 3) — currently only the nominal transform has one (mean
        subtraction).  Refinement must depend only on the coefficients,
        never on the original data, to preserve the privacy argument.
        """
        raise NotImplementedError

    def weight_vector(self) -> np.ndarray:
        """Per-coefficient weights ``W(c)``, shape ``(output_length,)``."""
        raise NotImplementedError

    def sensitivity_factor(self) -> float:
        """Generalized sensitivity of this transform w.r.t. its weights."""
        raise NotImplementedError

    def variance_factor(self) -> float:
        """Factor this dimension contributes to the variance bound."""
        raise NotImplementedError

    def _check_forward_input(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 1 or values.shape[0] != self.input_length:
            raise _transform_error(
                f"{type(self).__name__}: expected axis 0 of length "
                f"{self.input_length}, got shape {values.shape}"
            )
        return values

    def _check_inverse_input(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim < 1 or coefficients.shape[0] != self.output_length:
            raise _transform_error(
                f"{type(self).__name__}: expected axis 0 of length "
                f"{self.output_length}, got shape {coefficients.shape}"
            )
        return coefficients


class IdentityTransform(OneDimensionalTransform):
    """The no-op transform used on Privelet+'s ``SA`` dimensions (§VI-D).

    Releasing a dimension untransformed with unit weights is exactly
    Dwork et al.'s treatment of that dimension: its generalized
    sensitivity factor is 1 and a range can cover all ``|A|`` cells, so
    its variance factor is ``|A|``.  Basic is the special case where
    *every* dimension uses this transform.
    """

    def __init__(self, length: int):
        if length < 1:
            raise _transform_error(f"length must be >= 1, got {length}")
        self.input_length = int(length)
        self.output_length = int(length)

    def forward(self, values: np.ndarray) -> np.ndarray:
        return self._check_forward_input(values).copy()

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        return self._check_inverse_input(coefficients).copy()

    def weight_vector(self) -> np.ndarray:
        return np.ones(self.output_length, dtype=np.float64)

    def sensitivity_factor(self) -> float:
        return 1.0

    def variance_factor(self) -> float:
        return float(self.input_length)


def _transform_error(message: str):
    from repro.errors import TransformError

    return TransformError(message)
