"""Common interface for the one-dimensional transforms Privelet composes.

The multi-dimensional Haar-Nominal (HN) transform of paper §VI applies a
one-dimensional transform along each axis of the frequency matrix in
turn.  Each 1-D transform must provide, beyond forward/inverse:

* a **weight vector** aligned with its coefficient layout — the weight
  function ``W`` of §III-B, which scales per-coefficient Laplace noise
  (magnitude ``lambda / W(c)``);
* its **generalized sensitivity** with respect to those weights (the
  ``P(A)`` factor of Theorem 2);
* its **variance factor** — the per-dimension factor ``H(A)`` of the
  range-count noise-variance bound (Theorem 3).

All transforms operate along axis 0 of an ndarray and vectorize over any
trailing axes, which is what lets the HN transform process every row/
column/fiber of the matrix in one numpy call.

Adjoints
--------
A range-count answer over ``[lo, hi)`` is ``r . x = r . R c = (R^T r) . c``
where ``R`` is the (linear) coefficient-to-data reconstruction map
including refinement and ``r`` the range indicator.  The vector
``g = R^T r`` — the **range adjoint** — is all the exact-variance
machinery in :mod:`repro.analysis.exact` needs, so every transform
exposes :meth:`OneDimensionalTransform.adjoint_range` plus a vectorized
batch form, and a :meth:`~OneDimensionalTransform.range_profile` that
folds ``g`` with the weight vector into the scalar
``sum_j (g[j] / W[j])^2``.  The base class supplies a dense fallback that
materializes ``R`` **once per transform instance**; concrete transforms
override it with closed forms that never build a matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OneDimensionalTransform", "IdentityTransform"]


class OneDimensionalTransform:
    """Abstract 1-D invertible linear transform with weighted noise."""

    #: Expected length of axis 0 on input.
    input_length: int
    #: Length of axis 0 of the coefficient output (may exceed
    #: ``input_length`` for over-complete transforms, §V-A).
    output_length: int

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Transform ``values`` (shape ``(input_length, ...)``) to coefficients."""
        raise NotImplementedError

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        """Map coefficients back to data space.

        ``refine=True`` applies the transform's refinement step (§III-A
        step 3) — currently only the nominal transform has one (mean
        subtraction).  Refinement must depend only on the coefficients,
        never on the original data, to preserve the privacy argument.
        """
        raise NotImplementedError

    def weight_vector(self) -> np.ndarray:
        """Per-coefficient weights ``W(c)``, shape ``(output_length,)``."""
        raise NotImplementedError

    def sensitivity_factor(self) -> float:
        """Generalized sensitivity of this transform w.r.t. its weights."""
        raise NotImplementedError

    def variance_factor(self) -> float:
        """Factor this dimension contributes to the variance bound."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Range adjoints (matrix-free exact variance support)
    # ------------------------------------------------------------------
    def adjoint_range(self, lo: int, hi: int) -> np.ndarray:
        """``g = R^T r`` for the half-open data-space range ``[lo, hi)``.

        ``R`` is the full coefficient-to-data reconstruction map
        (``inverse(..., refine=True)``, so refinement and padding
        truncation are included) and ``r`` the indicator of ``[lo, hi)``.
        Returns a ``(output_length,)`` vector.  The base implementation
        uses a dense reconstruction computed once and cached on the
        instance; subclasses override it with closed forms.
        """
        lo, hi = self._check_range(lo, hi)
        cumulative = self._cumulative_reconstruction()
        return cumulative[hi] - cumulative[lo]

    def adjoint_ranges(self, lows, highs) -> np.ndarray:
        """Vectorized :meth:`adjoint_range` — one row per ``(lo, hi)`` pair.

        ``lows``/``highs`` are equal-length integer arrays; the result has
        shape ``(len(lows), output_length)``.
        """
        lows, highs = self._check_ranges(lows, highs)
        cumulative = self._cumulative_reconstruction()
        return cumulative[highs] - cumulative[lows]

    def range_profile(self, lo: int, hi: int) -> float:
        """``sum_j (g[j] / W[j])^2`` for one range — the axis's
        multiplicative contribution to the exact query variance."""
        return float(self.range_profiles([lo], [hi])[0])

    def range_profiles(self, lows, highs) -> np.ndarray:
        """Vectorized :meth:`range_profile`; returns shape ``(len(lows),)``."""
        adjoints = self.adjoint_ranges(lows, highs)
        weights = self._cached_weight_vector()
        return np.sum((adjoints / weights) ** 2, axis=-1)

    def sparse_adjoint_ranges(self, lows, highs) -> tuple[np.ndarray, np.ndarray]:
        """Range adjoints as aligned ``(indices, values)`` arrays.

        Both arrays have shape ``(len(lows), k)`` where ``k`` is a
        transform-specific support width; ``sum_a values[q, a] * c[indices
        [q, a]]`` is the range-count answer of query ``q`` on coefficients
        ``c``.  Padding entries carry ``values == 0`` (their index may be
        any in-bounds position).  This is the gather primitive coefficient
        -space releases serve answers through.  The base implementation is
        dense (``k = output_length``) — exact but no sparser than
        :meth:`adjoint_ranges`; transforms with structured adjoints
        (Haar: ``k = O(log m)``) override it.
        """
        adjoints = self.adjoint_ranges(lows, highs)
        indices = np.broadcast_to(
            np.arange(self.output_length, dtype=np.int64), adjoints.shape
        )
        return indices, adjoints

    # -- shared caches and validation ----------------------------------
    def _cached_weight_vector(self) -> np.ndarray:
        """The weight vector, computed once per instance (do not mutate)."""
        cached = getattr(self, "_weight_vector_cache", None)
        if cached is None:
            cached = self.weight_vector()
            self._weight_vector_cache = cached
        return cached

    def _cumulative_reconstruction(self) -> np.ndarray:
        """Row-prefix-sums of the dense reconstruction matrix, cached.

        Shape ``(input_length + 1, output_length)``; the adjoint of any
        range is then one row difference.  Built from a single
        ``inverse(identity, refine=True)`` the first time it is needed —
        the only place the dense fallback ever materializes a matrix.
        """
        cached = getattr(self, "_cumulative_reconstruction_cache", None)
        if cached is None:
            reconstruction = self.inverse(
                np.eye(self.output_length, dtype=np.float64), refine=True
            )
            cached = np.concatenate(
                [
                    np.zeros((1, self.output_length), dtype=np.float64),
                    np.cumsum(reconstruction, axis=0),
                ],
                axis=0,
            )
            self._cumulative_reconstruction_cache = cached
        return cached

    def _check_range(self, lo, hi) -> tuple[int, int]:
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.input_length:
            raise _transform_error(
                f"{type(self).__name__}: range [{lo}, {hi}) out of bounds "
                f"for axis of length {self.input_length}"
            )
        return lo, hi

    def _check_ranges(self, lows, highs) -> tuple[np.ndarray, np.ndarray]:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.ndim != 1 or lows.shape != highs.shape:
            raise _transform_error(
                f"{type(self).__name__}: lows/highs must be equal-length 1-D "
                f"arrays, got shapes {lows.shape} and {highs.shape}"
            )
        valid = (lows >= 0) & (lows <= highs) & (highs <= self.input_length)
        if not np.all(valid):
            bad = int(np.argmin(valid))
            raise _transform_error(
                f"{type(self).__name__}: range [{lows[bad]}, {highs[bad]}) "
                f"out of bounds for axis of length {self.input_length}"
            )
        return lows, highs

    def _check_forward_input(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 1 or values.shape[0] != self.input_length:
            raise _transform_error(
                f"{type(self).__name__}: expected axis 0 of length "
                f"{self.input_length}, got shape {values.shape}"
            )
        return values

    def _check_inverse_input(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.ndim < 1 or coefficients.shape[0] != self.output_length:
            raise _transform_error(
                f"{type(self).__name__}: expected axis 0 of length "
                f"{self.output_length}, got shape {coefficients.shape}"
            )
        return coefficients


class IdentityTransform(OneDimensionalTransform):
    """The no-op transform used on Privelet+'s ``SA`` dimensions (§VI-D).

    Releasing a dimension untransformed with unit weights is exactly
    Dwork et al.'s treatment of that dimension: its generalized
    sensitivity factor is 1 and a range can cover all ``|A|`` cells, so
    its variance factor is ``|A|``.  Basic is the special case where
    *every* dimension uses this transform.
    """

    def __init__(self, length: int):
        if length < 1:
            raise _transform_error(f"length must be >= 1, got {length}")
        self.input_length = int(length)
        self.output_length = int(length)

    def forward(self, values: np.ndarray) -> np.ndarray:
        return self._check_forward_input(values).copy()

    def inverse(self, coefficients: np.ndarray, *, refine: bool = False) -> np.ndarray:
        return self._check_inverse_input(coefficients).copy()

    def weight_vector(self) -> np.ndarray:
        return np.ones(self.output_length, dtype=np.float64)

    def sensitivity_factor(self) -> float:
        return 1.0

    def variance_factor(self) -> float:
        return float(self.input_length)

    def adjoint_range(self, lo: int, hi: int) -> np.ndarray:
        """The identity's adjoint is the range indicator itself."""
        lo, hi = self._check_range(lo, hi)
        adjoint = np.zeros(self.output_length, dtype=np.float64)
        adjoint[lo:hi] = 1.0
        return adjoint

    def adjoint_ranges(self, lows, highs) -> np.ndarray:
        """Batch of range indicators, shape ``(len(lows), output_length)``."""
        lows, highs = self._check_ranges(lows, highs)
        positions = np.arange(self.output_length, dtype=np.int64)
        return (
            (positions >= lows[:, None]) & (positions < highs[:, None])
        ).astype(np.float64)

    def range_profiles(self, lows, highs) -> np.ndarray:
        """With unit weights the profile is just the range width."""
        lows, highs = self._check_ranges(lows, highs)
        return (highs - lows).astype(np.float64)


def _transform_error(message: str):
    from repro.errors import TransformError

    return TransformError(message)
