"""Wavelet transforms: 1-D Haar, 1-D nominal, multi-dimensional HN."""

from repro.transforms.base import IdentityTransform, OneDimensionalTransform
from repro.transforms.haar import HaarTransform, haar_forward, haar_inverse, haar_weight_vector
from repro.transforms.multidim import (
    HNTransform,
    apply_along_axis,
    transform_for_attribute,
    weight_tensor,
)
from repro.transforms.nominal import NominalTransform, mean_subtract

__all__ = [
    "OneDimensionalTransform",
    "IdentityTransform",
    "HaarTransform",
    "haar_forward",
    "haar_inverse",
    "haar_weight_vector",
    "NominalTransform",
    "mean_subtract",
    "HNTransform",
    "apply_along_axis",
    "transform_for_attribute",
    "weight_tensor",
]
