"""The multi-dimensional Haar-Nominal (HN) wavelet transform (paper §VI).

Standard decomposition: apply a one-dimensional transform along each axis
of the frequency matrix in turn — Haar for ordinal dimensions, nominal
for nominal dimensions, and (for Privelet+, §VI-D) the identity for the
``SA`` dimensions that are released untransformed.  The step-``i`` matrix
of the paper is the array after the first ``i`` axes are transformed.

Weights: because every 1-D transform stores its coefficients in level
order, a coefficient's per-step weight depends only on its *index along
that axis*.  ``W_HN`` is therefore the outer (tensor) product of the
per-axis weight vectors, which this module never materializes except when
drawing noise (Example 5 of the paper works through exactly this
product).

Privacy/utility factors (Theorem 2, Theorem 3, Corollary 1) are products
of the per-axis factors exposed by each 1-D transform.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.data.attributes import Attribute, NominalAttribute, OrdinalAttribute
from repro.data.schema import Schema
from repro.errors import TransformError
from repro.transforms.base import IdentityTransform, OneDimensionalTransform
from repro.transforms.haar import HaarTransform
from repro.transforms.nominal import NominalTransform

__all__ = ["HNTransform", "transform_for_attribute", "apply_along_axis", "weight_tensor"]


def transform_for_attribute(attribute: Attribute) -> OneDimensionalTransform:
    """The 1-D transform Privelet uses for one attribute."""
    if isinstance(attribute, OrdinalAttribute):
        return HaarTransform(attribute.size)
    if isinstance(attribute, NominalAttribute):
        return NominalTransform(attribute.hierarchy)
    raise TransformError(f"unsupported attribute type: {type(attribute).__name__}")


def apply_along_axis(
    transform: OneDimensionalTransform,
    values: np.ndarray,
    axis: int,
    *,
    inverse: bool = False,
    refine: bool = False,
) -> np.ndarray:
    """Apply a 1-D transform along ``axis`` of an ndarray.

    The transform operates on axis 0 and vectorizes over the rest, so a
    single call processes every fiber of the matrix at once.
    """
    moved = np.moveaxis(values, axis, 0)
    if inverse:
        result = transform.inverse(moved, refine=refine)
    else:
        result = transform.forward(moved)
    return np.moveaxis(result, 0, axis)


def weight_tensor(weight_vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Materialize the outer product of per-axis weight vectors.

    Shape is ``(len(w_0), ..., len(w_{d-1}))``.  Only used when drawing
    noise (the magnitude matrix is the same size as the coefficient
    matrix, so this costs no extra asymptotic memory).
    """
    tensor = np.ones((1,) * len(weight_vectors), dtype=np.float64)
    for axis, vector in enumerate(weight_vectors):
        shape = [1] * len(weight_vectors)
        shape[axis] = len(vector)
        tensor = tensor * np.asarray(vector, dtype=np.float64).reshape(shape)
    return tensor


class HNTransform:
    """Haar-Nominal transform over a schema, with optional ``SA`` axes.

    Parameters
    ----------
    schema:
        The frequency matrix's schema.
    sa_names:
        Attribute names to *exclude* from the wavelet transform — the
        ``SA`` set of Privelet+ (§VI-D).  Those axes use the identity
        transform with unit weights, which is equivalent to the paper's
        sub-matrix splitting (tested equivalent in the test suite).
        ``SA = ()`` is plain Privelet; ``SA = all names`` is Basic.
    """

    def __init__(self, schema: Schema, sa_names: Iterable[str] = ()):
        self.schema = schema
        sa = tuple(sa_names)
        for name in sa:
            schema.index_of(name)  # raises SchemaError for unknown names
        if len(set(sa)) != len(sa):
            raise TransformError(f"duplicate attribute names in SA: {sa}")
        self.sa_names = frozenset(sa)
        self.transforms: list[OneDimensionalTransform] = []
        for attribute in schema:
            if attribute.name in self.sa_names:
                self.transforms.append(IdentityTransform(attribute.size))
            else:
                self.transforms.append(transform_for_attribute(attribute))

    # ------------------------------------------------------------------
    @property
    def input_shape(self) -> tuple[int, ...]:
        return tuple(t.input_length for t in self.transforms)

    @property
    def output_shape(self) -> tuple[int, ...]:
        return tuple(t.output_length for t in self.transforms)

    @property
    def dimensions(self) -> int:
        return len(self.transforms)

    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray) -> np.ndarray:
        """Transform axes ``0 .. d-1`` in turn (producing the step-d matrix)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.input_shape:
            raise TransformError(
                f"expected input shape {self.input_shape}, got {values.shape}"
            )
        for axis, transform in enumerate(self.transforms):
            values = apply_along_axis(transform, values, axis)
        return values

    def inverse(self, coefficients: np.ndarray, *, refine: bool = True) -> np.ndarray:
        """Invert axes ``d-1 .. 0``.

        ``refine=True`` applies each nominal axis's mean-subtraction step
        before that axis is inverted (footnote 2 of the paper).  Pass
        ``refine=False`` for the ablation without refinement.
        """
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape != self.output_shape:
            raise TransformError(
                f"expected coefficient shape {self.output_shape}, got {coefficients.shape}"
            )
        for axis in reversed(range(self.dimensions)):
            coefficients = apply_along_axis(
                self.transforms[axis], coefficients, axis, inverse=True, refine=refine
            )
        return coefficients

    # ------------------------------------------------------------------
    def weight_vectors(self) -> list[np.ndarray]:
        """Per-axis weight vectors whose outer product is ``W_HN``."""
        return [t.weight_vector() for t in self.transforms]

    def weight_of(self, coordinates: Sequence[int]) -> float:
        """``W_HN`` at one coefficient coordinate (Example 5 arithmetic)."""
        if len(coordinates) != self.dimensions:
            raise TransformError(
                f"expected {self.dimensions} coordinates, got {len(coordinates)}"
            )
        weight = 1.0
        for coordinate, transform in zip(coordinates, self.transforms):
            weight *= float(transform.weight_vector()[int(coordinate)])
        return weight

    def generalized_sensitivity(self) -> float:
        """Theorem 2 / Corollary 1: ``prod_{A not in SA} P(A)``."""
        return math.prod(t.sensitivity_factor() for t in self.transforms)

    def variance_bound_factor(self) -> float:
        """Theorem 3 / Corollary 1: ``prod H(A)`` (``|A|`` for SA axes).

        A query's noise variance is at most ``sigma^2`` times this, where
        ``sigma^2 = 2 * lambda^2`` is the variance of a unit-weight
        coefficient's noise.
        """
        return math.prod(t.variance_factor() for t in self.transforms)

    def __repr__(self) -> str:
        sa = sorted(self.sa_names)
        return f"HNTransform(shape={self.input_shape}->{self.output_shape}, SA={sa})"
