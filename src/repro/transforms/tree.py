"""Slow, explicitly tree-based reference transforms (test oracles).

These implementations follow the paper's prose construction literally —
building the decomposition tree, computing subtree averages, and walking
ancestor paths (Equations 3 and 5) — with no vectorization tricks.  The
test suite checks the fast implementations in
:mod:`repro.transforms.haar` and :mod:`repro.transforms.nominal` against
these on random inputs; nothing else should import this module for
production use.
"""

from __future__ import annotations

import numpy as np

from repro.data.hierarchy import Hierarchy
from repro.errors import TransformError

__all__ = [
    "haar_forward_reference",
    "haar_reconstruct_entry",
    "nominal_forward_reference",
    "nominal_reconstruct_entry",
]


def haar_forward_reference(values) -> np.ndarray:
    """§IV-A construction: coefficient = (avg(left) - avg(right)) / 2.

    Returns level-order coefficients with the base coefficient first,
    matching :func:`repro.transforms.haar.haar_forward`.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise TransformError("reference transform handles 1-D input only")
    length = len(values)
    if length & (length - 1):
        raise TransformError(f"length must be a power of two, got {length}")

    coefficients = [values.mean()]  # base coefficient
    # Internal nodes in level order; node at level i covers a block of
    # 2**(l-i+1) leaves.
    l = length.bit_length() - 1
    for level in range(1, l + 1):
        block = 1 << (l - level + 1)  # leaves under a level-`level` node
        half = block // 2
        for start in range(0, length, block):
            left = values[start : start + half].mean()
            right = values[start + half : start + block].mean()
            coefficients.append((left - right) / 2.0)
    return np.asarray(coefficients)


def haar_reconstruct_entry(coefficients, index: int) -> float:
    """Equation 3: ``v = c0 + sum_i g_i * c_i`` over the ancestors of ``v``.

    ``coefficients`` is the level-order layout; ``index`` is the leaf
    position.  ``g_i`` is +1 when the leaf lies in the ancestor's left
    subtree, -1 otherwise.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    length = len(coefficients)
    if length & (length - 1):
        raise TransformError(f"length must be a power of two, got {length}")
    if not 0 <= index < length:
        raise TransformError(f"index {index} out of range [0, {length})")
    l = length.bit_length() - 1
    value = coefficients[0]
    for level in range(1, l + 1):
        block = 1 << (l - level + 1)
        node_in_level = index // block
        # Level-order position: levels 1..level-1 hold 2**(level-1) - 1
        # internal nodes; +1 skips the base coefficient.
        position = 1 + ((1 << (level - 1)) - 1) + node_in_level
        sign = 1.0 if (index % block) < block // 2 else -1.0
        value += sign * coefficients[position]
    return float(value)


def nominal_forward_reference(values, hierarchy: Hierarchy) -> np.ndarray:
    """§V-A construction via per-node leaf-sum scans (no cumsum tricks)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) != hierarchy.num_leaves:
        raise TransformError("values must be 1-D with one entry per hierarchy leaf")

    def leaf_sum(node_id: int) -> float:
        start, end = hierarchy.leaf_interval(node_id)
        return float(values[start:end].sum())

    coefficients = np.empty(hierarchy.num_nodes, dtype=np.float64)
    coefficients[0] = leaf_sum(0)
    for node_id in range(1, hierarchy.num_nodes):
        parent = hierarchy.parent(node_id)
        siblings = hierarchy.children(parent)
        average = sum(leaf_sum(s) for s in siblings) / len(siblings)
        coefficients[node_id] = leaf_sum(node_id) - average
    return coefficients


def nominal_reconstruct_entry(coefficients, hierarchy: Hierarchy, leaf_index: int) -> float:
    """Equation 5: walk the ancestor path of one leaf.

    ``v = c_{h-1} + sum_{i=0}^{h-2} c_i * prod_{j=i}^{h-2} 1/f_j`` where
    ``c_i`` is the ancestor at level ``i+1`` and ``f_i`` its fanout.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if len(coefficients) != hierarchy.num_nodes:
        raise TransformError("coefficient count must equal hierarchy.num_nodes")
    node_id = hierarchy.node_id_of_leaf(leaf_index)
    # Ancestor path from the leaf's hierarchy node up to the root.
    path = [node_id]
    while hierarchy.parent(path[-1]) != -1:
        path.append(hierarchy.parent(path[-1]))
    path.reverse()  # root ... leaf-node

    value = float(coefficients[path[-1]])
    fanout_product = 1.0
    for ancestor in reversed(path[:-1]):
        fanout_product *= hierarchy.fanout(ancestor)
        value += float(coefficients[ancestor]) / fanout_product
    return value
