"""Tests for the cost-based batch planner: parity, pruning, views."""

import numpy as np
import pytest

from repro.core.privelet_plus import PriveletPlusMechanism
from repro.core.sharding import publish_sharded
from repro.data.census import BRAZIL, census_schema, generate_census_table
from repro.io import load_result, save_result
from repro.queries.engine import QueryEngine
from repro.planner import QueryPlanner
from repro.serving.requests import QueryBatchRequest
from repro.serving.server import ReleaseServer
from repro.streaming import StreamingPublisher

SPEC = BRAZIL.scaled(0.05)


@pytest.fixture(scope="module")
def schema():
    return census_schema(SPEC)


@pytest.fixture(scope="module")
def sharded_result(schema):
    table = generate_census_table(SPEC, 2_000, seed=3)
    return publish_sharded(
        table,
        PriveletPlusMechanism(sa_names="auto"),
        1.0,
        shard_by="Age",
        shards=4,
        seed=7,
        materialize=False,
        parallel=False,
    )


@pytest.fixture
def engine(sharded_result):
    return QueryEngine(sharded_result)


def skewed_boxes(schema, count, seed, duplicate_every=3):
    """A duplicate-heavy batch mixing range boxes and marginal cells."""
    rng = np.random.default_rng(seed)
    shape = np.asarray(schema.shape, dtype=np.int64)
    lows = np.empty((count, len(shape)), dtype=np.int64)
    highs = np.empty_like(lows)
    for axis, size in enumerate(shape):
        lo = rng.integers(0, size, count)
        width = rng.integers(1, size + 1, count)
        lows[:, axis] = lo
        highs[:, axis] = np.minimum(lo + width, size)
    lows[::duplicate_every] = lows[0]
    highs[::duplicate_every] = highs[0]
    # Marginal cells on axis 0: point on Age, full domain elsewhere.
    cells = rng.integers(0, shape[0], count // 4)
    marg_lows = np.zeros((len(cells), len(shape)), dtype=np.int64)
    marg_highs = np.tile(shape, (len(cells), 1))
    marg_lows[:, 0] = cells
    marg_highs[:, 0] = cells + 1
    return np.vstack([lows, marg_lows]), np.vstack([highs, marg_highs])


class TestPlannedParity:
    def test_planned_answers_bitwise_equal(self, engine, schema):
        planner = QueryPlanner(engine)
        lows, highs = skewed_boxes(schema, 200, seed=5)
        base = engine.answer_columnar(lows, highs)
        planned = planner.answer_columnar(lows, highs)
        np.testing.assert_array_equal(planned.estimates, base.estimates)
        np.testing.assert_array_equal(planned.noise_stds, base.noise_stds)
        np.testing.assert_array_equal(planned.lowers, base.lowers)
        np.testing.assert_array_equal(planned.uppers, base.uppers)
        assert planner.rows_deduped > 0

    def test_view_served_answers_bitwise_equal(self, engine, schema):
        planner = QueryPlanner(engine, view_cell_budget=schema.shape[0])
        lows, highs = skewed_boxes(schema, 300, seed=6)
        base = engine.answer_columnar(lows, highs)
        first = planner.answer_columnar(lows, highs)
        second = planner.answer_columnar(lows, highs)
        for planned in (first, second):
            np.testing.assert_array_equal(planned.estimates, base.estimates)
            np.testing.assert_array_equal(planned.noise_stds, base.noise_stds)
        assert planner.views_built >= 1
        assert planner.view_rows > 0
        assert planner.view_signatures == ((0,),)

    def test_response_order_is_request_order(self, engine, schema):
        rng = np.random.default_rng(8)
        lows, highs = skewed_boxes(schema, 120, seed=8)
        order = rng.permutation(len(lows))
        planner = QueryPlanner(engine)
        planned = planner.answer_columnar(lows[order], highs[order])
        base = engine.answer_columnar(lows, highs)
        np.testing.assert_array_equal(planned.estimates, base.estimates[order])
        np.testing.assert_array_equal(planned.noise_stds, base.noise_stds[order])

    def test_bad_confidence_rejected_before_bounds(self, engine):
        from repro.errors import QueryError

        planner = QueryPlanner(engine)
        with pytest.raises(QueryError, match="confidence"):
            planner.answer_columnar(
                np.zeros((1, 2), dtype=np.int64),  # wrong width too
                np.ones((1, 2), dtype=np.int64),
                confidence=1.5,
            )


class TestPlanIntrospection:
    def test_dedup_counts(self, engine, schema):
        planner = QueryPlanner(engine)
        lows = np.zeros((6, schema.dimensions), dtype=np.int64)
        highs = np.tile(np.asarray(schema.shape, dtype=np.int64), (6, 1))
        highs[3:, 0] = 1  # two distinct boxes, three copies each
        plan = planner.plan(lows, highs)
        assert plan.num_rows == 6
        assert plan.num_unique == 2
        assert plan.duplicate_rows == 4
        assert plan.naive_cost > plan.cost > 0

    def test_minimal_cover_prunes_lazy_shards(self, sharded_result, tmp_path):
        path = tmp_path / "sharded.npz"
        save_result(path, sharded_result)
        loaded = load_result(path)
        release = loaded.release
        engine = QueryEngine(loaded)
        planner = QueryPlanner(engine)
        lows = np.zeros((2, release.schema.dimensions), dtype=np.int64)
        highs = np.tile(
            np.asarray(release.schema.shape, dtype=np.int64), (2, 1)
        )
        highs[:, 0] = release.bounds[1]  # both rows inside shard 0
        plan = planner.plan(lows, highs)
        assert plan.cover == (0,)
        assert release.shards_loaded == 0  # planning touches no payload
        planner.answer_columnar(lows, highs)
        assert release.shards_loaded == 1  # answering loads only the cover

    def test_monolithic_backend_has_no_cover(self, schema):
        result = PriveletPlusMechanism(sa_names="auto").publish(
            generate_census_table(SPEC, 500, seed=4), 1.0, seed=5
        )
        planner = QueryPlanner(QueryEngine(result))
        lows = np.zeros((1, schema.dimensions), dtype=np.int64)
        highs = np.asarray([list(schema.shape)], dtype=np.int64)
        assert planner.plan(lows, highs).cover is None


class TestViews:
    def test_budget_blocks_materialization(self, engine, schema):
        planner = QueryPlanner(engine, view_cell_budget=1)
        lows, highs = skewed_boxes(schema, 300, seed=9)
        planner.answer_columnar(lows, highs)
        planner.answer_columnar(lows, highs)
        assert planner.views_built == 0

    def test_invalidate_drops_views_keeps_counters(self, engine, schema):
        planner = QueryPlanner(engine, view_cell_budget=schema.shape[0])
        lows, highs = skewed_boxes(schema, 300, seed=10)
        planner.answer_columnar(lows, highs)
        planner.answer_columnar(lows, highs)
        built = planner.views_built
        views_before = planner.num_views
        assert built >= 1
        assert planner.invalidate() == views_before
        assert planner.num_views == 0
        assert planner.views_built == built  # monotone

    def test_server_refresh_invalidates_views(self, tmp_path):
        path = tmp_path / "events.npz"
        publisher = StreamingPublisher(
            census_schema(SPEC),
            PriveletPlusMechanism(sa_names="auto"),
            1.0,
            seed=20100301,
            archive_path=path,
        )
        for epoch in range(2):
            publisher.ingest(generate_census_table(SPEC, 200, seed=100 + epoch))
            publisher.advance_epoch()
        age_size = publisher.schema[0].size
        request = QueryBatchRequest(
            "events",
            {
                "Age": {
                    "lo": list(range(age_size)) * 3,
                    "hi": [cell + 1 for cell in range(age_size)] * 3,
                }
            },
        )
        with ReleaseServer(watch_streams=False) as server:
            server.register_archive(path)
            first = server.query_columnar(request)
            stats = server.stats()
            assert stats.planner_views_built >= 1
            assert stats.planner_deduped_rows > 0
            publisher.ingest(generate_census_table(SPEC, 200, seed=300))
            publisher.advance_epoch()
            assert server.refresh("events") is True
            assert len(server.plan_cache) == 0  # plan (and views) dropped
            second = server.query_columnar(request)
            # The new epoch changed the marginal; stale views would have
            # returned the old estimates.
            assert not np.array_equal(second.estimates, first.estimates)
            after = server.stats()
            assert after.planner_views_built >= stats.planner_views_built
            assert after.planner_deduped_rows >= stats.planner_deduped_rows

    def test_planner_disabled_server_matches(self, sharded_result):
        request = QueryBatchRequest(
            "census", {"Age": {"lo": [0, 0, 0], "hi": [5, 5, 5]}}
        )
        with ReleaseServer(planner=False) as plain, ReleaseServer() as planned:
            plain.register("census", sharded_result)
            planned.register("census", sharded_result)
            base = plain.query_columnar(request)
            fast = planned.query_columnar(request)
            np.testing.assert_array_equal(base.estimates, fast.estimates)
            np.testing.assert_array_equal(base.noise_stds, fast.noise_stds)
            assert plain.stats().planner_deduped_rows == 0
            assert planned.stats().planner_deduped_rows == 2
