"""Tests for the command-line interface."""

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_result


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_account_defaults(self):
        args = build_parser().parse_args(["account"])
        assert args.dataset == "brazil"
        assert args.epsilon == 1.0

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_account_output(self, capsys):
        assert main(["account", "--dataset", "brazil", "--scale", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Age" in out
        assert "Privelet+" in out
        assert "variance bound" in out

    def test_account_matches_paper_sa(self, capsys):
        main(["account", "--dataset", "brazil"])
        out = capsys.readouterr().out
        assert "'Age'" in out and "'Gender'" in out

    def test_figure_accuracy_small(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--scale",
                "0.05",
                "--rows",
                "3000",
                "--queries",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epsilon = 0.5" in out
        assert "Basic" in out

    def test_publish_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        code = main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--epsilon",
                "1.0",
                "--mechanism",
                "privelet+",
            ]
        )
        assert code == 0
        assert output.exists()
        result = load_result(output)
        assert result.epsilon == 1.0
        assert result.matrix.total == pytest.approx(2000, abs=600)
        assert np.isfinite(result.matrix.values).all()

    def test_query_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--mechanism",
                "privelet+",
            ]
        )
        capsys.readouterr()
        code = main(
            ["query", str(output), "--queries", "7", "--confidence", "0.9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "7 random range-count queries" in out
        assert "90% intervals" in out
        assert "noise std" in out
        assert "mean noise std" in out

    def test_query_sa_override(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "1000",
                "--mechanism",
                "privelet",
            ]
        )
        capsys.readouterr()
        # Explicit empty SA matches the plain-Privelet configuration.
        assert main(["query", str(output), "--queries", "3", "--sa"]) == 0
        assert "3 random range-count queries" in capsys.readouterr().out

    def test_query_errors_exit_cleanly(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "missing.npz")]) == 2
        assert "error:" in capsys.readouterr().err
        output = tmp_path / "release.npz"
        main(["publish", str(output), "--scale", "0.05", "--rows", "500"])
        capsys.readouterr()
        assert main(["query", str(output), "--confidence", "1.0"]) == 2
        assert "confidence" in capsys.readouterr().err

    def test_publish_coefficients_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        code = main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--mechanism",
                "privelet+",
                "--representation",
                "coefficients",
            ]
        )
        assert code == 0
        assert "representation=coefficients" in capsys.readouterr().out
        result = load_result(output)
        assert result.representation == "coefficients"
        # Serving straight from the archive's coefficient backend.
        assert main(["query", str(output), "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "coefficients backend" in out

    def test_query_representation_conversion(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "1000",
                "--mechanism",
                "privelet+",
                "--representation",
                "coefficients",
            ]
        )
        capsys.readouterr()
        # Same archive, same seed, both serving backends: answers agree.
        assert (
            main(["query", str(output), "--queries", "4", "--seed", "3"]) == 0
        )
        coeff_out = capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    str(output),
                    "--queries",
                    "4",
                    "--seed",
                    "3",
                    "--representation",
                    "dense",
                ]
            )
            == 0
        )
        dense_out = capsys.readouterr().out
        assert "dense backend" in dense_out

        def estimates(text):
            return [
                float(line.split()[0])
                for line in text.splitlines()
                if "RangeCountQuery" in line
            ]

        assert estimates(coeff_out) == pytest.approx(estimates(dense_out), abs=1e-6)

    def test_figure_accepts_representation(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--scale",
                "0.05",
                "--rows",
                "1500",
                "--queries",
                "300",
                "--representation",
                "coefficients",
            ]
        )
        assert code == 0
        assert "Basic" in capsys.readouterr().out

    def test_query_conflicting_sa_on_v2_archive_exits_cleanly(
        self, tmp_path, capsys
    ):
        """A v2 archive carries its own SA set; a conflicting override is
        a clean CLI error, never a traceback."""
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "1000",
                "--representation",
                "coefficients",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "query",
                str(output),
                "--representation",
                "coefficients",
                "--sa",
                "Gender",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "conflicts" in err

    def test_publish_sharded_round_trip(self, tmp_path, capsys):
        output = tmp_path / "sharded.npz"
        code = main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--shard-by",
                "Age",
                "--shards",
                "3",
                "--representation",
                "coefficients",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "representation=sharded" in out
        assert "3 shards by 'Age'" in out
        result = load_result(output)
        assert result.representation == "sharded"
        assert result.release.num_shards == 3
        assert result.details["shard_by"] == "Age"
        # The archive serves through the unchanged query command.
        assert main(["query", str(output), "--queries", "4"]) == 0
        assert "sharded backend" in capsys.readouterr().out

    def test_publish_sharded_rejects_nominal_attribute(self, tmp_path, capsys):
        code = main(
            [
                "publish",
                str(tmp_path / "bad.npz"),
                "--scale",
                "0.05",
                "--rows",
                "500",
                "--shard-by",
                "Occupation",
            ]
        )
        assert code == 2
        assert "ordinal" in capsys.readouterr().err

    def test_publish_basic(self, tmp_path):
        output = tmp_path / "basic.npz"
        assert (
            main(
                [
                    "publish",
                    str(output),
                    "--mechanism",
                    "basic",
                    "--scale",
                    "0.05",
                    "--rows",
                    "1000",
                ]
            )
            == 0
        )
        assert load_result(output).noise_magnitude == 2.0


class TestServe:
    """The JSONL serving loop: answers and errors are both structured."""

    @pytest.fixture
    def archives(self, tmp_path, capsys):
        paths = {}
        for name, dataset in (("br", "brazil"), ("us", "us")):
            path = tmp_path / f"{name}.npz"
            assert (
                main(
                    [
                        "publish",
                        str(path),
                        "--dataset",
                        dataset,
                        "--scale",
                        "0.05",
                        "--rows",
                        "1000",
                        "--representation",
                        "coefficients",
                        "--seed",
                        "1",
                    ]
                )
                == 0
            )
            paths[name] = path
        capsys.readouterr()
        return paths

    def _serve(self, monkeypatch, capsys, argv, lines):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(argv)
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        return code, responses, captured.err

    def test_serves_two_releases(self, archives, monkeypatch, capsys):
        code, responses, err = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"]), str(archives["us"]),
             "--stdin-jsonl", "--port-less"],
            [
                '{"id": 1, "release": "br", "ranges": {"Age": [10, 40]}}',
                '{"id": 2, "release": "us", "ranges": {"Age": [0, 30]}}',
                '{"id": 3, "release": "br", "ranges": {}}',
            ],
        )
        assert code == 0
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert all(r["ok"] for r in responses)
        assert all(np.isfinite(r["estimate"]) for r in responses)
        assert all(r["lower"] <= r["estimate"] <= r["upper"] for r in responses)
        assert "serving 2 release(s)" in err
        assert "served 3 request(s)" in err

    def test_unknown_release_is_structured_error(
        self, archives, monkeypatch, capsys
    ):
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"])],
            [
                '{"id": 1, "release": "nope", "ranges": {}}',
                '{"id": 2, "release": "br", "ranges": {}}',
            ],
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "unknown-release"
        assert responses[0]["id"] == 1
        assert responses[1]["ok"] is True  # the bad request hurt only itself

    def test_malformed_jsonl_is_structured_error(
        self, archives, monkeypatch, capsys
    ):
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"])],
            [
                "this is not json",
                '{"id": 2, "release": "br", "ranges": {"Bogus": [0, 1]}}',
                '{"id": 3, "release": "br", "unknown_field": 1}',
                '{"id": 4, "release": "br"}',
            ],
        )
        assert code == 0
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert responses[0]["code"] == "bad-request"
        assert "malformed JSON" in responses[0]["error"]
        assert responses[1]["code"] == "bad-request"  # unknown attribute
        assert responses[2]["code"] == "bad-request"  # unknown field
        assert responses[3]["id"] == 4

    def test_list_and_stats_ops(self, archives, monkeypatch, capsys):
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"]), str(archives["us"])],
            [
                '{"op": "list"}',
                '{"id": 1, "release": "br", "ranges": {}}',
                '{"op": "stats", "id": 99}',
            ],
        )
        assert code == 0
        listing = responses[0]
        assert listing["ok"] and [r["name"] for r in listing["releases"]] == [
            "br",
            "us",
        ]
        # Archives are lazy: nothing is loaded before the first query.
        assert all(r["loaded"] is False for r in listing["releases"])
        stats = responses[2]
        assert stats["id"] == 99
        assert stats["stats"]["requests"] == 1
        assert stats["stats"]["engines_built"] == 1
        assert stats["stats"]["releases"] == ["br", "us"]

    def test_name_equals_path_override(self, archives, monkeypatch, capsys):
        code, responses, err = self._serve(
            monkeypatch,
            capsys,
            ["serve", f"brazil-2026={archives['br']}"],
            ['{"id": 1, "release": "brazil-2026", "ranges": {}}'],
        )
        assert code == 0
        assert responses[0]["ok"] is True
        assert responses[0]["release"] == "brazil-2026"

    def test_path_containing_equals_is_served(
        self, archives, tmp_path, monkeypatch, capsys
    ):
        """A filename with '=' (e.g. eps=1.0.npz) is a path, not a
        NAME=PATH override, as long as it exists on disk."""
        path = tmp_path / "eps=1.0.npz"
        path.write_bytes(archives["br"].read_bytes())
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(path)],
            ['{"id": 1, "release": "eps=1.0", "ranges": {}}'],
        )
        assert code == 0
        assert responses[0]["ok"] is True

    def test_truncated_archive_exits_cleanly(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "truncated.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 40)
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_duplicate_names_exit_cleanly(self, archives, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        code = main(["serve", str(archives["br"]), str(archives["br"])])
        assert code == 2
        assert "already registered" in capsys.readouterr().err

    def test_missing_archive_exits_cleanly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        code = main(["serve", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_conflicting_sa_on_v2_archive_is_structured_error(
        self, archives, monkeypatch, capsys
    ):
        """--sa that contradicts a v2 archive's own SA set surfaces as a
        bad-request response on that release's first request."""
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"]), "--sa", "Gender"],
            ['{"id": 1, "release": "br", "ranges": {}}'],
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "bad-request"
        assert "conflicts" in responses[0]["error"]

    def test_representation_conversion_flag(self, archives, monkeypatch, capsys):
        _, stored, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"])],
            ['{"id": 1, "release": "br", "ranges": {"Age": [5, 25]}}'],
        )
        _, dense, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archives["br"]), "--representation", "dense"],
            ['{"id": 1, "release": "br", "ranges": {"Age": [5, 25]}}'],
        )
        assert stored[0]["estimate"] == pytest.approx(
            dense[0]["estimate"], abs=1e-6
        )


class TestStreamingCommands:
    def _ingest(self, archive, seed):
        return main(
            [
                "ingest",
                str(archive),
                "--scale",
                "0.05",
                "--rows",
                "500",
                "--seed",
                str(seed),
            ]
        )

    def test_ingest_creates_archive_and_stages(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        assert self._ingest(archive, 5) == 0
        out = capsys.readouterr().out
        assert "created stream archive" in out
        assert "staged 500 rows" in out
        assert archive.exists()
        assert (tmp_path / "events.npz.staging.npz").exists()

    def test_repeated_ingest_accumulates(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._ingest(archive, 5)
        self._ingest(archive, 6)
        out = capsys.readouterr().out
        assert "(1000 pending)" in out

    def test_advance_epoch_publishes_staged_rows(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._ingest(archive, 5)
        assert main(["advance-epoch", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "closed epoch 0: published 500 rows" in out
        assert "stream now has 1 epochs" in out
        # Staging consumed.
        assert not (tmp_path / "events.npz.staging.npz").exists()

    def test_advance_multiple_epochs(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._ingest(archive, 5)
        assert main(["advance-epoch", str(archive), "--epochs", "4"]) == 0
        out = capsys.readouterr().out
        assert "closed epoch 3: published 0 rows" in out
        assert "stream now has 4 epochs, 7 tree nodes" in out

    def test_query_time_range(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._ingest(archive, 5)
        main(["advance-epoch", str(archive), "--epochs", "4"])
        capsys.readouterr()
        code = main(
            [
                "query",
                str(archive),
                "--queries",
                "4",
                "--time-range",
                "1",
                "3",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 random range-count queries" in out
        assert "stream backend" in out

    def test_query_time_range_on_flat_archive_errors(self, tmp_path, capsys):
        archive = tmp_path / "flat.npz"
        main(["publish", str(archive), "--scale", "0.05", "--rows", "500"])
        capsys.readouterr()
        code = main(["query", str(archive), "--time-range", "0", "1"])
        assert code == 2
        assert "not a stream archive" in capsys.readouterr().err

    def test_query_time_range_past_prefix_errors(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._ingest(archive, 5)
        main(["advance-epoch", str(archive)])
        capsys.readouterr()
        code = main(["query", str(archive), "--time-range", "0", "9"])
        assert code == 2
        assert "outside the closed prefix" in capsys.readouterr().err

    def test_ingest_into_non_stream_archive_errors(self, tmp_path, capsys):
        archive = tmp_path / "flat.npz"
        main(["publish", str(archive), "--scale", "0.05", "--rows", "500"])
        capsys.readouterr()
        code = self._ingest(archive, 5)
        assert code == 2
        assert "not a stream archive" in capsys.readouterr().err


class TestServeInteractiveClient:
    def test_request_response_client_is_not_deadlocked(self, capsys, monkeypatch):
        """Regression: a client that waits for each response before
        sending its next request must get answers while stdin is idle
        (the loop used to flush only when the *next* line arrived)."""
        import threading

        import repro.cli as cli
        from repro.core.privelet import publish_ordinal_release
        from repro.serving.server import ReleaseServer

        responses = threading.Semaphore(0)

        class GatedStream(io.StringIO):
            def write(self, text):
                count = super().write(text)
                if text.endswith("\n"):
                    responses.release()
                return count

        answered = []

        def request_lines():
            for index in range(3):
                yield json.dumps(
                    {"id": index, "release": "r", "ranges": {"value": [0, 8]}}
                ) + "\n"
                # Strict request/response: wait for the answer before the
                # next request ever becomes available on "stdin".
                answered.append(responses.acquire(timeout=10.0))

        stream = GatedStream()
        with ReleaseServer() as server:
            server.register(
                "r", publish_ordinal_release(np.arange(32, dtype=float), 1.0, seed=0)
            )
            served = cli._serve_loop(server, request_lines(), stream)
        assert served == 3
        assert answered == [True, True, True]
        lines = [json.loads(line) for line in stream.getvalue().strip().splitlines()]
        assert [line["id"] for line in lines] == [0, 1, 2]
        assert all(line["ok"] for line in lines)


class TestStreamingCommandGuards:
    """Regressions from review: staged rows survive failures, fixed
    publishing flags cannot silently diverge from the archive."""

    def _create(self, archive):
        assert (
            main(
                [
                    "ingest",
                    str(archive),
                    "--scale",
                    "0.05",
                    "--rows",
                    "200",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )

    def test_bad_epochs_preserves_staging(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._create(archive)
        staging = tmp_path / "events.npz.staging.npz"
        assert staging.exists()
        assert main(["advance-epoch", str(archive), "--epochs", "0"]) == 2
        assert "--epochs must be at least 1" in capsys.readouterr().err
        assert staging.exists()  # the only copy of the rows survives
        # And the rows still publish afterwards.
        assert main(["advance-epoch", str(archive)]) == 0
        assert "published 200 rows" in capsys.readouterr().out
        assert not staging.exists()

    def test_conflicting_epsilon_rejected(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._create(archive)
        code = main(
            ["ingest", str(archive), "--scale", "0.05", "--rows", "10", "--epsilon", "5"]
        )
        assert code == 2
        assert "conflicts with the archive's epsilon" in capsys.readouterr().err

    def test_conflicting_mechanism_rejected(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._create(archive)
        code = main(
            [
                "ingest",
                str(archive),
                "--scale",
                "0.05",
                "--rows",
                "10",
                "--mechanism",
                "basic",
            ]
        )
        assert code == 2
        assert "conflicts with the archive's mechanism" in capsys.readouterr().err

    def test_conflicting_schema_rejected(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._create(archive)
        code = main(["ingest", str(archive), "--scale", "0.2", "--rows", "10"])
        assert code == 2
        assert "--dataset/--scale" in capsys.readouterr().err

    def test_matching_flags_accepted(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        self._create(archive)
        code = main(
            [
                "ingest",
                str(archive),
                "--scale",
                "0.05",
                "--rows",
                "10",
                "--epsilon",
                "1.0",
                "--mechanism",
                "privelet+",
                "--epoch-length",
                "1",
            ]
        )
        assert code == 0
        assert "staged 10 rows" in capsys.readouterr().out

    def test_zero_epoch_length_rejected_at_creation(self, tmp_path, capsys):
        archive = tmp_path / "events.npz"
        code = main(
            [
                "ingest",
                str(archive),
                "--scale",
                "0.05",
                "--rows",
                "10",
                "--epoch-length",
                "0",
            ]
        )
        assert code == 2
        assert "--epoch-length must be at least 1" in capsys.readouterr().err
        assert not archive.exists()

    def test_failed_ingest_rewrite_preserves_staging(self, tmp_path, monkeypatch):
        """The staging rewrite goes through a temp file + os.replace, so
        a crash mid-write leaves the previous sidecar intact."""
        archive = tmp_path / "events.npz"
        self._create(archive)
        staging = tmp_path / "events.npz.staging.npz"
        before = staging.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        code = main(["ingest", str(archive), "--scale", "0.05", "--rows", "10"])
        assert code == 2
        assert staging.read_bytes() == before


class TestColumnarCli:
    """The columnar fast path over the CLI: query --columnar and
    op=query_batch on the JSONL serving loop."""

    @pytest.fixture
    def archive(self, tmp_path, capsys):
        path = tmp_path / "br.npz"
        assert (
            main(
                [
                    "publish",
                    str(path),
                    "--scale",
                    "0.05",
                    "--rows",
                    "1000",
                    "--representation",
                    "coefficients",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        return path

    def _serve(self, monkeypatch, capsys, argv, lines):
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(argv)
        captured = capsys.readouterr()
        responses = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        return code, responses, captured.err

    def test_query_columnar_prints_identical_answers(self, archive, capsys):
        assert main(["query", str(archive), "--queries", "6", "--seed", "4"]) == 0
        scalar_out = capsys.readouterr().out
        assert (
            main(
                ["query", str(archive), "--queries", "6", "--seed", "4",
                 "--columnar"]
            )
            == 0
        )
        columnar_out = capsys.readouterr().out
        assert "columnar path" in columnar_out
        # Everything but the header line — every estimate, std, and
        # interval digit — is identical between the two paths.
        assert scalar_out.splitlines()[1:] == columnar_out.splitlines()[1:]

    def test_serve_query_batch_round_trip(self, archive, monkeypatch, capsys):
        batch = {
            "op": "query_batch",
            "id": 1,
            "release": "br",
            "ranges": {"Age": {"lo": [10, 0, 5], "hi": [40, 101, 5]}},
        }
        scalar = '{"id": 2, "release": "br", "ranges": {"Age": [10, 40]}}'
        code, responses, err = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archive)],
            [json.dumps(batch), scalar],
        )
        assert code == 0
        assert [r["id"] for r in responses] == [1, 2]
        assert responses[0]["ok"] is True
        assert responses[0]["count"] == 3
        assert len(responses[0]["estimates"]) == 3
        # Row 0 of the batch is the same box the scalar request asks.
        assert responses[0]["estimates"][0] == responses[1]["estimate"]
        assert responses[0]["noise_stds"][0] == responses[1]["noise_std"]
        assert responses[0]["lowers"][0] == responses[1]["lower"]
        assert responses[0]["uppers"][0] == responses[1]["upper"]
        # Degenerate row answers exactly zero.
        assert responses[0]["estimates"][2] == 0.0
        assert responses[0]["noise_stds"][2] == 0.0
        assert "served 2 request(s)" in err

    def test_serve_batch_errors_are_structured(self, archive, monkeypatch, capsys):
        lines = [
            json.dumps(
                {
                    "op": "query_batch",
                    "id": 1,
                    "release": "br",
                    "ranges": {"Bogus": {"lo": [0], "hi": [1]}},
                }
            ),
            json.dumps(
                {
                    "op": "query_batch",
                    "id": 2,
                    "release": "br",
                    "ranges": {"Age": {"lo": [0], "hi": [500]}},
                }
            ),
            json.dumps(
                {
                    "op": "query_batch",
                    "id": 3,
                    "release": "br",
                    "ranges": {"Age": {"lo": [0.5], "hi": [1]}},
                }
            ),
            json.dumps(
                {
                    "op": "query_batch",
                    "id": 4,
                    "release": "br",
                    "ranges": {"Age": {"lo": [0], "hi": [10]}},
                }
            ),
        ]
        code, responses, _ = self._serve(
            monkeypatch, capsys, ["serve", str(archive)], lines
        )
        assert code == 0
        assert [r["id"] for r in responses] == [1, 2, 3, 4]
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert all(r["code"] == "bad-request" for r in responses[:3])

    def test_serve_rejects_non_integral_scalar_bounds(
        self, archive, monkeypatch, capsys
    ):
        """Regression: a float bound used to silently truncate (39.7 ->
        39) and answer the wrong box; the JSONL loop must reject it."""
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archive)],
            [
                '{"id": 1, "release": "br", "ranges": {"Age": [10, 39.7]}}',
                '{"id": 2, "release": "br", "ranges": {"Age": [10, 39.0]}}',
            ],
        )
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "bad-request"
        assert "must be an integer" in responses[0]["error"]
        # An integral float is fine JSON and still served.
        assert responses[1]["ok"] is True

    def test_serve_stats_show_plan_cache(self, archive, monkeypatch, capsys):
        batch = json.dumps(
            {
                "op": "query_batch",
                "id": 1,
                "release": "br",
                "ranges": {"Age": {"lo": [0, 1], "hi": [10, 11]}},
            }
        )
        code, responses, _ = self._serve(
            monkeypatch,
            capsys,
            ["serve", str(archive)],
            [batch, batch.replace('"id": 1', '"id": 2'), '{"op": "stats"}'],
        )
        assert code == 0
        stats = responses[-1]["stats"]
        # One compiled shape either way; whether the second batch shows
        # as a hit depends on whether the two coalesced into one
        # micro-batch group (one lookup) or arrived separately (two).
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_hits"] in (0, 1)
        assert stats["plan_cache_evictions"] == 0
        assert stats["columnar_rows"] == 4
        assert stats["requests"] == 4


class TestServeTcp:
    """`serve --tcp`: readiness banner, TCP answers, SIGTERM drain."""

    def test_bad_tcp_spec_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "r.npz"
        assert (
            main(
                [
                    "publish", str(path), "--scale", "0.05", "--rows", "500",
                    "--representation", "coefficients",
                ]
            )
            == 0
        )
        assert main(["serve", str(path), "--tcp", "nope"]) == 2
        assert "--tcp expects HOST:PORT" in capsys.readouterr().err

    def test_sigterm_drains_queued_responses(self, tmp_path, capsys):
        """SIGTERM must flush every response already owed, then exit 0."""
        import os
        import signal as _signal
        import socket
        import subprocess
        import sys

        path = tmp_path / "census.npz"
        assert (
            main(
                [
                    "publish", str(path), "--scale", "0.05", "--rows", "1000",
                    "--representation", "coefficients",
                ]
            )
            == 0
        )
        capsys.readouterr()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", f"census={path}",
                "--tcp", "127.0.0.1:0", "--workers", "2",
            ],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert banner.startswith("listening on ")
            host, port = banner.split()[2].rsplit(":", 1)
            sock = socket.create_connection((host, int(port)), timeout=30)
            stream = sock.makefile("rwb")
            for index in range(6):
                stream.write(
                    (
                        json.dumps(
                            {
                                "op": "query",
                                "release": "census",
                                "ranges": {"Age": [0, 10]},
                                "id": index,
                            }
                        )
                        + "\n"
                    ).encode()
                )
            stream.flush()
            first = json.loads(stream.readline())
            assert first["ok"] is True and first["id"] == 0
            # Five responses still owed when the signal lands.
            proc.send_signal(_signal.SIGTERM)
            drained = [first]
            for _ in range(5):
                raw = stream.readline()
                assert raw, "queued response lost during SIGTERM drain"
                drained.append(json.loads(raw))
            assert [r["id"] for r in drained] == list(range(6))
            assert all(r["ok"] for r in drained)
            assert stream.readline() == b""  # then the socket closes
            sock.close()
            summary = proc.stderr.read()
            assert proc.wait(timeout=30) == 0
            assert "served" in summary and "respawn" in summary
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
