"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_result


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_account_defaults(self):
        args = build_parser().parse_args(["account"])
        assert args.dataset == "brazil"
        assert args.epsilon == 1.0

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_account_output(self, capsys):
        assert main(["account", "--dataset", "brazil", "--scale", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Age" in out
        assert "Privelet+" in out
        assert "variance bound" in out

    def test_account_matches_paper_sa(self, capsys):
        main(["account", "--dataset", "brazil"])
        out = capsys.readouterr().out
        assert "'Age'" in out and "'Gender'" in out

    def test_figure_accuracy_small(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--scale",
                "0.05",
                "--rows",
                "3000",
                "--queries",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epsilon = 0.5" in out
        assert "Basic" in out

    def test_publish_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        code = main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--epsilon",
                "1.0",
                "--mechanism",
                "privelet+",
            ]
        )
        assert code == 0
        assert output.exists()
        result = load_result(output)
        assert result.epsilon == 1.0
        assert result.matrix.total == pytest.approx(2000, abs=600)
        assert np.isfinite(result.matrix.values).all()

    def test_query_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--mechanism",
                "privelet+",
            ]
        )
        capsys.readouterr()
        code = main(
            ["query", str(output), "--queries", "7", "--confidence", "0.9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "7 random range-count queries" in out
        assert "90% intervals" in out
        assert "noise std" in out
        assert "mean noise std" in out

    def test_query_sa_override(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "1000",
                "--mechanism",
                "privelet",
            ]
        )
        capsys.readouterr()
        # Explicit empty SA matches the plain-Privelet configuration.
        assert main(["query", str(output), "--queries", "3", "--sa"]) == 0
        assert "3 random range-count queries" in capsys.readouterr().out

    def test_query_errors_exit_cleanly(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "missing.npz")]) == 2
        assert "error:" in capsys.readouterr().err
        output = tmp_path / "release.npz"
        main(["publish", str(output), "--scale", "0.05", "--rows", "500"])
        capsys.readouterr()
        assert main(["query", str(output), "--confidence", "1.0"]) == 2
        assert "confidence" in capsys.readouterr().err

    def test_publish_coefficients_round_trip(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        code = main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "2000",
                "--mechanism",
                "privelet+",
                "--representation",
                "coefficients",
            ]
        )
        assert code == 0
        assert "representation=coefficients" in capsys.readouterr().out
        result = load_result(output)
        assert result.representation == "coefficients"
        # Serving straight from the archive's coefficient backend.
        assert main(["query", str(output), "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "coefficients backend" in out

    def test_query_representation_conversion(self, tmp_path, capsys):
        output = tmp_path / "release.npz"
        main(
            [
                "publish",
                str(output),
                "--scale",
                "0.05",
                "--rows",
                "1000",
                "--mechanism",
                "privelet+",
                "--representation",
                "coefficients",
            ]
        )
        capsys.readouterr()
        # Same archive, same seed, both serving backends: answers agree.
        assert (
            main(["query", str(output), "--queries", "4", "--seed", "3"]) == 0
        )
        coeff_out = capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    str(output),
                    "--queries",
                    "4",
                    "--seed",
                    "3",
                    "--representation",
                    "dense",
                ]
            )
            == 0
        )
        dense_out = capsys.readouterr().out
        assert "dense backend" in dense_out

        def estimates(text):
            return [
                float(line.split()[0])
                for line in text.splitlines()
                if "RangeCountQuery" in line
            ]

        assert estimates(coeff_out) == pytest.approx(estimates(dense_out), abs=1e-6)

    def test_figure_accepts_representation(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--scale",
                "0.05",
                "--rows",
                "1500",
                "--queries",
                "300",
                "--representation",
                "coefficients",
            ]
        )
        assert code == 0
        assert "Basic" in capsys.readouterr().out

    def test_publish_basic(self, tmp_path):
        output = tmp_path / "basic.npz"
        assert (
            main(
                [
                    "publish",
                    str(output),
                    "--mechanism",
                    "basic",
                    "--scale",
                    "0.05",
                    "--rows",
                    "1000",
                ]
            )
            == 0
        )
        assert load_result(output).noise_magnitude == 2.0
