"""Tests for the benchmark summary table (CI step-summary generator)."""

import json

import pytest

from benchmarks.summarize import (
    headline_metrics,
    main,
    serving_engine_ratio,
    summarize,
    tail_latency_ms,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "BENCH_alpha.json").write_text(
        json.dumps(
            {
                "smoke": True,
                "provenance": {"commit": "abc1234", "seed": 1},
                "publish": {"serial_seconds": 2.0, "parallel_speedup": 3.5},
                "batch_query": {"sharded_qps": 12345.6, "queries": 2000},
            }
        )
    )
    (tmp_path / "BENCH_beta.json").write_text(
        json.dumps(
            {
                "smoke": False,
                "provenance": {"commit": "def5678"},
                "ingest": {"streaming_rows_per_s": 5_000_000.0},
            }
        )
    )
    return tmp_path


class TestHeadlineMetrics:
    def test_prefers_speedups_then_qps(self, results_dir):
        payload = json.loads((results_dir / "BENCH_alpha.json").read_text())
        metrics = headline_metrics(payload)
        assert metrics[0] == ("publish.parallel_speedup", 3.5)
        assert ("batch_query.sharded_qps", 12345.6) in metrics

    def test_ignores_provenance_and_non_metrics(self, results_dir):
        payload = json.loads((results_dir / "BENCH_alpha.json").read_text())
        paths = [path for path, _ in headline_metrics(payload)]
        assert all("seed" not in path for path in paths)
        assert all("seconds" not in path for path in paths)
        assert all("queries" not in path.rsplit(".", 1)[-1] for path in paths)

    def test_rows_per_s_counts(self, results_dir):
        payload = json.loads((results_dir / "BENCH_beta.json").read_text())
        assert headline_metrics(payload) == [
            ("ingest.streaming_rows_per_s", 5_000_000.0)
        ]


class TestServingEngineRatio:
    def test_finds_nested_leaf(self):
        payload = {
            "provenance": {"serving_vs_engine_qps_ratio": 9.9},
            "columnar": {"serving_vs_engine_qps_ratio": 0.88},
        }
        assert serving_engine_ratio(payload) == 0.88

    def test_none_when_absent(self, results_dir):
        payload = json.loads((results_dir / "BENCH_alpha.json").read_text())
        assert serving_engine_ratio(payload) is None


class TestTailLatencyMs:
    def test_worst_p99_across_runs_in_ms(self):
        payload = {
            "provenance": {"p99_latency_seconds": 99.0},  # ignored
            "runs": [
                {"workers": 1, "p50_ms": 1.0, "p99_ms": 4.25},
                {"workers": 4, "p50_ms": 0.5, "p99_ms": 9.75},
            ],
        }
        assert tail_latency_ms(payload) == 9.75

    def test_seconds_leaves_convert_to_ms(self):
        payload = {"serving": {"p99_latency_seconds": 0.0125}}
        assert tail_latency_ms(payload) == pytest.approx(12.5)

    def test_mixed_units_compare_in_ms(self):
        payload = {
            "a": {"p99_ms": 3.0},
            "b": {"p99_latency_seconds": 0.001},  # 1 ms, not the worst
        }
        assert tail_latency_ms(payload) == 3.0

    def test_none_when_absent(self, results_dir):
        payload = json.loads((results_dir / "BENCH_alpha.json").read_text())
        assert tail_latency_ms(payload) is None

    def test_unitless_p99_leaves_are_skipped(self):
        assert tail_latency_ms({"x": {"p99": 7.0}}) is None


class TestSummarize:
    def test_table_shape_and_content(self, results_dir):
        table = summarize(results_dir.glob("BENCH_*.json"))
        lines = table.strip().splitlines()
        assert lines[0] == "## Benchmark summary"
        assert lines[2] == (
            "| benchmark | headline | serving/engine qps | worst p99 "
            "| mode | commit |"
        )
        assert any(
            line.startswith("| alpha |") and "3.50x" in line and "abc1234" in line
            for line in lines
        )
        assert any(
            line.startswith("| beta |") and "5,000,000" in line and "full" in line
            for line in lines
        )

    def test_serving_engine_ratio_column(self, results_dir):
        (results_dir / "BENCH_gamma.json").write_text(
            json.dumps(
                {
                    "smoke": False,
                    "provenance": {"commit": "aaa0000"},
                    "columnar": {
                        "columnar_qps_at_256": 28_000.0,
                        "serving_vs_engine_qps_ratio": 0.88,
                    },
                }
            )
        )
        table = summarize(results_dir.glob("BENCH_*.json"))
        gamma = next(
            line for line in table.splitlines() if line.startswith("| gamma |")
        )
        assert "| 0.88 |" in gamma
        # Benchmarks that do not measure the ratio leave the cell blank.
        alpha = next(
            line for line in table.splitlines() if line.startswith("| alpha |")
        )
        assert "| — |" in alpha

    def test_worst_p99_column(self, results_dir):
        (results_dir / "BENCH_delta.json").write_text(
            json.dumps(
                {
                    "smoke": False,
                    "provenance": {"commit": "bbb1111"},
                    "runs": [
                        {"qps": 1000.0, "p99_ms": 2.5},
                        {"qps": 4000.0, "p99_ms": 6.5},
                    ],
                }
            )
        )
        table = summarize(results_dir.glob("BENCH_*.json"))
        delta = next(
            line for line in table.splitlines() if line.startswith("| delta |")
        )
        assert "| 6.50 ms |" in delta
        # Benchmarks without a p99 leave the cell blank.
        alpha = next(
            line for line in table.splitlines() if line.startswith("| alpha |")
        )
        assert alpha.split(" | ")[-3] == "—"

    def test_unreadable_file_is_flagged_not_fatal(self, results_dir):
        (results_dir / "BENCH_broken.json").write_text("{not json")
        table = summarize(results_dir.glob("BENCH_*.json"))
        assert "| broken | unreadable:" in table

    def test_empty_directory(self, tmp_path):
        table = summarize(tmp_path.glob("BENCH_*.json"))
        assert "_none found_" in table


class TestMain:
    def test_writes_to_step_summary(self, results_dir, tmp_path, monkeypatch, capsys):
        target = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(target))
        assert main([str(results_dir)]) == 0
        written = target.read_text()
        assert "## Benchmark summary" in written
        assert written == capsys.readouterr().out

    def test_stdout_without_env(self, results_dir, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        assert main([str(results_dir)]) == 0
        assert "| alpha |" in capsys.readouterr().out


class TestBenchSmokeSwitch:
    def test_consolidated_switch(self, monkeypatch):
        from benchmarks.conftest import bench_smoke

        for name in ("BENCH_SMOKE", "SERVING_BENCH_SMOKE"):
            monkeypatch.delenv(name, raising=False)
        assert bench_smoke("SERVING_BENCH_SMOKE") is False
        monkeypatch.setenv("BENCH_SMOKE", "1")
        assert bench_smoke() is True
        assert bench_smoke("SERVING_BENCH_SMOKE") is True

    def test_legacy_aliases_still_work(self, monkeypatch):
        from benchmarks.conftest import bench_smoke

        monkeypatch.delenv("BENCH_SMOKE", raising=False)
        monkeypatch.setenv("SHARDING_BENCH_SMOKE", "1")
        assert bench_smoke("SHARDING_BENCH_SMOKE") is True
        assert bench_smoke() is False
        monkeypatch.setenv("SHARDING_BENCH_SMOKE", "0")
        assert bench_smoke("SHARDING_BENCH_SMOKE") is False
