"""Tests for repro.utils (rng plumbing and validation helpers)."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
    is_power_of_two,
    next_power_of_two,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(7).integers(0, 100, 5)
        b = as_generator(7).integers(0, 100, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passed_through(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_spawn_independent_streams(self):
        children = spawn_generators(42, 3)
        draws = [g.integers(0, 1_000_000) for g in children]
        assert len(set(draws)) == 3  # overwhelmingly likely

    def test_spawn_deterministic(self):
        a = [g.integers(0, 100, 3).tolist() for g in spawn_generators(5, 2)]
        b = [g.integers(0, 100, 3).tolist() for g in spawn_generators(5, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(3), 2)
        assert len(children) == 2

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            ensure_positive(0, "x")
        with pytest.raises(TypeError):
            ensure_positive("2", "x")

    def test_ensure_positive_int(self):
        assert ensure_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            ensure_positive_int(0, "x")
        with pytest.raises(TypeError):
            ensure_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            ensure_positive_int(True, "x")  # bools are not sizes

    def test_ensure_in_range(self):
        assert ensure_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ValueError):
            ensure_in_range(1.5, "x", 0, 1)

    def test_power_of_two_predicates(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(64) == 64
        with pytest.raises(ValueError):
            next_power_of_two(0)
