"""Tests for repro.utils (rng plumbing, validation, and statistics)."""

import numpy as np
import pytest

from repro.errors import PrivacyError, QueryError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import gaussian_quantile
from repro.utils.validation import (
    ensure_epsilon,
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
    is_power_of_two,
    next_power_of_two,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(7).integers(0, 100, 5)
        b = as_generator(7).integers(0, 100, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passed_through(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_spawn_independent_streams(self):
        children = spawn_generators(42, 3)
        draws = [g.integers(0, 1_000_000) for g in children]
        assert len(set(draws)) == 3  # overwhelmingly likely

    def test_spawn_deterministic(self):
        a = [g.integers(0, 100, 3).tolist() for g in spawn_generators(5, 2)]
        b = [g.integers(0, 100, 3).tolist() for g in spawn_generators(5, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(3), 2)
        assert len(children) == 2

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            ensure_positive(0, "x")
        with pytest.raises(TypeError):
            ensure_positive("2", "x")

    def test_ensure_positive_int(self):
        assert ensure_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            ensure_positive_int(0, "x")
        with pytest.raises(TypeError):
            ensure_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            ensure_positive_int(True, "x")  # bools are not sizes

    def test_ensure_in_range(self):
        assert ensure_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ValueError):
            ensure_in_range(1.5, "x", 0, 1)

    def test_power_of_two_predicates(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(64) == 64
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_ensure_epsilon(self):
        assert ensure_epsilon(0.5) == 0.5
        assert ensure_epsilon(2) == 2.0
        for bad in (0, -1.0, "1", None):
            with pytest.raises(PrivacyError):
                ensure_epsilon(bad)

    def test_ensure_epsilon_message_is_canonical(self):
        # One validator, one error message — shared by every mechanism.
        with pytest.raises(PrivacyError, match=r"epsilon must be a positive number"):
            ensure_epsilon(-2)


class TestGaussianQuantile:
    def test_central_known_values(self):
        # Reference values: Phi^{-1} at the interval-building probabilities.
        assert gaussian_quantile(0.5) == pytest.approx(0.0, abs=1e-8)
        assert gaussian_quantile(0.975) == pytest.approx(1.959963984540054, abs=1e-8)
        assert gaussian_quantile(0.025) == pytest.approx(-1.959963984540054, abs=1e-8)

    def test_other_known_quantiles(self):
        # Phi^{-1}(0.841344746...) = 1 and the 90%/99% two-sided points.
        assert gaussian_quantile(0.8413447460685429) == pytest.approx(1.0, abs=1e-8)
        assert gaussian_quantile(0.95) == pytest.approx(1.6448536269514722, abs=1e-8)
        assert gaussian_quantile(0.995) == pytest.approx(2.5758293035489004, abs=1e-8)

    def test_deep_tails(self):
        # Deep-tail reference values (scipy.stats.norm.ppf, float64).
        assert gaussian_quantile(1e-10) == pytest.approx(-6.361340902404056, abs=1e-7)
        assert gaussian_quantile(1e-300) == pytest.approx(-37.0470978059328, abs=1e-5)
        assert gaussian_quantile(1 - 1e-10) == pytest.approx(6.361340902404056, abs=1e-7)

    def test_deep_tails_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for p in (1e-12, 1e-8, 1e-4, 0.3, 0.77, 1 - 1e-9):
            assert gaussian_quantile(p) == pytest.approx(
                float(scipy_stats.norm.ppf(p)), rel=1e-7, abs=1e-8
            )

    def test_symmetry_and_monotonicity(self):
        probabilities = np.linspace(0.001, 0.999, 201)
        values = np.asarray([gaussian_quantile(p) for p in probabilities])
        assert np.all(np.diff(values) > 0)
        np.testing.assert_allclose(values, -values[::-1], atol=1e-9)

    def test_domain_rejected(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(QueryError):
                gaussian_quantile(bad)
