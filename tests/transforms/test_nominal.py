"""Unit tests for the nominal wavelet transform (paper §V)."""

import numpy as np
import pytest

from repro.data.hierarchy import balanced_hierarchy, flat_hierarchy, two_level_hierarchy
from repro.errors import TransformError
from repro.transforms.nominal import NominalTransform, mean_subtract
from repro.transforms.tree import nominal_forward_reference, nominal_reconstruct_entry


class TestFigure3:
    """The paper's worked example: Figure 3 / Example 3."""

    def test_coefficients(self, figure3_hierarchy, figure3_vector):
        transform = NominalTransform(figure3_hierarchy)
        coefficients = transform.forward(figure3_vector)
        np.testing.assert_allclose(
            coefficients, [30.0, 3.0, -3.0, 3.0, -3.0, 0.0, -2.0, 4.0, -2.0]
        )

    def test_example3_reconstruction(self, figure3_hierarchy, figure3_vector):
        """v1 = c3 + c0/2/3 + c1/3 = 3 + 5 + 1 = 9."""
        transform = NominalTransform(figure3_hierarchy)
        c = transform.forward(figure3_vector)
        assert c[3] + c[0] / 2 / 3 + c[1] / 3 == pytest.approx(9.0)

    def test_overcompleteness(self, figure3_hierarchy):
        transform = NominalTransform(figure3_hierarchy)
        assert transform.input_length == 6
        assert transform.output_length == 9
        # m' - m = number of internal nodes (§V-A)
        assert (
            transform.output_length - transform.input_length
            == figure3_hierarchy.num_internal_nodes
        )

    def test_weights(self, figure3_hierarchy):
        """W_Nom: base 1; f/(2f-2) with parent fanouts 2 and 3."""
        weights = NominalTransform(figure3_hierarchy).weight_vector()
        assert weights[0] == 1.0
        # c1, c2: parent (root) fanout 2 -> 2/2 = 1
        np.testing.assert_allclose(weights[1:3], 1.0)
        # c3..c8: parent fanout 3 -> 3/4
        np.testing.assert_allclose(weights[3:], 0.75)


class TestForwardInverse:
    @pytest.mark.parametrize(
        "hierarchy_builder",
        [
            lambda: flat_hierarchy(7),
            lambda: two_level_hierarchy([2, 3, 4]),
            lambda: balanced_hierarchy(16, 2),
            lambda: balanced_hierarchy(27, 3),
        ],
    )
    def test_round_trip(self, hierarchy_builder, rng):
        hierarchy = hierarchy_builder()
        transform = NominalTransform(hierarchy)
        values = rng.normal(size=hierarchy.num_leaves)
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-10
        )

    def test_round_trip_unbalanced(self, unbalanced_hierarchy, rng):
        transform = NominalTransform(unbalanced_hierarchy)
        values = rng.normal(size=unbalanced_hierarchy.num_leaves)
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-10
        )

    def test_round_trip_2d(self, figure3_hierarchy, rng):
        transform = NominalTransform(figure3_hierarchy)
        values = rng.normal(size=(6, 4))
        np.testing.assert_allclose(
            transform.inverse(transform.forward(values)), values, atol=1e-10
        )

    def test_matches_reference(self, unbalanced_hierarchy, rng):
        values = rng.normal(size=unbalanced_hierarchy.num_leaves)
        np.testing.assert_allclose(
            NominalTransform(unbalanced_hierarchy).forward(values),
            nominal_forward_reference(values, unbalanced_hierarchy),
            atol=1e-10,
        )

    def test_equation5_reconstruction(self, figure3_hierarchy, figure3_vector):
        transform = NominalTransform(figure3_hierarchy)
        coefficients = transform.forward(figure3_vector)
        for leaf in range(6):
            assert nominal_reconstruct_entry(
                coefficients, figure3_hierarchy, leaf
            ) == pytest.approx(figure3_vector[leaf])

    def test_linearity(self, figure3_hierarchy, rng):
        transform = NominalTransform(figure3_hierarchy)
        a = rng.normal(size=6)
        b = rng.normal(size=6)
        np.testing.assert_allclose(
            transform.forward(a + 2.0 * b),
            transform.forward(a) + 2.0 * transform.forward(b),
            atol=1e-10,
        )

    def test_sibling_groups_sum_to_zero(self, unbalanced_hierarchy, rng):
        """True coefficients in a sibling group sum to zero by construction."""
        transform = NominalTransform(unbalanced_hierarchy)
        coefficients = transform.forward(rng.normal(size=unbalanced_hierarchy.num_leaves))
        for group in unbalanced_hierarchy.sibling_groups():
            assert float(coefficients[group].sum()) == pytest.approx(0.0, abs=1e-10)

    def test_base_coefficient_is_total(self, figure3_hierarchy, figure3_vector):
        transform = NominalTransform(figure3_hierarchy)
        assert transform.forward(figure3_vector)[0] == pytest.approx(30.0)

    def test_shape_validation(self, figure3_hierarchy):
        transform = NominalTransform(figure3_hierarchy)
        with pytest.raises(TransformError):
            transform.forward(np.zeros(5))
        with pytest.raises(TransformError):
            transform.inverse(np.zeros(6))

    def test_requires_hierarchy(self):
        with pytest.raises(TransformError):
            NominalTransform("nope")

    def test_single_leaf_hierarchy(self):
        from repro.data.hierarchy import Hierarchy, Node

        transform = NominalTransform(Hierarchy(Node("v")))
        values = np.array([4.5])
        np.testing.assert_allclose(transform.inverse(transform.forward(values)), values)


class TestMeanSubtraction:
    def test_noop_on_exact_coefficients(self, figure3_hierarchy, figure3_vector):
        """True coefficient groups already sum to zero, so refinement
        changes nothing on exact data."""
        transform = NominalTransform(figure3_hierarchy)
        coefficients = transform.forward(figure3_vector)
        np.testing.assert_allclose(transform.refine(coefficients), coefficients, atol=1e-10)

    def test_groups_recentred(self, figure3_hierarchy, rng):
        transform = NominalTransform(figure3_hierarchy)
        noisy = rng.normal(size=9)
        refined = transform.refine(noisy)
        for group in figure3_hierarchy.sibling_groups():
            assert float(refined[group].sum()) == pytest.approx(0.0, abs=1e-10)

    def test_base_coefficient_untouched(self, figure3_hierarchy, rng):
        transform = NominalTransform(figure3_hierarchy)
        noisy = rng.normal(size=9)
        assert transform.refine(noisy)[0] == noisy[0]

    def test_idempotent(self, figure3_hierarchy, rng):
        transform = NominalTransform(figure3_hierarchy)
        once = transform.refine(rng.normal(size=9))
        np.testing.assert_allclose(transform.refine(once), once, atol=1e-12)

    def test_does_not_mutate_input(self, figure3_hierarchy, rng):
        noisy = rng.normal(size=9)
        copy = noisy.copy()
        NominalTransform(figure3_hierarchy).refine(noisy)
        np.testing.assert_array_equal(noisy, copy)

    def test_mean_subtract_function(self, rng):
        values = rng.normal(size=10)
        out = mean_subtract(values, [slice(2, 5), slice(5, 10)])
        assert out[2:5].sum() == pytest.approx(0.0, abs=1e-12)
        assert out[5:].sum() == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_array_equal(out[:2], values[:2])

    def test_inverse_with_refine(self, figure3_hierarchy, figure3_vector, rng):
        """refine=True on noisy coefficients equals refine-then-inverse."""
        transform = NominalTransform(figure3_hierarchy)
        noisy = transform.forward(figure3_vector) + rng.normal(size=9)
        np.testing.assert_allclose(
            transform.inverse(noisy, refine=True),
            transform.inverse(transform.refine(noisy)),
            atol=1e-12,
        )


class TestSensitivity:
    def test_lemma4_exact(self, figure3_hierarchy):
        """Perturbing any entry yields weighted L1 change exactly h."""
        transform = NominalTransform(figure3_hierarchy)
        weights = transform.weight_vector()
        for leaf in range(6):
            bump = np.zeros(6)
            bump[leaf] = 1.0
            change = transform.forward(bump)
            weighted = float(np.abs(change * weights).sum())
            assert weighted == pytest.approx(figure3_hierarchy.height)

    def test_lemma4_unbalanced_is_bound(self, unbalanced_hierarchy):
        """For unbalanced hierarchies the weighted change per entry is at
        most h (leaves above the deepest level touch fewer groups)."""
        transform = NominalTransform(unbalanced_hierarchy)
        weights = transform.weight_vector()
        h = unbalanced_hierarchy.height
        worst = 0.0
        for leaf in range(unbalanced_hierarchy.num_leaves):
            bump = np.zeros(unbalanced_hierarchy.num_leaves)
            bump[leaf] = 1.0
            weighted = float(np.abs(transform.forward(bump) * weights).sum())
            assert weighted <= h + 1e-9
            worst = max(worst, weighted)
        # The deepest leaf attains h exactly.
        assert worst == pytest.approx(h)

    def test_factors(self, figure3_hierarchy):
        transform = NominalTransform(figure3_hierarchy)
        assert transform.sensitivity_factor() == 3.0
        assert transform.variance_factor() == 4.0
